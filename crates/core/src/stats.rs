//! Engine observability: tick-latency histograms, throughput counters,
//! sampler world counts, and safe-plan→sampler fallback accounting.
//!
//! [`EngineStats`] is a cheaply cloneable handle (an `Arc` over atomics)
//! shared between the engine, the [`crate::RealTimeSession`] tick loop,
//! and its parallel workers. [`EngineStats::snapshot`] freezes a
//! consistent-enough view for dashboards; [`StatsSnapshot::to_json`]
//! renders it as a JSON document without any serialization dependency.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of power-of-two latency buckets (bucket `i` covers
/// `[2^i, 2^{i+1})` nanoseconds; the last bucket is open-ended).
const N_BUCKETS: usize = 64;

#[derive(Debug)]
struct Histogram {
    counts: [u64; N_BUCKETS],
    n: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; N_BUCKETS],
            n: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl Histogram {
    fn export(&self) -> HistogramState {
        HistogramState {
            counts: self.counts.to_vec(),
            n: self.n,
            sum_ns: self.sum_ns,
            min_ns: self.min_ns,
            max_ns: self.max_ns,
        }
    }

    fn import(state: &HistogramState) -> Self {
        let mut counts = [0u64; N_BUCKETS];
        for (dst, src) in counts.iter_mut().zip(state.counts.iter()) {
            *dst = *src;
        }
        Self {
            counts,
            n: state.n,
            sum_ns: state.sum_ns,
            min_ns: state.min_ns,
            max_ns: state.max_ns,
        }
    }

    fn record(&mut self, ns: u64) {
        let bucket = (63 - ns.max(1).leading_zeros()) as usize;
        self.counts[bucket.min(N_BUCKETS - 1)] += 1;
        self.n += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Upper-bound estimate of quantile `q` from the bucket boundaries.
    fn quantile_ns(&self, q: f64) -> u64 {
        if self.n == 0 {
            return 0;
        }
        let rank = ((self.n as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << (i + 1).min(63)).min(self.max_ns);
            }
        }
        self.max_ns
    }
}

#[derive(Debug, Default)]
struct Inner {
    ticks: AtomicU64,
    parallel_ticks: AtomicU64,
    degraded_ticks: AtomicU64,
    recoveries: AtomicU64,
    checkpoints_taken: AtomicU64,
    chains_stepped: AtomicU64,
    bindings_grounded: AtomicU64,
    alerts_emitted: AtomicU64,
    sampler_compilations: AtomicU64,
    sampler_worlds: AtomicU64,
    fallbacks: AtomicU64,
    tick_latency: Mutex<Histogram>,
    fallback_reasons: Mutex<BTreeMap<String, u64>>,
}

/// Raw latency-histogram state inside a [`StatsState`].
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct HistogramState {
    pub(crate) counts: Vec<u64>,
    pub(crate) n: u64,
    pub(crate) sum_ns: u64,
    pub(crate) min_ns: u64,
    pub(crate) max_ns: u64,
}

/// Raw counter values extracted from [`EngineStats`] for inclusion in a
/// session checkpoint. Unlike [`StatsSnapshot`] this is lossless: the
/// full histogram is preserved, not just its summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct StatsState {
    pub(crate) ticks: u64,
    pub(crate) parallel_ticks: u64,
    pub(crate) degraded_ticks: u64,
    pub(crate) recoveries: u64,
    pub(crate) checkpoints_taken: u64,
    pub(crate) chains_stepped: u64,
    pub(crate) bindings_grounded: u64,
    pub(crate) alerts_emitted: u64,
    pub(crate) sampler_compilations: u64,
    pub(crate) sampler_worlds: u64,
    pub(crate) fallbacks: u64,
    pub(crate) fallback_reasons: BTreeMap<String, u64>,
    pub(crate) tick_latency: HistogramState,
}

/// Shared, thread-safe engine metrics. Cloning yields another handle to
/// the same counters.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    inner: Arc<Inner>,
}

impl EngineStats {
    /// A fresh, zeroed set of counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed session tick: its wall-clock latency, how
    /// many per-binding chains were stepped, and whether the sharded
    /// parallel path ran it.
    pub fn record_tick(&self, latency: Duration, chains_stepped: u64, parallel: bool) {
        self.inner.ticks.fetch_add(1, Ordering::Relaxed);
        if parallel {
            self.inner.parallel_ticks.fetch_add(1, Ordering::Relaxed);
        }
        self.inner
            .chains_stepped
            .fetch_add(chains_stepped, Ordering::Relaxed);
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.inner.tick_latency.lock().unwrap().record(ns);
    }

    /// Records chains grounded for a newly registered query.
    pub fn record_grounding(&self, bindings: u64) {
        self.inner
            .bindings_grounded
            .fetch_add(bindings, Ordering::Relaxed);
    }

    /// Records alerts emitted by a tick.
    pub fn record_alerts(&self, n: u64) {
        self.inner.alerts_emitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a Monte Carlo compilation simulating `worlds` sampled
    /// worlds.
    pub fn record_sampler(&self, worlds: u64) {
        self.inner
            .sampler_compilations
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .sampler_worlds
            .fetch_add(worlds, Ordering::Relaxed);
    }

    /// Records a tick processed in degraded (forced-sequential) mode
    /// after a watchdog timeout.
    pub fn record_degraded_tick(&self) {
        self.inner.degraded_ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successful [`crate::RealTimeSession::recover`] call.
    pub fn record_recovery(&self) {
        self.inner.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a checkpoint being taken (manual or automatic).
    pub fn record_checkpoint(&self) {
        self.inner.checkpoints_taken.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an exact-path→sampler fallback and why it happened.
    pub fn record_fallback(&self, reason: &str) {
        self.inner.fallbacks.fetch_add(1, Ordering::Relaxed);
        *self
            .inner
            .fallback_reasons
            .lock()
            .unwrap()
            .entry(reason.to_owned())
            .or_insert(0) += 1;
    }

    /// Freezes the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        let i = &self.inner;
        let hist = i.tick_latency.lock().unwrap();
        let buckets = hist
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (1u64 << b, c))
            .collect();
        let latency = LatencySnapshot {
            count: hist.n,
            min_ns: if hist.n == 0 { 0 } else { hist.min_ns },
            max_ns: hist.max_ns,
            mean_ns: if hist.n == 0 {
                0.0
            } else {
                hist.sum_ns as f64 / hist.n as f64
            },
            p50_ns: hist.quantile_ns(0.50),
            p95_ns: hist.quantile_ns(0.95),
            p99_ns: hist.quantile_ns(0.99),
            buckets,
        };
        drop(hist);
        StatsSnapshot {
            ticks: i.ticks.load(Ordering::Relaxed),
            parallel_ticks: i.parallel_ticks.load(Ordering::Relaxed),
            degraded_ticks: i.degraded_ticks.load(Ordering::Relaxed),
            recoveries: i.recoveries.load(Ordering::Relaxed),
            checkpoints_taken: i.checkpoints_taken.load(Ordering::Relaxed),
            chains_stepped: i.chains_stepped.load(Ordering::Relaxed),
            bindings_grounded: i.bindings_grounded.load(Ordering::Relaxed),
            alerts_emitted: i.alerts_emitted.load(Ordering::Relaxed),
            sampler_compilations: i.sampler_compilations.load(Ordering::Relaxed),
            sampler_worlds: i.sampler_worlds.load(Ordering::Relaxed),
            fallbacks: i.fallbacks.load(Ordering::Relaxed),
            fallback_reasons: i.fallback_reasons.lock().unwrap().clone(),
            tick_latency: latency,
        }
    }

    /// Extracts the complete raw counter state (lossless, unlike
    /// [`EngineStats::snapshot`]) for inclusion in a session checkpoint.
    pub(crate) fn export_state(&self) -> StatsState {
        let i = &self.inner;
        StatsState {
            ticks: i.ticks.load(Ordering::Relaxed),
            parallel_ticks: i.parallel_ticks.load(Ordering::Relaxed),
            degraded_ticks: i.degraded_ticks.load(Ordering::Relaxed),
            recoveries: i.recoveries.load(Ordering::Relaxed),
            checkpoints_taken: i.checkpoints_taken.load(Ordering::Relaxed),
            chains_stepped: i.chains_stepped.load(Ordering::Relaxed),
            bindings_grounded: i.bindings_grounded.load(Ordering::Relaxed),
            alerts_emitted: i.alerts_emitted.load(Ordering::Relaxed),
            sampler_compilations: i.sampler_compilations.load(Ordering::Relaxed),
            sampler_worlds: i.sampler_worlds.load(Ordering::Relaxed),
            fallbacks: i.fallbacks.load(Ordering::Relaxed),
            fallback_reasons: i.fallback_reasons.lock().unwrap().clone(),
            tick_latency: i.tick_latency.lock().unwrap().export(),
        }
    }

    /// Builds a fresh handle pre-loaded with checkpointed counter state.
    pub(crate) fn from_state(state: &StatsState) -> Self {
        let stats = Self::new();
        let i = &stats.inner;
        i.ticks.store(state.ticks, Ordering::Relaxed);
        i.parallel_ticks
            .store(state.parallel_ticks, Ordering::Relaxed);
        i.degraded_ticks
            .store(state.degraded_ticks, Ordering::Relaxed);
        i.recoveries.store(state.recoveries, Ordering::Relaxed);
        i.checkpoints_taken
            .store(state.checkpoints_taken, Ordering::Relaxed);
        i.chains_stepped
            .store(state.chains_stepped, Ordering::Relaxed);
        i.bindings_grounded
            .store(state.bindings_grounded, Ordering::Relaxed);
        i.alerts_emitted
            .store(state.alerts_emitted, Ordering::Relaxed);
        i.sampler_compilations
            .store(state.sampler_compilations, Ordering::Relaxed);
        i.sampler_worlds
            .store(state.sampler_worlds, Ordering::Relaxed);
        i.fallbacks.store(state.fallbacks, Ordering::Relaxed);
        *i.fallback_reasons.lock().unwrap() = state.fallback_reasons.clone();
        *i.tick_latency.lock().unwrap() = Histogram::import(&state.tick_latency);
        stats
    }
}

/// Tick-latency summary inside a [`StatsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySnapshot {
    /// Ticks recorded.
    pub count: u64,
    /// Fastest tick, nanoseconds.
    pub min_ns: u64,
    /// Slowest tick, nanoseconds.
    pub max_ns: u64,
    /// Mean tick latency, nanoseconds.
    pub mean_ns: f64,
    /// Median estimate (bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile estimate, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile estimate, nanoseconds.
    pub p99_ns: u64,
    /// Non-empty `(bucket_lower_bound_ns, count)` pairs; bucket `b`
    /// covers `[b, 2b)` nanoseconds.
    pub buckets: Vec<(u64, u64)>,
}

/// A frozen view of [`EngineStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Session ticks processed.
    pub ticks: u64,
    /// Ticks that ran on the sharded parallel path.
    pub parallel_ticks: u64,
    /// Ticks forced onto the sequential path by degraded mode (after a
    /// watchdog timeout).
    pub degraded_ticks: u64,
    /// Successful session recoveries.
    pub recoveries: u64,
    /// Checkpoints taken (manual or automatic).
    pub checkpoints_taken: u64,
    /// Per-binding chains stepped across all ticks.
    pub chains_stepped: u64,
    /// Per-key chains grounded at query registration.
    pub bindings_grounded: u64,
    /// Alerts emitted by ticks.
    pub alerts_emitted: u64,
    /// Monte Carlo compilations.
    pub sampler_compilations: u64,
    /// Total sampled worlds across those compilations.
    pub sampler_worlds: u64,
    /// Exact-path→sampler fallbacks.
    pub fallbacks: u64,
    /// Fallback reason → occurrence count.
    pub fallback_reasons: BTreeMap<String, u64>,
    /// Tick-latency histogram summary.
    pub tick_latency: LatencySnapshot,
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl StatsSnapshot {
    /// Renders the snapshot as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(512);
        write!(
            out,
            "{{\"ticks\":{},\"parallel_ticks\":{},\"degraded_ticks\":{},\
             \"recoveries\":{},\"checkpoints_taken\":{},\"chains_stepped\":{},\
             \"bindings_grounded\":{},\"alerts_emitted\":{},\
             \"sampler\":{{\"compilations\":{},\"worlds\":{}}},",
            self.ticks,
            self.parallel_ticks,
            self.degraded_ticks,
            self.recoveries,
            self.checkpoints_taken,
            self.chains_stepped,
            self.bindings_grounded,
            self.alerts_emitted,
            self.sampler_compilations,
            self.sampler_worlds,
        )
        .unwrap();
        write!(
            out,
            "\"fallbacks\":{{\"count\":{},\"reasons\":{{",
            self.fallbacks
        )
        .unwrap();
        for (i, (reason, count)) in self.fallback_reasons.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, reason);
            write!(out, ":{count}").unwrap();
        }
        let l = &self.tick_latency;
        // `{:.1}` renders NaN/inf as bare `NaN`/`inf` tokens, which are
        // not JSON; an empty histogram (or a hand-built snapshot) must
        // still produce a parseable document.
        let mean = if l.mean_ns.is_finite() {
            l.mean_ns
        } else {
            0.0
        };
        write!(
            out,
            "}}}},\"tick_latency_ns\":{{\"count\":{},\"min\":{},\"max\":{},\
             \"mean\":{:.1},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
            l.count, l.min_ns, l.max_ns, mean, l.p50_ns, l.p95_ns, l.p99_ns,
        )
        .unwrap();
        for (i, (lower, count)) in l.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "[{lower},{count}]").unwrap();
        }
        out.push_str("]}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_handles() {
        let stats = EngineStats::new();
        let clone = stats.clone();
        stats.record_tick(Duration::from_micros(10), 5, false);
        clone.record_tick(Duration::from_micros(20), 7, true);
        stats.record_grounding(3);
        stats.record_alerts(2);
        stats.record_sampler(1024);
        stats.record_fallback("safe: no safe plan exists");
        stats.record_fallback("safe: no safe plan exists");
        let snap = stats.snapshot();
        assert_eq!(snap.ticks, 2);
        assert_eq!(snap.parallel_ticks, 1);
        assert_eq!(snap.chains_stepped, 12);
        assert_eq!(snap.bindings_grounded, 3);
        assert_eq!(snap.alerts_emitted, 2);
        assert_eq!(snap.sampler_compilations, 1);
        assert_eq!(snap.sampler_worlds, 1024);
        assert_eq!(snap.fallbacks, 2);
        assert_eq!(
            snap.fallback_reasons.get("safe: no safe plan exists"),
            Some(&2)
        );
        assert_eq!(snap.tick_latency.count, 2);
        assert!(snap.tick_latency.min_ns <= snap.tick_latency.max_ns);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let stats = EngineStats::new();
        for us in [1u64, 2, 4, 8, 100, 200, 400, 800, 1600, 10_000] {
            stats.record_tick(Duration::from_micros(us), 1, false);
        }
        let l = stats.snapshot().tick_latency;
        assert_eq!(l.count, 10);
        assert!(l.p50_ns >= l.min_ns);
        assert!(l.p95_ns >= l.p50_ns);
        assert!(l.p99_ns >= l.p95_ns);
        assert!(l.p99_ns <= l.max_ns);
        assert_eq!(l.buckets.iter().map(|(_, c)| c).sum::<u64>(), 10);
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let stats = EngineStats::new();
        stats.record_tick(Duration::from_micros(42), 9, true);
        stats.record_fallback("needs \"quoting\"\n");
        let json = stats.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ticks\":1"));
        assert!(json.contains("\"chains_stepped\":9"));
        assert!(json.contains("\\\"quoting\\\"\\n"));
        // Balanced braces/brackets outside of strings.
        let (mut depth, mut in_str, mut esc) = (0i32, false, false);
        for c in json.chars() {
            match (in_str, esc, c) {
                (true, true, _) => esc = false,
                (true, false, '\\') => esc = true,
                (true, false, '"') => in_str = false,
                (true, _, _) => {}
                (false, _, '"') => in_str = true,
                (false, _, '{') | (false, _, '[') => depth += 1,
                (false, _, '}') | (false, _, ']') => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = EngineStats::new().snapshot();
        assert_eq!(snap.ticks, 0);
        let json = snap.to_json();
        assert!(json.contains("\"count\":0"));
        assert!(json.contains("\"buckets\":[]"));
    }

    #[test]
    fn empty_and_populated_snapshots_parse_as_json() {
        let stats = EngineStats::new();
        // Empty histogram first — this is the case that used to risk a
        // bare NaN token for the mean.
        let doc = crate::json::parse(&stats.snapshot().to_json()).unwrap();
        let lat = doc.get("tick_latency_ns").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(0));
        assert_eq!(lat.get("mean").unwrap().as_f64(), Some(0.0));

        stats.record_tick(Duration::from_micros(7), 3, true);
        stats.record_degraded_tick();
        stats.record_recovery();
        stats.record_checkpoint();
        stats.record_fallback("needs \"quoting\"\n");
        let doc = crate::json::parse(&stats.snapshot().to_json()).unwrap();
        assert_eq!(doc.get("degraded_ticks").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("recoveries").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("checkpoints_taken").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn non_finite_mean_is_guarded_in_json() {
        let mut snap = EngineStats::new().snapshot();
        snap.tick_latency.mean_ns = f64::NAN;
        let doc = crate::json::parse(&snap.to_json()).expect("NaN mean must not break JSON");
        let lat = doc.get("tick_latency_ns").unwrap();
        assert_eq!(lat.get("mean").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn stats_state_round_trips_losslessly() {
        let stats = EngineStats::new();
        for us in [3u64, 17, 290, 5_000] {
            stats.record_tick(Duration::from_micros(us), 4, us % 2 == 0);
        }
        stats.record_degraded_tick();
        stats.record_recovery();
        stats.record_checkpoint();
        stats.record_grounding(6);
        stats.record_alerts(2);
        stats.record_sampler(512);
        stats.record_fallback("why");
        let state = stats.export_state();
        let restored = EngineStats::from_state(&state);
        assert_eq!(restored.export_state(), state);
        assert_eq!(restored.snapshot(), stats.snapshot());
    }
}
