//! Compiled dense kernels for the independent-mode hot path.
//!
//! Three cooperating pieces turn the interpreted per-chain automaton walk
//! into table lookups (the classic NFA-interpreter → compiled-DFA jump):
//!
//! * [`SharedAutomaton`] — one append-only, on-the-fly-determinized DFA
//!   per query *structure*, shared behind an `Arc` by every grounded
//!   binding (and, via a global registry keyed by the compiled regex,
//!   across queries and sessions with the same shape). Once no new DFA
//!   state or symbol set has been discovered for
//!   [`FREEZE_AFTER_QUIET`] resolutions, the automaton freezes into a
//!   dense `next[q * n_slots + slot]` transition table with a
//!   precomputed accepting mask; a novel symbol set or state simply
//!   misses the table and falls back to the mutex-protected
//!   interpreter, which refreezes once things go quiet again.
//! * [`LocalDfa`] — each chain's *private* view of the shared automaton.
//!   Chains keep their own dense state numbering in **local discovery
//!   order** (exactly the ids a private [`crate::DfaCache`] would have
//!   assigned), so mass-vector layout, float accumulation order, and
//!   checkpointed `dfa_sets` stay bit-identical to the interpreted
//!   path and independent of how many chains share the automaton or
//!   which worker thread touched it first. The local dense table
//!   `trans[q * stride + slot]` is the per-step fast path: no locks, no
//!   hashing, one bounds-checked load.
//! * [`SymCache`] + [`SigKey`] — chains whose `(streams, symbol table)`
//!   signature matches compute identical per-tick symbol distributions;
//!   the session computes each distinct distribution once per tick and
//!   shares the flat sorted `Vec<(SymbolSet, f64)>` across every chain
//!   in the registry.

use lahar_automata::{BitSet, Nfa, SymbolSet};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock, Weak};

/// Sentinel for "not yet resolved" in dense transition tables.
pub(crate) const UNKNOWN: u32 = u32::MAX;

/// Consecutive interpreter resolutions without a new DFA state or symbol
/// slot after which the shared automaton freezes into a dense table.
pub(crate) const FREEZE_AFTER_QUIET: u32 = 64;

/// Upper bound on DFA states a freeze will close over; automata larger
/// than this stay on the interpreter (the dense grid would be wasteful).
const FREEZE_STATE_CAP: usize = 4096;

/// Which path resolved a transition that missed the local dense table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Via {
    /// Served lock-free from the frozen dense table.
    Frozen,
    /// Served by the mutex-protected on-the-fly interpreter.
    Interpreter,
}

/// Per-chain kernel path counters, harvested each tick by the session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct KernelCounters {
    /// Transitions served by the chain's local dense table.
    pub fast: u64,
    /// Transitions served by the shared frozen table.
    pub frozen: u64,
    /// Transitions that took the interpreter (mutex) path.
    pub slow: u64,
    /// Lane-transitions routed by the batched struct-of-arrays kernel
    /// (scalar flat-loop dispatch).
    pub soa: u64,
    /// Lane-transitions routed by the batched kernel's explicit SIMD
    /// dispatch (AVX2/SSE2).
    pub simd: u64,
}

impl KernelCounters {
    pub(crate) fn add(&mut self, other: KernelCounters) {
        self.fast += other.fast;
        self.frozen += other.frozen;
        self.slow += other.slow;
        self.soa += other.soa;
        self.simd += other.simd;
    }
}

/// Aggregated kernel telemetry for one shard-step (or one tick).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct KernelTickStats {
    /// Dense/frozen/interpreter transition counts.
    pub steps: KernelCounters,
    /// Symbol-distribution cache hits.
    pub sym_hits: u64,
    /// Symbol-distribution cache misses (distributions computed).
    pub sym_misses: u64,
}

impl KernelTickStats {
    pub(crate) fn add(&mut self, other: &KernelTickStats) {
        self.steps.add(other.steps);
        self.sym_hits += other.sym_hits;
        self.sym_misses += other.sym_misses;
    }
}

// ---------------------------------------------------------------------------
// Shared automaton
// ---------------------------------------------------------------------------

/// Mutex-protected mutable core of a [`SharedAutomaton`]: the on-the-fly
/// determinization state, shared by all chains bound to this automaton.
/// State and slot ids here are *shared* ids; chains remap them to local
/// discovery order (see [`LocalDfa`]) so nothing observable depends on
/// the cross-chain interleaving of discoveries.
#[derive(Debug)]
struct SharedDfa {
    sets: Vec<BitSet>,
    ids: HashMap<BitSet, u32>,
    /// `(shared state, shared slot) -> shared state` memo.
    trans: HashMap<(u32, u32), u32>,
    accepting: Vec<bool>,
    slot_ids: HashMap<SymbolSet, u32>,
    slot_syms: Vec<SymbolSet>,
    /// Interpreter resolutions since the last new state/slot discovery.
    quiet: u32,
    /// Set when the automaton is too large to freeze densely.
    freeze_disabled: bool,
}

impl SharedDfa {
    /// Interns `sym`, returning its shared slot id.
    fn slot_locked(&mut self, sym: SymbolSet) -> u32 {
        match self.slot_ids.get(&sym) {
            Some(&s) => s,
            None => {
                let id = self.slot_syms.len() as u32;
                self.slot_syms.push(sym);
                self.slot_ids.insert(sym, id);
                self.quiet = 0;
                id
            }
        }
    }

    /// The memoized transition `δ(q, slot)`, discovering states as needed.
    fn resolve_slot_locked(&mut self, nfa: &Nfa, q: u32, slot: u32) -> (u32, bool) {
        if let Some(&q2) = self.trans.get(&(q, slot)) {
            self.quiet = self.quiet.saturating_add(1);
            return (q2, self.accepting[q2 as usize]);
        }
        let next = nfa.step(&self.sets[q as usize], self.slot_syms[slot as usize]);
        let id = match self.ids.get(&next) {
            Some(&id) => id,
            None => {
                let id = self.sets.len() as u32;
                self.accepting.push(nfa.is_accepting(&next));
                self.ids.insert(next.clone(), id);
                self.sets.push(next);
                self.quiet = 0;
                id
            }
        };
        self.trans.insert((q, slot), id);
        (id, self.accepting[id as usize])
    }
}

/// Frozen dense compilation of a [`SharedDfa`] snapshot: complete over
/// its `n_states × n_slots` grid, so any in-bounds hit is a valid
/// transition forever (DFA transitions never change, the automaton only
/// grows). Novel states or symbol sets miss the bounds/slot lookup and
/// fall back to the interpreter.
#[derive(Debug)]
struct FrozenTable {
    /// `next[q * n_slots + slot]` — shared state ids.
    next: Vec<u32>,
    /// Accepting mask per shared state id.
    accepting: Vec<bool>,
    n_states: usize,
    n_slots: usize,
    slot_ids: HashMap<SymbolSet, u32>,
}

/// An `Arc`-shared, append-only compiled automaton: one per distinct
/// query structure, shared by every grounded binding of that structure.
#[derive(Debug)]
pub(crate) struct SharedAutomaton {
    nfa: Nfa,
    inner: Mutex<SharedDfa>,
    frozen: RwLock<Option<Arc<FrozenTable>>>,
}

impl SharedAutomaton {
    pub(crate) fn new(nfa: Nfa) -> Self {
        let initial = nfa.initial().clone();
        let accepting = vec![nfa.is_accepting(&initial)];
        let inner = SharedDfa {
            ids: HashMap::from([(initial.clone(), 0)]),
            sets: vec![initial],
            trans: HashMap::new(),
            accepting,
            slot_ids: HashMap::new(),
            slot_syms: Vec::new(),
            quiet: 0,
            freeze_disabled: false,
        };
        Self {
            nfa,
            inner: Mutex::new(inner),
            frozen: RwLock::new(None),
        }
    }

    pub(crate) fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Whether the initial state (shared id 0) is accepting.
    pub(crate) fn initial_accepting(&self) -> bool {
        self.inner.lock().unwrap().accepting[0]
    }

    /// True once a frozen dense table has been built (test aid).
    #[cfg(test)]
    pub(crate) fn is_frozen(&self) -> bool {
        self.frozen.read().unwrap().is_some()
    }

    /// Resolves `δ(q, sym)` for a shared state id, preferring the frozen
    /// dense table when allowed. Returns the shared successor id, its
    /// accepting bit, and which path served the lookup.
    pub(crate) fn resolve(&self, q: u32, sym: SymbolSet, allow_frozen: bool) -> (u32, bool, Via) {
        if allow_frozen {
            if let Some(f) = self.frozen.read().unwrap().as_ref() {
                if let Some(&slot) = f.slot_ids.get(&sym) {
                    if (q as usize) < f.n_states {
                        let q2 = f.next[q as usize * f.n_slots + slot as usize];
                        return (q2, f.accepting[q2 as usize], Via::Frozen);
                    }
                }
            }
        }
        let mut inner = self.inner.lock().unwrap();
        let slot = inner.slot_locked(sym);
        let (q2, acc) = inner.resolve_slot_locked(&self.nfa, q, slot);
        if inner.quiet >= FREEZE_AFTER_QUIET {
            self.refreeze(&mut inner);
        }
        (q2, acc, Via::Interpreter)
    }

    /// Builds (or extends) the frozen dense table: closes the transition
    /// grid over every known `(state, slot)` pair — which may itself
    /// discover states — then snapshots it densely.
    fn refreeze(&self, inner: &mut SharedDfa) {
        inner.quiet = 0;
        if inner.freeze_disabled {
            return;
        }
        if let Some(f) = self.frozen.read().unwrap().as_ref() {
            if f.n_states >= inner.sets.len() && f.n_slots >= inner.slot_syms.len() {
                return; // nothing new since the last freeze
            }
        }
        let mut q = 0;
        while q < inner.sets.len() {
            if inner.sets.len() > FREEZE_STATE_CAP {
                inner.freeze_disabled = true;
                return;
            }
            for slot in 0..inner.slot_syms.len() as u32 {
                inner.resolve_slot_locked(&self.nfa, q as u32, slot);
            }
            q += 1;
        }
        let (n_states, n_slots) = (inner.sets.len(), inner.slot_syms.len());
        let mut next = vec![UNKNOWN; n_states * n_slots];
        for q in 0..n_states as u32 {
            for slot in 0..n_slots as u32 {
                next[q as usize * n_slots + slot as usize] = inner.trans[&(q, slot)];
            }
        }
        let table = FrozenTable {
            next,
            accepting: inner.accepting.clone(),
            n_states,
            n_slots,
            slot_ids: inner.slot_ids.clone(),
        };
        *self.frozen.write().unwrap() = Some(Arc::new(table));
        inner.quiet = 0;
    }

    /// Interns a state set (checkpoint restore), returning its shared id
    /// and accepting bit.
    fn intern_set(&self, bits: BitSet) -> (u32, bool) {
        let mut inner = self.inner.lock().unwrap();
        match inner.ids.get(&bits) {
            Some(&id) => (id, inner.accepting[id as usize]),
            None => {
                let id = inner.sets.len() as u32;
                let acc = self.nfa.is_accepting(&bits);
                inner.accepting.push(acc);
                inner.ids.insert(bits.clone(), id);
                inner.sets.push(bits);
                inner.quiet = 0;
                (id, acc)
            }
        }
    }

    /// The NFA state indices of shared state `id`, sorted ascending
    /// (checkpoint export).
    fn set_bits(&self, id: u32) -> Vec<u32> {
        self.inner.lock().unwrap().sets[id as usize]
            .iter()
            .map(|i| i as u32)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Global automaton registry
// ---------------------------------------------------------------------------

static REGISTRY: OnceLock<Mutex<HashMap<String, Weak<SharedAutomaton>>>> = OnceLock::new();

/// Returns the shared automaton for a query structure (keyed by its
/// compiled regex), building it on first use. Returns `(automaton,
/// reused)` where `reused` is true when an existing automaton was
/// attached rather than compiled fresh.
pub(crate) fn shared_automaton(
    key: &str,
    build: impl FnOnce() -> Nfa,
) -> (Arc<SharedAutomaton>, bool) {
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = registry.lock().unwrap();
    if let Some(existing) = map.get(key).and_then(Weak::upgrade) {
        return (existing, true);
    }
    let automaton = Arc::new(SharedAutomaton::new(build()));
    map.insert(key.to_owned(), Arc::downgrade(&automaton));
    // Opportunistically drop entries whose automata have been dropped.
    map.retain(|_, w| w.strong_count() > 0);
    (automaton, false)
}

// ---------------------------------------------------------------------------
// Per-chain local view
// ---------------------------------------------------------------------------

/// A chain's private dense view of a [`SharedAutomaton`].
///
/// Local state ids are assigned in **this chain's** discovery order —
/// identical to what a private [`crate::DfaCache`] would assign — so the
/// mass vector layout, accumulation order, and checkpointed `dfa_sets`
/// are independent of sharing. `trans[q * stride + slot]` (local ids on
/// both axes) is the allocation- and lock-free fast path.
#[derive(Debug, Clone)]
pub(crate) struct LocalDfa {
    shared: Arc<SharedAutomaton>,
    /// Local id -> shared id, in local discovery order (0 = initial).
    local_to_shared: Vec<u32>,
    /// Shared id -> local id ([`UNKNOWN`] = not seen by this chain).
    shared_to_local: Vec<u32>,
    /// Accepting mask per local id, packed 64 states per word
    /// (bit `q % 64` of word `q / 64`).
    acc_words: Vec<u64>,
    /// Bumped whenever the local state numbering changes (new state
    /// discovered or a checkpoint import rebuilt it). The SoA batcher
    /// keys lane-compatibility checks and cached transition columns on
    /// this, so a stale batch layout can never be applied.
    layout_version: u64,
    /// Dense transitions: `trans[q * stride + slot]`, [`UNKNOWN`] = miss.
    trans: Vec<u32>,
    stride: usize,
    /// Sorted `(symbol set, local slot)` for branch-free binary lookup.
    slot_ids: Vec<(SymbolSet, u32)>,
    /// Local slot -> symbol set.
    slot_syms: Vec<SymbolSet>,
    /// Test hook: bypass both dense tables, forcing every transition
    /// through the shared interpreter (identical results, no compilation).
    force_interpreter: bool,
    counters: KernelCounters,
    /// `(layout_version stamp, fingerprint)` memo for
    /// [`LocalDfa::layout_fp`]: the SoA planner fingerprints every
    /// chain's numbering every tick, and the numbering only changes when
    /// `layout_version` bumps. `u64::MAX` stamp = not yet computed.
    fp_memo: std::cell::Cell<(u64, u64)>,
}

const INITIAL_STRIDE: usize = 4;

/// Sets or clears bit `q` in a packed accepting mask, growing it to
/// cover `q`.
fn set_acc_bit(words: &mut Vec<u64>, q: usize, accepting: bool) {
    let w = q / 64;
    if w >= words.len() {
        words.resize(w + 1, 0);
    }
    if accepting {
        words[w] |= 1u64 << (q % 64);
    } else {
        words[w] &= !(1u64 << (q % 64));
    }
}

impl LocalDfa {
    pub(crate) fn new(shared: Arc<SharedAutomaton>) -> Self {
        let mut acc_words = Vec::new();
        set_acc_bit(&mut acc_words, 0, shared.initial_accepting());
        Self {
            shared,
            local_to_shared: vec![0],
            shared_to_local: vec![0],
            acc_words,
            layout_version: 0,
            trans: vec![UNKNOWN; INITIAL_STRIDE],
            stride: INITIAL_STRIDE,
            slot_ids: Vec::new(),
            slot_syms: Vec::new(),
            force_interpreter: false,
            counters: KernelCounters::default(),
            fp_memo: std::cell::Cell::new((u64::MAX, 0)),
        }
    }

    pub(crate) fn automaton(&self) -> &Arc<SharedAutomaton> {
        &self.shared
    }

    pub(crate) fn n_states(&self) -> usize {
        self.local_to_shared.len()
    }

    pub(crate) fn is_accepting(&self, q: u32) -> bool {
        (self.acc_words[q as usize / 64] >> (q % 64)) & 1 != 0
    }

    /// Packed accepting mask: bit `q % 64` of word `q / 64` is set when
    /// local state `q` accepts.
    pub(crate) fn accepting_mask(&self) -> &[u64] {
        &self.acc_words
    }

    /// Local ids in discovery order → shared ids (the lane-layout
    /// identity the SoA batcher groups on).
    pub(crate) fn local_to_shared(&self) -> &[u32] {
        &self.local_to_shared
    }

    /// The local id of a shared state if this chain has discovered it,
    /// without assigning one (the batcher must never mutate numbering).
    pub(crate) fn peek_local(&self, shared_id: u32) -> Option<u32> {
        match self.shared_to_local.get(shared_id as usize) {
            Some(&l) if l != UNKNOWN => Some(l),
            _ => None,
        }
    }

    /// FNV-1a fingerprint of `local_to_shared`, memoized against
    /// `layout_version` (equal fingerprints are confirmed by exact slice
    /// comparison wherever grouping decisions depend on them).
    pub(crate) fn layout_fp(&self) -> u64 {
        let (stamp, fp) = self.fp_memo.get();
        if stamp == self.layout_version {
            return fp;
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for &v in &self.local_to_shared {
            h ^= u64::from(v);
            h = h.wrapping_mul(0x100000001b3);
        }
        self.fp_memo.set((self.layout_version, h));
        h
    }

    /// Monotone stamp of the local numbering; see `layout_version` docs.
    /// Read by unit tests today; reserved for cross-tick column caching
    /// in the batcher (which currently replans every tick).
    #[allow(dead_code)]
    pub(crate) fn layout_version(&self) -> u64 {
        self.layout_version
    }

    pub(crate) fn forces_interpreter(&self) -> bool {
        self.force_interpreter
    }

    pub(crate) fn set_force_interpreter(&mut self, on: bool) {
        self.force_interpreter = on;
    }

    pub(crate) fn take_counters(&mut self) -> KernelCounters {
        std::mem::take(&mut self.counters)
    }

    /// Interns a symbol set to its local slot id.
    pub(crate) fn slot_of(&mut self, sym: SymbolSet) -> u32 {
        match self.slot_ids.binary_search_by_key(&sym.0, |&(s, _)| s.0) {
            Ok(i) => self.slot_ids[i].1,
            Err(i) => {
                let id = self.slot_syms.len() as u32;
                self.slot_syms.push(sym);
                self.slot_ids.insert(i, (sym, id));
                if self.slot_syms.len() > self.stride {
                    self.grow_stride();
                }
                id
            }
        }
    }

    fn grow_stride(&mut self) {
        let new_stride = (self.stride * 2).max(INITIAL_STRIDE);
        let n = self.local_to_shared.len();
        let mut trans = vec![UNKNOWN; n * new_stride];
        for q in 0..n {
            trans[q * new_stride..q * new_stride + self.stride]
                .copy_from_slice(&self.trans[q * self.stride..(q + 1) * self.stride]);
        }
        self.trans = trans;
        self.stride = new_stride;
    }

    /// Maps a shared state id to this chain's local numbering, assigning
    /// the next local id on first sight (local discovery order).
    fn local_of(&mut self, shared_id: u32, accepting: bool) -> u32 {
        let si = shared_id as usize;
        if si >= self.shared_to_local.len() {
            self.shared_to_local.resize(si + 1, UNKNOWN);
        }
        let cur = self.shared_to_local[si];
        if cur != UNKNOWN {
            return cur;
        }
        let id = self.local_to_shared.len() as u32;
        self.local_to_shared.push(shared_id);
        set_acc_bit(&mut self.acc_words, id as usize, accepting);
        self.shared_to_local[si] = id;
        self.trans.extend(std::iter::repeat_n(UNKNOWN, self.stride));
        self.layout_version += 1;
        id
    }

    /// The transition `δ(q, slot)` in local ids: dense-table hit when
    /// compiled, shared frozen table or interpreter otherwise.
    #[inline]
    pub(crate) fn step(&mut self, q: u32, slot: u32) -> u32 {
        let idx = q as usize * self.stride + slot as usize;
        if !self.force_interpreter {
            let t = self.trans[idx];
            if t != UNKNOWN {
                self.counters.fast += 1;
                return t;
            }
        }
        let sym = self.slot_syms[slot as usize];
        let shared_q = self.local_to_shared[q as usize];
        let (sq2, acc, via) = self.shared.resolve(shared_q, sym, !self.force_interpreter);
        match via {
            Via::Frozen => self.counters.frozen += 1,
            Via::Interpreter => self.counters.slow += 1,
        }
        let q2 = self.local_of(sq2, acc);
        if !self.force_interpreter {
            self.trans[q as usize * self.stride + slot as usize] = q2;
        }
        q2
    }

    /// Exports local state sets in local discovery order — the same
    /// format and ids [`crate::DfaCache::export_sets`] produces.
    pub(crate) fn export_sets(&self) -> Vec<Vec<u32>> {
        self.local_to_shared
            .iter()
            .map(|&sid| self.shared.set_bits(sid))
            .collect()
    }

    /// Re-interns checkpointed state sets (original local discovery
    /// order), rebuilding the local numbering so restored chains are
    /// bit-identical to the exporter. Dense memos are dropped; they
    /// re-resolve lazily with identical results.
    pub(crate) fn import_sets(&mut self, sets: &[Vec<u32>]) -> Result<(), String> {
        let n_nfa = self.shared.nfa().n_states();
        let mut local_to_shared = Vec::with_capacity(sets.len());
        let mut accepting = Vec::with_capacity(sets.len());
        for (idx, states) in sets.iter().enumerate() {
            let mut bs = BitSet::new(n_nfa);
            for &s in states {
                if s as usize >= n_nfa {
                    return Err(format!(
                        "DFA set {idx} references NFA state {s} but the automaton has {n_nfa}"
                    ));
                }
                bs.insert(s as usize);
            }
            if idx == 0 && bs != *self.shared.nfa().initial() {
                return Err(
                    "checkpointed DFA sets do not start with this automaton's initial set"
                        .to_owned(),
                );
            }
            let (sid, acc) = self.shared.intern_set(bs);
            if local_to_shared.contains(&sid) {
                return Err("checkpointed DFA sets contain duplicates".to_owned());
            }
            local_to_shared.push(sid);
            accepting.push(acc);
        }
        if local_to_shared.is_empty() {
            return Err(
                "checkpointed DFA sets do not start with this automaton's initial set".to_owned(),
            );
        }
        let max_shared = *local_to_shared.iter().max().unwrap() as usize;
        let mut shared_to_local = vec![UNKNOWN; max_shared + 1];
        for (local, &sid) in local_to_shared.iter().enumerate() {
            shared_to_local[sid as usize] = local as u32;
        }
        self.trans = vec![UNKNOWN; local_to_shared.len() * self.stride];
        self.acc_words.clear();
        for (local, &acc) in accepting.iter().enumerate() {
            set_acc_bit(&mut self.acc_words, local, acc);
        }
        self.local_to_shared = local_to_shared;
        self.shared_to_local = shared_to_local;
        self.slot_ids.clear();
        self.slot_syms.clear();
        self.layout_version += 1;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Per-tick symbol-distribution cache
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct SigData {
    hash: u64,
    streams: Vec<usize>,
    syms: Vec<Vec<SymbolSet>>,
}

/// Hash-consed `(streams, symbol table)` signature of a chain: two
/// chains with equal signatures compute identical per-tick symbol
/// distributions from the same staged marginals.
#[derive(Debug, Clone)]
pub(crate) struct SigKey(Arc<SigData>);

impl SigKey {
    pub(crate) fn new(streams: &[usize], syms: &[Vec<SymbolSet>]) -> Self {
        // FNV-1a over the structure: deterministic across runs/threads.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(streams.len() as u64);
        for &s in streams {
            mix(s as u64);
        }
        for table in syms {
            mix(table.len() as u64);
            for sym in table {
                mix(sym.0);
            }
        }
        Self(Arc::new(SigData {
            hash: h,
            streams: streams.to_vec(),
            syms: syms.to_vec(),
        }))
    }

    /// The FNV-1a fingerprint (what [`SigHasher`] passes through).
    #[cfg(test)]
    pub(crate) fn fingerprint(&self) -> u64 {
        self.0.hash
    }

    /// Test-only: a key with a *forged* fingerprint, for exercising the
    /// equal-hash/different-content fallback in [`SigKey::eq`] that the
    /// pass-through [`SigHasher`] makes load-bearing.
    #[cfg(test)]
    pub(crate) fn forged(hash: u64, streams: &[usize], syms: &[Vec<SymbolSet>]) -> Self {
        Self(Arc::new(SigData {
            hash,
            streams: streams.to_vec(),
            syms: syms.to_vec(),
        }))
    }
}

impl PartialEq for SigKey {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
            || (self.0.hash == other.0.hash
                && self.0.streams == other.0.streams
                && self.0.syms == other.0.syms)
    }
}
impl Eq for SigKey {}
impl std::hash::Hash for SigKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

/// Per-tick cache of symbol distributions keyed by chain signature.
/// Cleared (but not deallocated) at every tick; one instance lives per
/// sequential session and per worker thread.
/// Pass-through hasher for [`SymCache`]'s map: [`SigKey`] already carries
/// a well-mixed FNV-1a fingerprint, so re-hashing it through SipHash per
/// chain per tick is pure overhead on the hot path.
#[derive(Debug, Default)]
struct SigHasher(u64);

impl std::hash::Hasher for SigHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("SigKey hashes via write_u64 only");
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

#[derive(Debug, Default)]
pub(crate) struct SymCache {
    map: HashMap<SigKey, u32, std::hash::BuildHasherDefault<SigHasher>>,
    /// Arena of distributions; the first `live` entries are valid this tick.
    dists: Vec<Vec<(SymbolSet, f64)>>,
    live: usize,
    /// Scratch for union-convolution (reused across fills).
    tmp: Vec<(SymbolSet, f64)>,
    hits: u64,
    misses: u64,
}

impl SymCache {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Invalidates every entry (start of a tick), keeping allocations.
    pub(crate) fn begin_tick(&mut self) {
        self.map.clear();
        self.live = 0;
    }

    /// Looks up this tick's distribution for a signature.
    pub(crate) fn lookup(&mut self, key: &SigKey) -> Option<u32> {
        let found = self.map.get(key).copied();
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Computes and stores a distribution via `fill(out, tmp)`.
    pub(crate) fn insert_with(
        &mut self,
        key: SigKey,
        fill: impl FnOnce(&mut Vec<(SymbolSet, f64)>, &mut Vec<(SymbolSet, f64)>),
    ) -> u32 {
        if self.live == self.dists.len() {
            self.dists.push(Vec::new());
        }
        let idx = self.live;
        let out = &mut self.dists[idx];
        out.clear();
        fill(out, &mut self.tmp);
        self.map.insert(key, idx as u32);
        self.live += 1;
        self.misses += 1;
        idx as u32
    }

    pub(crate) fn dist(&self, idx: u32) -> &[(SymbolSet, f64)] {
        &self.dists[idx as usize]
    }

    /// Drains the hit/miss counters accumulated since the last call.
    pub(crate) fn take_counters(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.hits),
            std::mem::take(&mut self.misses),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahar_automata::Regex;

    fn sample_automaton() -> Arc<SharedAutomaton> {
        // .* ; {bit0} ; {bit1} — a two-step sequence over match bits.
        let regex = Regex::any_star()
            .then(Regex::superset(SymbolSet(0b01)))
            .then(Regex::superset(SymbolSet(0b10)));
        Arc::new(SharedAutomaton::new(Nfa::compile(&regex)))
    }

    #[test]
    fn local_ids_follow_local_discovery_order() {
        let shared = sample_automaton();
        let mut a = LocalDfa::new(shared.clone());
        let mut b = LocalDfa::new(shared);
        let s0 = SymbolSet(0b01);
        let s1 = SymbolSet(0b10);
        // Chain a discovers via s0 first; chain b via s1 first. Their
        // local numbering must match what a private DfaCache would do.
        let a_slot0 = a.slot_of(s0);
        let a_q1 = a.step(0, a_slot0);
        let b_slot1 = b.slot_of(s1);
        let b_q1 = b.step(0, b_slot1);
        assert_eq!(a_q1, 1);
        assert_eq!(b_q1, 1);
        // But they can map to different shared ids.
        let a_sets = a.export_sets();
        let b_sets = b.export_sets();
        assert_eq!(a_sets.len(), 2);
        assert_eq!(b_sets.len(), 2);
        assert_ne!(a_sets[1], b_sets[1]);
    }

    /// The SoA batcher keys lane compatibility on `layout_version`: it
    /// must bump on every numbering change (state discovery, checkpoint
    /// import) and stay put across read-only lookups like `peek_local`.
    #[test]
    fn layout_version_bumps_only_on_numbering_changes() {
        let shared = sample_automaton();
        let mut dfa = LocalDfa::new(shared);
        assert_eq!(dfa.layout_version(), 0);
        let slot = dfa.slot_of(SymbolSet(0b01));
        let q1 = dfa.step(0, slot);
        let after_discovery = dfa.layout_version();
        assert!(after_discovery > 0, "discovery must bump the version");
        // Read-only batcher probes leave the numbering alone.
        let shared_q1 = dfa.local_to_shared()[q1 as usize];
        assert_eq!(dfa.peek_local(shared_q1), Some(q1));
        let _ = dfa.accepting_mask();
        assert_eq!(dfa.layout_version(), after_discovery);
        // Re-stepping an already-discovered transition is also stable.
        let _ = dfa.step(0, slot);
        assert_eq!(dfa.layout_version(), after_discovery);
        // A checkpoint import rebuilds the numbering and must bump.
        let sets = dfa.export_sets();
        dfa.import_sets(&sets).unwrap();
        assert!(dfa.layout_version() > after_discovery);
    }

    #[test]
    fn dense_table_and_interpreter_agree() {
        let shared = sample_automaton();
        let mut fast = LocalDfa::new(shared.clone());
        let mut slow = LocalDfa::new(shared);
        slow.set_force_interpreter(true);
        let alphabet = [
            SymbolSet(0),
            SymbolSet(0b01),
            SymbolSet(0b10),
            SymbolSet(0b11),
        ];
        for round in 0..200u32 {
            let sym = alphabet[(round % 4) as usize];
            let (fs, ss) = (fast.slot_of(sym), slow.slot_of(sym));
            for q in 0..fast.n_states().min(slow.n_states()) as u32 {
                assert_eq!(fast.step(q, fs), slow.step(q, ss), "round {round} q {q}");
            }
        }
        let c = fast.take_counters();
        assert!(c.fast > 0, "dense path never hit: {c:?}");
        let c = slow.take_counters();
        assert_eq!(c.fast, 0, "forced interpreter used the dense path");
    }

    #[test]
    fn automaton_freezes_after_quiet_period() {
        let shared = sample_automaton();
        let mut chain = LocalDfa::new(shared.clone());
        let alphabet = [
            SymbolSet(0),
            SymbolSet(0b01),
            SymbolSet(0b10),
            SymbolSet(0b11),
        ];
        // A fresh chain per round defeats the local table, forcing the
        // shared path until the freeze threshold trips.
        for _ in 0..FREEZE_AFTER_QUIET + 8 {
            let mut fresh = LocalDfa::new(shared.clone());
            for sym in alphabet {
                let slot = fresh.slot_of(sym);
                let q = fresh.step(0, slot);
                let slot2 = fresh.slot_of(sym);
                fresh.step(q, slot2);
            }
        }
        assert!(shared.is_frozen());
        // Frozen answers must agree with this chain's (dense) answers.
        let mut frozen_hits = 0;
        let mut fresh = LocalDfa::new(shared);
        for sym in alphabet {
            let slot = fresh.slot_of(sym);
            let chain_slot = chain.slot_of(sym);
            assert_eq!(fresh.step(0, slot), chain.step(0, chain_slot));
            frozen_hits += fresh.take_counters().frozen;
        }
        assert!(frozen_hits > 0, "fresh chain never hit the frozen table");
    }

    #[test]
    fn registry_shares_by_key_and_drops_dead_entries() {
        let build = || Nfa::compile(&Regex::any_star().then(Regex::superset(SymbolSet(0b01))));
        let (a, a_reused) = shared_automaton("kernel-test-key-1", build);
        let (b, b_reused) = shared_automaton("kernel-test-key-1", build);
        assert!(!a_reused);
        assert!(b_reused);
        assert!(Arc::ptr_eq(&a, &b));
        drop((a, b));
        let (_c, c_reused) = shared_automaton("kernel-test-key-1", build);
        assert!(!c_reused, "dead registry entry was resurrected");
    }

    #[test]
    fn sym_cache_shares_by_signature() {
        let syms_a = vec![vec![SymbolSet(0b01), SymbolSet(0)]];
        let syms_b = vec![vec![SymbolSet(0b10), SymbolSet(0)]];
        let k1 = SigKey::new(&[0], &syms_a);
        let k2 = SigKey::new(&[0], &syms_a);
        let k3 = SigKey::new(&[0], &syms_b);
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
        let mut cache = SymCache::new();
        cache.begin_tick();
        assert!(cache.lookup(&k1).is_none());
        let idx = cache.insert_with(k1, |out, _| out.push((SymbolSet(0b01), 1.0)));
        assert_eq!(cache.lookup(&k2), Some(idx));
        assert!(cache.lookup(&k3).is_none());
        assert_eq!(cache.dist(idx), &[(SymbolSet(0b01), 1.0)]);
        let (hits, misses) = cache.take_counters();
        assert_eq!((hits, misses), (1, 1));
        cache.begin_tick();
        assert!(cache.lookup(&k2).is_none(), "cache must clear per tick");
    }

    mod sigkey_collisions {
        use super::*;
        use proptest::prelude::*;

        fn syms_strategy() -> impl Strategy<Value = Vec<Vec<SymbolSet>>> {
            prop::collection::vec(
                prop::collection::vec((0u64..16).prop_map(SymbolSet), 1..4),
                1..3,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The pass-through [`SigHasher`] forwards the FNV
            /// fingerprint straight into the map, so two signatures
            /// with equal fingerprints but different content land in
            /// the same bucket and only [`SigKey::eq`]'s content
            /// comparison keeps them apart. Forge that collision and
            /// assert the cache never conflates the distributions.
            #[test]
            fn equal_fingerprints_different_content_stay_distinct(
                streams_a in prop::collection::vec(0usize..8, 1..4),
                streams_b in prop::collection::vec(0usize..8, 1..4),
                syms_a in syms_strategy(),
                syms_b in syms_strategy(),
                hash in 0u64..u64::MAX,
            ) {
                if streams_a == streams_b && syms_a == syms_b {
                    return Ok(()); // not a collision, nothing to check
                }
                let ka = SigKey::forged(hash, &streams_a, &syms_a);
                let kb = SigKey::forged(hash, &streams_b, &syms_b);
                prop_assert_eq!(ka.fingerprint(), kb.fingerprint());
                prop_assert!(ka != kb, "forged keys compare equal");

                let mut cache = SymCache::new();
                cache.begin_tick();
                let ia = cache.insert_with(ka.clone(), |out, _| {
                    out.push((SymbolSet(0b01), 0.25));
                });
                // The colliding key must MISS, not alias onto ka's entry.
                prop_assert_eq!(cache.lookup(&kb), None);
                let ib = cache.insert_with(kb.clone(), |out, _| {
                    out.push((SymbolSet(0b10), 0.75));
                });
                prop_assert!(ia != ib, "colliding keys shared a cache slot");
                prop_assert_eq!(cache.lookup(&ka), Some(ia));
                prop_assert_eq!(cache.lookup(&kb), Some(ib));
                prop_assert_eq!(cache.dist(ia), &[(SymbolSet(0b01), 0.25)][..]);
                prop_assert_eq!(cache.dist(ib), &[(SymbolSet(0b10), 0.75)][..]);
            }
        }
    }
}
