//! Blocking client for a [`crate::server::LaharServer`].
//!
//! [`LaharClient`] speaks the newline-delimited JSON protocol of
//! [`crate::protocol`] over one [`TcpStream`]. Commands are strictly
//! request/response, so a client is usable from one thread at a time;
//! open one client per thread for concurrency.
//!
//! Error mapping: transport failures become
//! [`EngineError::ServerUnavailable`], malformed frames become
//! [`EngineError::Protocol`], and server-side `Error` responses become
//! [`EngineError::Remote`].
//!
//! # Retries
//!
//! By default the client reports every failure immediately — including
//! the `overloaded` backpressure code — so tests and latency-sensitive
//! callers observe exactly what the server said. Callers that would
//! rather ride out transient trouble install a [`RetryPolicy`]:
//!
//! ```ignore
//! let mut client = LaharClient::connect_with_retry(
//!     addr, "telemetry", RetryPolicy::default(),
//! )?;
//! client.stage_tick(&marginals)?; // backs off and resends on overload
//! ```
//!
//! With a policy installed, the typed helpers retry with exponential
//! backoff and full jitter:
//!
//! * `overloaded` responses are always retried — the server applied
//!   nothing, so a resend is safe for every command;
//! * transport failures (connect refused, broken connection) are
//!   retried — with a fresh connection — only for commands that are
//!   safe to resend when the first attempt *might* have been applied:
//!   `ping`, `open`, `series`, and `checkpoint`. State-mutating
//!   commands (`register`, `stage`, `stage_ticks`, `tick`) are never
//!   resent over a broken connection, because the lost response may
//!   have been an ack and a resend would double-apply the mutation.

use crate::error::EngineError;
use crate::protocol::{
    encode_request, parse_response_with_id, Command, Response, WireAlert, WireCode, WireMarginal,
};
use crate::trace;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Bounded retry with exponential backoff and full jitter, installed on
/// a [`LaharClient`] via [`LaharClient::with_retry`] or
/// [`LaharClient::connect_with_retry`]. See the module docs for which
/// failures are retried.
///
/// Attempt `k` (0-based) sleeps a uniformly jittered duration in
/// `0 ..= min(base_delay · 2ᵏ, max_delay)` — "full jitter", which
/// decorrelates a fleet of clients hammering a recovering server. The
/// jitter sequence is a deterministic function of `seed`, so a test can
/// pin the exact sleep pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` disables retrying).
    pub max_retries: u32,
    /// Backoff scale: the cap on attempt `k`'s sleep is
    /// `base_delay · 2ᵏ` (until `max_delay` wins).
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
    /// Seed of the deterministic jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Eight retries, 10 ms base, 1 s cap — rides out a shard queue
    /// that stays saturated for a couple of seconds, then gives up.
    fn default() -> Self {
        Self {
            max_retries: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            seed: 0x1a4a_a55e_ed00_0007,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry `attempt` (0-based), drawing the
    /// `draw`-th value of the policy's deterministic jitter sequence.
    fn backoff(&self, attempt: u32, draw: u64) -> Duration {
        let ceiling = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.max_delay);
        let nanos = ceiling.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(
            splitmix64(self.seed ^ draw.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % nanos,
        )
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Whether a command is safe to resend when the previous attempt's fate
/// is unknown (transport died before the response arrived). Read-only
/// and create-if-absent commands qualify; mutations do not.
fn idempotent(cmd: &Command) -> bool {
    matches!(
        cmd,
        Command::Ping | Command::Open { .. } | Command::Series { .. } | Command::Checkpoint { .. }
    )
}

/// A blocking connection to a `lahar serve` endpoint, bound to one
/// named session (except [`LaharClient::ping`] and
/// [`LaharClient::shutdown_server`], which are server-level).
#[derive(Debug)]
pub struct LaharClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    session: String,
    /// Remembered for reconnects when a retry policy is installed.
    addr: SocketAddr,
    connect_timeout: Duration,
    retry: Option<RetryPolicy>,
    /// Jitter draws consumed so far (indexes the policy's deterministic
    /// jitter sequence).
    jitter_draws: u64,
    /// The last request id sent (0 = none yet); ids are monotonic per
    /// client, starting at 1, and echoed by the server.
    last_id: u64,
}

fn transport(op: &str, e: std::io::Error) -> EngineError {
    EngineError::ServerUnavailable(format!("{op}: {e}"))
}

fn open_streams(
    addr: SocketAddr,
    timeout: Duration,
) -> Result<(TcpStream, BufReader<TcpStream>), EngineError> {
    let stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| transport(&format!("connect {addr}"), e))?;
    stream
        .set_nodelay(true)
        .map_err(|e| transport("set_nodelay", e))?;
    let reader = BufReader::new(stream.try_clone().map_err(|e| transport("clone", e))?);
    Ok((stream, reader))
}

impl LaharClient {
    /// Connects to `addr` and binds this client to `session`. The
    /// session must be created (or restored) with [`LaharClient::open`]
    /// before any other session command; the server answers
    /// `unknown_session` otherwise.
    pub fn connect(addr: SocketAddr, session: &str) -> Result<Self, EngineError> {
        Self::connect_timeout(addr, session, Duration::from_secs(5))
    }

    /// [`LaharClient::connect`] with an explicit connect timeout.
    pub fn connect_timeout(
        addr: SocketAddr,
        session: &str,
        timeout: Duration,
    ) -> Result<Self, EngineError> {
        let (writer, reader) = open_streams(addr, timeout)?;
        Ok(Self {
            writer,
            reader,
            session: session.to_owned(),
            addr,
            connect_timeout: timeout,
            retry: None,
            jitter_draws: 0,
            last_id: 0,
        })
    }

    /// [`LaharClient::connect`] with `policy` installed — and applied to
    /// the connect itself, so a server that is still binding its port
    /// (or restarting after a crash) is retried instead of failed.
    pub fn connect_with_retry(
        addr: SocketAddr,
        session: &str,
        policy: RetryPolicy,
    ) -> Result<Self, EngineError> {
        let mut attempt = 0u32;
        let mut draws = 0u64;
        loop {
            match Self::connect(addr, session) {
                Ok(client) => return Ok(client.with_retry_state(policy, draws)),
                Err(e) if attempt < policy.max_retries => {
                    debug_assert!(matches!(e, EngineError::ServerUnavailable(_)));
                    std::thread::sleep(policy.backoff(attempt, draws));
                    attempt += 1;
                    draws += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Installs a retry policy on an already-connected client. See the
    /// module docs for which failures it covers.
    #[must_use]
    pub fn with_retry(self, policy: RetryPolicy) -> Self {
        self.with_retry_state(policy, 0)
    }

    fn with_retry_state(mut self, policy: RetryPolicy, draws: u64) -> Self {
        self.retry = Some(policy);
        self.jitter_draws = draws;
        self
    }

    /// The session name this client addresses.
    pub fn session(&self) -> &str {
        &self.session
    }

    /// The correlation id of the most recent request (0 before the
    /// first). The server echoes it verbatim in the matching response;
    /// the client verifies the echo on every call.
    pub fn last_id(&self) -> u64 {
        self.last_id
    }

    /// Sends one command and blocks for its response. Server-side
    /// `Error` responses are returned as `Ok(Response::Error { .. })`.
    ///
    /// Deprecated as a public entry point and demoted to `pub(crate)`:
    /// a raw [`Command`] lets a caller build malformed session-less
    /// frames the typed wrappers cannot express (e.g. a `Tick` naming a
    /// session this client is not bound to). The typed helpers
    /// ([`LaharClient::ping`], [`LaharClient::open`],
    /// [`LaharClient::stage_tick`], …) are the only supported path; they
    /// also lift error responses into [`EngineError::Remote`] and apply
    /// the installed [`RetryPolicy`].
    pub(crate) fn request(&mut self, cmd: &Command) -> Result<Response, EngineError> {
        let id = self.last_id + 1;
        self.last_id = id;
        let mut frame = encode_request(cmd, Some(id));
        frame.push('\n');
        {
            let _span = trace::span("client_send").with("req", id);
            self.writer
                .write_all(frame.as_bytes())
                .and_then(|()| self.writer.flush())
                .map_err(|e| transport("send", e))?;
        }
        let _span = trace::span("client_recv").with("req", id);
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| transport("recv", e))?;
        if n == 0 {
            return Err(EngineError::ServerUnavailable(
                "connection closed by server".to_owned(),
            ));
        }
        let (response, echoed) = parse_response_with_id(line.trim_end())?;
        // A server that speaks the id extension echoes it verbatim; an
        // older server omits it (tolerated). A *different* id means the
        // stream answered some other request — fail loudly instead of
        // mis-attributing the response.
        if let Some(echoed) = echoed {
            if echoed != id {
                return Err(EngineError::Protocol(format!(
                    "response id {echoed} does not match request id {id}"
                )));
            }
        }
        Ok(response)
    }

    /// As [`LaharClient::request`], but lifts `Error` responses into
    /// [`EngineError::Remote`] and — when a [`RetryPolicy`] is
    /// installed — retries per the module-level contract.
    fn call(&mut self, cmd: &Command) -> Result<Response, EngineError> {
        let mut attempt = 0u32;
        loop {
            let result = match self.request(cmd) {
                Ok(Response::Error { code, message }) => Err(EngineError::Remote { code, message }),
                other => other,
            };
            let Some(policy) = &self.retry else {
                return result;
            };
            let (retryable, reconnect) = match &result {
                // The server rejected the command at the queue, applying
                // nothing — any command is safe to resend.
                Err(EngineError::Remote {
                    code: WireCode::Overloaded,
                    ..
                }) => (true, false),
                // The transport died with the attempt's fate unknown;
                // only resend commands that tolerate a double apply.
                Err(EngineError::ServerUnavailable(_)) => (idempotent(cmd), true),
                _ => (false, false),
            };
            if !retryable || attempt >= policy.max_retries {
                return result;
            }
            let delay = policy.backoff(attempt, self.jitter_draws);
            self.jitter_draws += 1;
            attempt += 1;
            std::thread::sleep(delay);
            if reconnect {
                // Best effort: when the server is still down the next
                // request fails and the loop backs off again.
                if let Ok((writer, reader)) = open_streams(self.addr, self.connect_timeout) {
                    self.writer = writer;
                    self.reader = reader;
                }
            }
        }
    }

    fn unexpected(response: &Response) -> EngineError {
        EngineError::Protocol(format!("unexpected response {response:?}"))
    }

    /// Health check; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<u32, EngineError> {
        match self.call(&Command::Ping)? {
            Response::Pong { version } => Ok(version),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Opens (creates or restores) the session; returns `(t, restored)`
    /// where `t` is the session's current timestep.
    pub fn open(&mut self) -> Result<(u32, bool), EngineError> {
        let cmd = Command::Open {
            session: self.session.clone(),
        };
        match self.call(&cmd)? {
            Response::Opened { t, restored } => Ok((t, restored)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Registers a named query; returns its registration index.
    pub fn register(&mut self, name: &str, query: &str) -> Result<usize, EngineError> {
        let cmd = Command::Register {
            session: self.session.clone(),
            name: name.to_owned(),
            query: query.to_owned(),
        };
        match self.call(&cmd)? {
            Response::Registered { query } => Ok(query),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Stages a batch of marginals for the upcoming tick without
    /// closing it; returns the number staged.
    pub fn stage(&mut self, marginals: &[WireMarginal]) -> Result<usize, EngineError> {
        let cmd = Command::Stage {
            session: self.session.clone(),
            marginals: marginals.to_vec(),
            tick: false,
        };
        match self.call(&cmd)? {
            Response::Staged { staged } => Ok(staged),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Stages a batch and closes the tick in one round trip; returns
    /// the alerts of the closed tick.
    pub fn stage_tick(
        &mut self,
        marginals: &[WireMarginal],
    ) -> Result<Vec<WireAlert>, EngineError> {
        let cmd = Command::Stage {
            session: self.session.clone(),
            marginals: marginals.to_vec(),
            tick: true,
        };
        match self.call(&cmd)? {
            Response::Ticked { alerts, .. } => Ok(alerts),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Stages and closes a whole epoch of ticks in one round trip:
    /// element `i` of `ticks` carries the marginals of tick `t+i` (empty
    /// elements close all-⊥ ticks). Returns the alerts of every closed
    /// tick, oldest first — bit-identical to `ticks.len()` separate
    /// [`LaharClient::stage_tick`] round trips, but the server amortises
    /// one worker-pool join over each epoch of up to
    /// [`crate::SessionConfig::max_epoch_ticks`] ticks.
    pub fn stage_epoch(
        &mut self,
        ticks: &[Vec<WireMarginal>],
    ) -> Result<Vec<WireAlert>, EngineError> {
        let cmd = Command::StageTicks {
            session: self.session.clone(),
            ticks: ticks.to_vec(),
        };
        match self.call(&cmd)? {
            Response::Ticked { alerts, .. } => Ok(alerts),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Closes the current tick with whatever is staged.
    pub fn tick(&mut self) -> Result<Vec<WireAlert>, EngineError> {
        let cmd = Command::Tick {
            session: self.session.clone(),
        };
        match self.call(&cmd)? {
            Response::Ticked { alerts, .. } => Ok(alerts),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Fetches `μ(q@t)` for `t = 0..now` of a registered query — the
    /// same series [`crate::Lahar::prob_series`] would compute offline.
    pub fn series(&mut self, query: &str) -> Result<Vec<f64>, EngineError> {
        let cmd = Command::Series {
            session: self.session.clone(),
            query: query.to_owned(),
        };
        match self.call(&cmd)? {
            Response::Series { series, .. } => Ok(series),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Forces a checkpoint of the session now; returns the
    /// checkpointed timestep.
    pub fn checkpoint(&mut self) -> Result<u32, EngineError> {
        let cmd = Command::Checkpoint {
            session: self.session.clone(),
        };
        match self.call(&cmd)? {
            Response::Checkpointed { t } => Ok(t),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Asks the server to shut down gracefully (checkpointing every
    /// hosted session). The server acknowledges before tearing down.
    pub fn shutdown_server(&mut self) -> Result<(), EngineError> {
        match self.call(&Command::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            seed: 42,
        };
        for attempt in 0..10 {
            let ceiling = Duration::from_millis(10)
                .saturating_mul(1 << attempt)
                .min(Duration::from_millis(200));
            for draw in 0..50 {
                let d = policy.backoff(attempt, draw);
                assert!(d <= ceiling, "attempt {attempt} draw {draw}: {d:?}");
                // Same (seed, draw) → same sleep: the pattern is pinned.
                assert_eq!(d, policy.backoff(attempt, draw));
            }
        }
        // Jitter actually varies across draws.
        let draws: Vec<Duration> = (0..16).map(|d| policy.backoff(4, d)).collect();
        assert!(draws.iter().any(|d| *d != draws[0]));
        // A different seed yields a different pattern.
        let other = RetryPolicy {
            seed: 43,
            ..policy.clone()
        };
        assert!((0..16).any(|d| policy.backoff(4, d) != other.backoff(4, d)));
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let policy = RetryPolicy {
            max_retries: u32::MAX,
            base_delay: Duration::from_secs(1),
            max_delay: Duration::from_secs(2),
            ..RetryPolicy::default()
        };
        assert!(policy.backoff(u32::MAX, 0) <= Duration::from_secs(2));
    }

    #[test]
    fn only_safe_commands_are_resent_over_a_broken_connection() {
        let session = "s".to_owned();
        assert!(idempotent(&Command::Ping));
        assert!(idempotent(&Command::Open {
            session: session.clone()
        }));
        assert!(idempotent(&Command::Series {
            session: session.clone(),
            query: "q".to_owned()
        }));
        assert!(idempotent(&Command::Checkpoint {
            session: session.clone()
        }));
        assert!(!idempotent(&Command::Register {
            session: session.clone(),
            name: "q".to_owned(),
            query: "At('joe','a')".to_owned()
        }));
        assert!(!idempotent(&Command::Stage {
            session: session.clone(),
            marginals: Vec::new(),
            tick: true
        }));
        assert!(!idempotent(&Command::StageTicks {
            session: session.clone(),
            ticks: Vec::new()
        }));
        assert!(!idempotent(&Command::Tick { session }));
        assert!(!idempotent(&Command::Shutdown));
    }
}
