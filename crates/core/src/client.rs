//! Blocking client for a [`crate::server::LaharServer`].
//!
//! [`LaharClient`] speaks the newline-delimited JSON protocol of
//! [`crate::protocol`] over one [`TcpStream`]. Commands are strictly
//! request/response, so a client is usable from one thread at a time;
//! open one client per thread for concurrency.
//!
//! Error mapping: transport failures become
//! [`EngineError::ServerUnavailable`], malformed frames become
//! [`EngineError::Protocol`], and server-side `Error` responses become
//! [`EngineError::Remote`] — including the `overloaded` backpressure
//! code, which callers are expected to match on and retry:
//!
//! ```ignore
//! match client.stage_tick(&marginals) {
//!     Err(EngineError::Remote { code, .. }) if code == "overloaded" => retry_later(),
//!     other => other?,
//! }
//! ```

use crate::error::EngineError;
use crate::protocol::{encode_command, parse_response, Command, Response, WireAlert, WireMarginal};
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A blocking connection to a `lahar serve` endpoint, bound to one
/// named session (except [`LaharClient::ping`] and
/// [`LaharClient::shutdown_server`], which are server-level).
#[derive(Debug)]
pub struct LaharClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    session: String,
}

fn transport(op: &str, e: std::io::Error) -> EngineError {
    EngineError::ServerUnavailable(format!("{op}: {e}"))
}

impl LaharClient {
    /// Connects to `addr` and binds this client to `session`. The
    /// session must be created (or restored) with [`LaharClient::open`]
    /// before any other session command; the server answers
    /// `unknown_session` otherwise.
    pub fn connect(addr: SocketAddr, session: &str) -> Result<Self, EngineError> {
        Self::connect_timeout(addr, session, Duration::from_secs(5))
    }

    /// [`LaharClient::connect`] with an explicit connect timeout.
    pub fn connect_timeout(
        addr: SocketAddr,
        session: &str,
        timeout: Duration,
    ) -> Result<Self, EngineError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)
            .map_err(|e| transport(&format!("connect {addr}"), e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| transport("set_nodelay", e))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| transport("clone", e))?);
        Ok(Self {
            writer: stream,
            reader,
            session: session.to_owned(),
        })
    }

    /// The session name this client addresses.
    pub fn session(&self) -> &str {
        &self.session
    }

    /// Sends one command and blocks for its response. Server-side
    /// `Error` responses are returned as `Ok(Response::Error { .. })`;
    /// use the typed helpers to get them as [`EngineError::Remote`].
    pub fn request(&mut self, cmd: &Command) -> Result<Response, EngineError> {
        let mut frame = encode_command(cmd);
        frame.push('\n');
        self.writer
            .write_all(frame.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| transport("send", e))?;
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| transport("recv", e))?;
        if n == 0 {
            return Err(EngineError::ServerUnavailable(
                "connection closed by server".to_owned(),
            ));
        }
        parse_response(line.trim_end())
    }

    /// As [`LaharClient::request`], but lifts `Error` responses into
    /// [`EngineError::Remote`].
    fn call(&mut self, cmd: &Command) -> Result<Response, EngineError> {
        match self.request(cmd)? {
            Response::Error { code, message } => Err(EngineError::Remote { code, message }),
            ok => Ok(ok),
        }
    }

    fn unexpected(response: &Response) -> EngineError {
        EngineError::Protocol(format!("unexpected response {response:?}"))
    }

    /// Health check; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<u32, EngineError> {
        match self.call(&Command::Ping)? {
            Response::Pong { version } => Ok(version),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Opens (creates or restores) the session; returns `(t, restored)`
    /// where `t` is the session's current timestep.
    pub fn open(&mut self) -> Result<(u32, bool), EngineError> {
        let cmd = Command::Open {
            session: self.session.clone(),
        };
        match self.call(&cmd)? {
            Response::Opened { t, restored } => Ok((t, restored)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Registers a named query; returns its registration index.
    pub fn register(&mut self, name: &str, query: &str) -> Result<usize, EngineError> {
        let cmd = Command::Register {
            session: self.session.clone(),
            name: name.to_owned(),
            query: query.to_owned(),
        };
        match self.call(&cmd)? {
            Response::Registered { query } => Ok(query),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Stages a batch of marginals for the upcoming tick without
    /// closing it; returns the number staged.
    pub fn stage(&mut self, marginals: &[WireMarginal]) -> Result<usize, EngineError> {
        let cmd = Command::Stage {
            session: self.session.clone(),
            marginals: marginals.to_vec(),
            tick: false,
        };
        match self.call(&cmd)? {
            Response::Staged { staged } => Ok(staged),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Stages a batch and closes the tick in one round trip; returns
    /// the alerts of the closed tick.
    pub fn stage_tick(
        &mut self,
        marginals: &[WireMarginal],
    ) -> Result<Vec<WireAlert>, EngineError> {
        let cmd = Command::Stage {
            session: self.session.clone(),
            marginals: marginals.to_vec(),
            tick: true,
        };
        match self.call(&cmd)? {
            Response::Ticked { alerts, .. } => Ok(alerts),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Stages and closes a whole epoch of ticks in one round trip:
    /// element `i` of `ticks` carries the marginals of tick `t+i` (empty
    /// elements close all-⊥ ticks). Returns the alerts of every closed
    /// tick, oldest first — bit-identical to `ticks.len()` separate
    /// [`LaharClient::stage_tick`] round trips, but the server amortises
    /// one worker-pool join over each epoch of up to
    /// [`crate::SessionConfig::max_epoch_ticks`] ticks.
    pub fn stage_epoch(
        &mut self,
        ticks: &[Vec<WireMarginal>],
    ) -> Result<Vec<WireAlert>, EngineError> {
        let cmd = Command::StageTicks {
            session: self.session.clone(),
            ticks: ticks.to_vec(),
        };
        match self.call(&cmd)? {
            Response::Ticked { alerts, .. } => Ok(alerts),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Closes the current tick with whatever is staged.
    pub fn tick(&mut self) -> Result<Vec<WireAlert>, EngineError> {
        let cmd = Command::Tick {
            session: self.session.clone(),
        };
        match self.call(&cmd)? {
            Response::Ticked { alerts, .. } => Ok(alerts),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Fetches `μ(q@t)` for `t = 0..now` of a registered query — the
    /// same series [`crate::Lahar::prob_series`] would compute offline.
    pub fn series(&mut self, query: &str) -> Result<Vec<f64>, EngineError> {
        let cmd = Command::Series {
            session: self.session.clone(),
            query: query.to_owned(),
        };
        match self.call(&cmd)? {
            Response::Series { series, .. } => Ok(series),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Forces a checkpoint of the session now; returns the
    /// checkpointed timestep.
    pub fn checkpoint(&mut self) -> Result<u32, EngineError> {
        let cmd = Command::Checkpoint {
            session: self.session.clone(),
        };
        match self.call(&cmd)? {
            Response::Checkpointed { t } => Ok(t),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Asks the server to shut down gracefully (checkpointing every
    /// hosted session). The server acknowledges before tearing down.
    pub fn shutdown_server(&mut self) -> Result<(), EngineError> {
        match self.call(&Command::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }
}
