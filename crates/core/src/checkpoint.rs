//! Versioned snapshots of a [`crate::RealTimeSession`].
//!
//! The real-time path is an `O(1)`-space forward computation per chain
//! (§3 of the paper), so the *complete* session state — per-chain
//! forward distributions and automaton cursors, registered queries,
//! staged marginals, the recorded marginal history, the timestep, and
//! stats — is small and cheap to capture. A [`Checkpoint`] is that
//! capture; [`Checkpoint::to_json`] / [`Checkpoint::from_json`] move it
//! through a versioned, hand-rolled JSON document (the repo convention —
//! no serde), with every float in shortest round-trip form so a restore
//! is **bit-identical**: a session rebuilt with
//! [`crate::RealTimeSession::restore`] produces exactly the alerts the
//! original would have for the same future ticks.
//!
//! Checkpoints also anchor in-place recovery: the session keeps its
//! latest checkpoint plus a bounded replay log of marginals appended
//! since, and [`crate::RealTimeSession::recover`] rebuilds shards lost
//! to a fault from those instead of from the full history.

use crate::chain::ChainState;
use crate::error::EngineError;
use crate::json::{self, JsonValue};
use crate::session::{SessionConfig, TickMode};
use crate::stats::{HistogramState, QueryState, StatsState};
use std::collections::BTreeMap;
use std::time::Duration;

/// The checkpoint format version this build writes and reads.
///
/// Version history: 1 — initial format (PR 2); 2 — config gained
/// `metrics_addr`/`trace`, stats gained `marginals_staged` and the
/// `per_query` registry; 3 — stats gained the kernel-path counters
/// (`kernel_*_steps`, `sym_cache_*`) and shared-automaton gauges;
/// 4 — config gained `serve_addr`; 5 — config gained
/// `max_epoch_ticks`, stats gained the epoch counters
/// (`epochs`/`epoch_ticks`); 6 — config gained `durability`, and
/// persisted checkpoints are wrapped in the CRC-carrying envelope
/// ([`Checkpoint::to_envelope`]) (this build).
pub const CHECKPOINT_VERSION: u32 = 6;

/// Document-type marker embedded in every checkpoint.
const FORMAT: &str = "lahar-checkpoint";

/// Document-type marker on the first line of an enveloped checkpoint.
const ENVELOPE_FORMAT: &str = "lahar-checkpoint-envelope";

/// Envelope framing version (independent of [`CHECKPOINT_VERSION`]).
const ENVELOPE_VERSION: u32 = 1;

/// One registered query as captured in a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct QueryMeta {
    /// Registered name.
    pub(crate) name: String,
    /// Source text (required: structural restore re-compiles it).
    pub(crate) source: String,
    /// True for extended-regular recombination (`1 − Π(1 − pᵢ)`).
    pub(crate) extended: bool,
    /// Per-key chain count at capture time (validated on restore).
    pub(crate) n_chains: usize,
}

/// A complete, versioned snapshot of a [`crate::RealTimeSession`].
///
/// Produced by [`crate::RealTimeSession::checkpoint`], consumed by
/// [`crate::RealTimeSession::restore`]. Serializable with
/// [`Checkpoint::to_json`] and [`Checkpoint::from_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    pub(crate) version: u32,
    /// Ticks closed when the snapshot was taken.
    pub(crate) t: u32,
    pub(crate) config: SessionConfig,
    /// Staged (not yet ticked) marginal probabilities per stream.
    pub(crate) staged: Vec<Option<Vec<f64>>>,
    pub(crate) queries: Vec<QueryMeta>,
    /// Per-chain forward state in global chain-sequence order.
    pub(crate) chains: Vec<ChainState>,
    /// `history[stream][tick][outcome]` — the full recorded marginal
    /// history, so a cold restore rebuilds an identical database.
    pub(crate) history: Vec<Vec<Vec<f64>>>,
    pub(crate) stats: StatsState,
}

impl Checkpoint {
    /// The format version of this checkpoint.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The session clock (ticks closed) at capture time.
    pub fn t(&self) -> u32 {
        self.t
    }

    /// Number of registered queries captured.
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of per-key chains captured.
    pub fn n_chains(&self) -> usize {
        self.chains.len()
    }

    /// The session configuration captured with the snapshot (the
    /// default configuration [`crate::RealTimeSession::restore`] resumes
    /// under).
    pub fn config(&self) -> SessionConfig {
        self.config
    }

    /// Serializes the checkpoint as a versioned JSON document. All
    /// floats are written in shortest round-trip form, so
    /// [`Checkpoint::from_json`] reproduces this checkpoint bit for bit.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"format\":");
        json::push_string(&mut out, FORMAT);
        out.push_str(&format!(",\"version\":{},\"t\":{},", self.version, self.t));
        out.push_str("\"config\":");
        push_config(&mut out, &self.config);
        out.push_str(",\"staged\":[");
        for (i, staged) in self.staged.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match staged {
                None => out.push_str("null"),
                Some(probs) => push_f64_array(&mut out, probs),
            }
        }
        out.push_str("],\"queries\":[");
        for (i, q) in self.queries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::push_string(&mut out, &q.name);
            out.push_str(",\"source\":");
            json::push_string(&mut out, &q.source);
            out.push_str(&format!(
                ",\"extended\":{},\"n_chains\":{}}}",
                q.extended, q.n_chains
            ));
        }
        out.push_str("],\"chains\":[");
        for (i, c) in self.chains.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"t\":{},\"dist\":", c.t));
            push_f64_array(&mut out, &c.dist);
            out.push_str(",\"dfa_sets\":[");
            for (j, set) in c.dfa_sets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_u64_array(&mut out, set.iter().map(|&s| u64::from(s)));
            }
            out.push_str("]}");
        }
        out.push_str("],\"history\":[");
        for (i, stream) in self.history.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, tick) in stream.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_f64_array(&mut out, tick);
            }
            out.push(']');
        }
        out.push_str("],\"stats\":");
        push_stats(&mut out, &self.stats);
        out.push('}');
        out
    }

    /// Parses a checkpoint produced by [`Checkpoint::to_json`]. Any
    /// structural problem — wrong document type, unsupported version,
    /// missing or mistyped fields — is reported as
    /// [`EngineError::CheckpointCorrupt`].
    pub fn from_json(input: &str) -> Result<Self, EngineError> {
        let doc = json::parse(input).map_err(|e| EngineError::CheckpointCorrupt(e.to_string()))?;
        if doc.get("format").and_then(JsonValue::as_str) != Some(FORMAT) {
            return Err(corrupt("not a lahar-checkpoint document"));
        }
        let version = get_u64(&doc, "version")? as u32;
        if version != CHECKPOINT_VERSION {
            return Err(EngineError::CheckpointCorrupt(format!(
                "unsupported checkpoint version {version} (this build reads version {CHECKPOINT_VERSION})"
            )));
        }
        let t = get_u64(&doc, "t")? as u32;
        let config = parse_config(get(&doc, "config")?)?;
        let staged = get_array(&doc, "staged")?
            .iter()
            .map(|v| match v {
                JsonValue::Null => Ok(None),
                other => f64_array(other, "staged marginal").map(Some),
            })
            .collect::<Result<_, _>>()?;
        let queries = get_array(&doc, "queries")?
            .iter()
            .map(|v| {
                Ok(QueryMeta {
                    name: get_str(v, "name")?,
                    source: get_str(v, "source")?,
                    extended: get_bool(v, "extended")?,
                    n_chains: get_u64(v, "n_chains")? as usize,
                })
            })
            .collect::<Result<_, EngineError>>()?;
        let chains = get_array(&doc, "chains")?
            .iter()
            .map(|v| {
                let dfa_sets = get_array(v, "dfa_sets")?
                    .iter()
                    .map(|set| {
                        Ok(u64_array(set, "dfa set")?
                            .into_iter()
                            .map(|s| s as u32)
                            .collect())
                    })
                    .collect::<Result<_, EngineError>>()?;
                Ok(ChainState {
                    t: get_u64(v, "t")? as u32,
                    dist: f64_array(get(v, "dist")?, "chain dist")?,
                    dfa_sets,
                })
            })
            .collect::<Result<_, EngineError>>()?;
        let history = get_array(&doc, "history")?
            .iter()
            .map(|stream| {
                stream
                    .as_array()
                    .ok_or_else(|| corrupt("stream history is not an array"))?
                    .iter()
                    .map(|tick| f64_array(tick, "history marginal"))
                    .collect::<Result<_, _>>()
            })
            .collect::<Result<_, EngineError>>()?;
        let stats = parse_stats(get(&doc, "stats")?)?;
        Ok(Self {
            version,
            t,
            config,
            staged,
            queries,
            chains,
            history,
            stats,
        })
    }

    /// Serializes the checkpoint inside the CRC-carrying envelope that
    /// persisted (on-disk) checkpoints use. Line 1 is a small header
    /// recording the IEEE CRC-32 and exact byte length of the payload;
    /// line 2 is the [`Checkpoint::to_json`] document. A torn or
    /// bit-flipped file therefore fails [`Checkpoint::from_envelope`]
    /// loudly instead of restoring garbage.
    pub fn to_envelope(&self) -> String {
        let payload = self.to_json();
        let mut out = String::with_capacity(payload.len() + 96);
        out.push_str("{\"format\":");
        json::push_string(&mut out, ENVELOPE_FORMAT);
        out.push_str(&format!(
            ",\"v\":{ENVELOPE_VERSION},\"crc32\":{},\"len\":{}}}\n",
            crate::wal::crc32(payload.as_bytes()),
            payload.len()
        ));
        out.push_str(&payload);
        out
    }

    /// Parses an enveloped checkpoint, verifying length and checksum
    /// before touching the payload. Every failure mode — missing or
    /// malformed header, truncated payload, checksum mismatch —
    /// reports [`EngineError::CheckpointCorrupt`] with the reason.
    pub fn from_envelope(text: &str) -> Result<Self, EngineError> {
        let (header, payload) = text
            .split_once('\n')
            .ok_or_else(|| corrupt("checkpoint envelope has no header line"))?;
        let header =
            json::parse(header).map_err(|e| corrupt(&format!("checkpoint envelope: {e}")))?;
        if header.get("format").and_then(JsonValue::as_str) != Some(ENVELOPE_FORMAT) {
            return Err(corrupt("not a lahar-checkpoint-envelope document"));
        }
        let v = get_u64(&header, "v")? as u32;
        if v != ENVELOPE_VERSION {
            return Err(EngineError::CheckpointCorrupt(format!(
                "unsupported envelope version {v} (this build reads version {ENVELOPE_VERSION})"
            )));
        }
        let len = get_u64(&header, "len")? as usize;
        let crc = get_u64(&header, "crc32")? as u32;
        if payload.len() != len {
            return Err(EngineError::CheckpointCorrupt(format!(
                "checkpoint payload is {} bytes, envelope promises {len} (torn write?)",
                payload.len()
            )));
        }
        let actual = crate::wal::crc32(payload.as_bytes());
        if actual != crc {
            return Err(EngineError::CheckpointCorrupt(format!(
                "checkpoint checksum mismatch: envelope {crc:08x}, payload {actual:08x}"
            )));
        }
        Self::from_json(payload)
    }
}

// ---------------------------------------------------------------------
// Generation-numbered checkpoint files.
//
// Persisted checkpoints are written as `{stem}.g{gen:08}.ckpt.json`,
// atomically (tmp + fsync + rename) and enveloped, so a crash at any
// byte of the write leaves either the complete new generation or no
// trace of it. Restore scans generations newest-first and falls back
// past torn/corrupt files, quarantining them as `.corrupt` so the
// evidence survives but never blocks a later scan.

/// The on-disk path of checkpoint generation `gen` for `stem`.
pub fn generation_path(dir: &std::path::Path, stem: &str, gen: u64) -> std::path::PathBuf {
    dir.join(format!("{stem}.g{gen:08}.ckpt.json"))
}

/// All persisted generations for `stem` in `dir`, ascending.
pub fn list_generations(dir: &std::path::Path, stem: &str) -> Vec<(u64, std::path::PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return found;
    };
    let prefix = format!("{stem}.g");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(rest) = name.strip_prefix(&prefix) {
            if let Some(digits) = rest.strip_suffix(".ckpt.json") {
                if let Ok(gen) = digits.parse::<u64>() {
                    found.push((gen, entry.path()));
                }
            }
        }
    }
    found.sort();
    found
}

/// Atomically persists `ckpt` as generation `gen`: the envelope is
/// written to a `.tmp` sibling, fsynced, and renamed into place (with a
/// best-effort directory fsync), so no crash point can leave a torn
/// file under the final name. Returns the final path.
pub fn write_generation(
    dir: &std::path::Path,
    stem: &str,
    gen: u64,
    ckpt: &Checkpoint,
) -> std::io::Result<std::path::PathBuf> {
    use std::io::Write;
    let _span = crate::trace::span("checkpoint_persist").with("gen", gen);
    std::fs::create_dir_all(dir)?;
    let path = generation_path(dir, stem, gen);
    let bytes = ckpt.to_envelope();
    // Torn-write fault injection: scribble a partial envelope straight
    // onto the final name and die, simulating the disk corruption the
    // atomic protocol is designed to survive — restore must quarantine
    // this generation and fall back.
    if crate::failpoint::check("checkpoint_write").is_err() {
        let _ = std::fs::write(&path, &bytes.as_bytes()[..bytes.len() / 2]);
        std::process::abort();
    }
    let tmp = dir.join(format!("{stem}.g{gen:08}.ckpt.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(path)
}

/// A checkpoint recovered by [`load_newest`].
#[derive(Debug)]
pub struct LoadedGeneration {
    /// The generation number that verified.
    pub gen: u64,
    /// The restored checkpoint.
    pub checkpoint: Checkpoint,
    /// Corrupt newer generations quarantined (renamed `*.corrupt`)
    /// while falling back to this one.
    pub quarantined: Vec<std::path::PathBuf>,
}

/// Scans `dir` for `stem`'s checkpoint generations newest-first and
/// returns the first that verifies. Torn or corrupt generations are
/// quarantined as `{name}.corrupt` and skipped; `Ok(None)` means no
/// generation exists (or every one was corrupt — the caller starts
/// fresh and the WAL replays from `t = 0`).
pub fn load_newest(
    dir: &std::path::Path,
    stem: &str,
) -> Result<Option<LoadedGeneration>, EngineError> {
    let _span = crate::trace::span("checkpoint_restore");
    let mut quarantined = Vec::new();
    for (gen, path) in list_generations(dir, stem).into_iter().rev() {
        let parsed = std::fs::read_to_string(&path)
            .map_err(|e| EngineError::CheckpointCorrupt(format!("unreadable checkpoint: {e}")))
            .and_then(|text| Checkpoint::from_envelope(&text));
        match parsed {
            Ok(checkpoint) => {
                return Ok(Some(LoadedGeneration {
                    gen,
                    checkpoint,
                    quarantined,
                }))
            }
            Err(EngineError::CheckpointCorrupt(why)) => {
                let mut target = path.clone().into_os_string();
                target.push(".corrupt");
                let target = std::path::PathBuf::from(target);
                if std::fs::rename(&path, &target).is_ok() {
                    quarantined.push(target);
                } else {
                    quarantined.push(path.clone());
                }
                eprintln!(
                    "lahar: quarantined corrupt checkpoint generation {gen} ({}): {why}",
                    path.display()
                );
            }
            Err(other) => return Err(other),
        }
    }
    Ok(None)
}

/// Removes generations `< keep_from` (and stray `.tmp` leftovers);
/// returns how many checkpoint files were deleted.
pub fn gc_generations(dir: &std::path::Path, stem: &str, keep_from: u64) -> usize {
    let mut removed = 0;
    for (gen, path) in list_generations(dir, stem) {
        if gen < keep_from && std::fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

fn push_f64_array(out: &mut String, values: &[f64]) {
    out.push('[');
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_f64(out, v);
    }
    out.push(']');
}

fn push_u64_array(out: &mut String, values: impl IntoIterator<Item = u64>) {
    out.push('[');
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn push_config(out: &mut String, c: &SessionConfig) {
    let mode = match c.tick_mode {
        TickMode::Auto => "auto",
        TickMode::Sequential => "sequential",
        TickMode::Parallel => "parallel",
    };
    out.push_str("{\"tick_mode\":");
    json::push_string(out, mode);
    out.push_str(&format!(
        ",\"n_workers\":{},\"parallel_threshold\":{},\"max_epoch_ticks\":{},\"checkpoint_interval\":{},\"tick_deadline_ns\":",
        c.n_workers, c.parallel_threshold, c.max_epoch_ticks, c.checkpoint_interval
    ));
    match c.tick_deadline {
        None => out.push_str("null"),
        Some(d) => out.push_str(&u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).to_string()),
    }
    out.push_str(",\"metrics_addr\":");
    match c.metrics_addr {
        None => out.push_str("null"),
        Some(addr) => json::push_string(out, &addr.to_string()),
    }
    out.push_str(",\"serve_addr\":");
    match c.serve_addr {
        None => out.push_str("null"),
        Some(addr) => json::push_string(out, &addr.to_string()),
    }
    out.push_str(",\"durability\":");
    json::push_string(out, c.durability.as_str());
    out.push_str(&format!(",\"trace\":{}}}", c.trace));
}

fn parse_config(v: &JsonValue) -> Result<SessionConfig, EngineError> {
    let tick_mode = match get_str(v, "tick_mode")?.as_str() {
        "auto" => TickMode::Auto,
        "sequential" => TickMode::Sequential,
        "parallel" => TickMode::Parallel,
        other => {
            return Err(EngineError::CheckpointCorrupt(format!(
                "unknown tick mode '{other}'"
            )))
        }
    };
    let tick_deadline = match get(v, "tick_deadline_ns")? {
        JsonValue::Null => None,
        other => {
            Some(Duration::from_nanos(other.as_u64().ok_or_else(|| {
                corrupt("tick_deadline_ns is not an integer")
            })?))
        }
    };
    let metrics_addr = match get(v, "metrics_addr")? {
        JsonValue::Null => None,
        other => Some(
            other
                .as_str()
                .ok_or_else(|| corrupt("metrics_addr is not a string"))?
                .parse()
                .map_err(|_| corrupt("metrics_addr is not a socket address"))?,
        ),
    };
    let serve_addr = match get(v, "serve_addr")? {
        JsonValue::Null => None,
        other => Some(
            other
                .as_str()
                .ok_or_else(|| corrupt("serve_addr is not a string"))?
                .parse()
                .map_err(|_| corrupt("serve_addr is not a socket address"))?,
        ),
    };
    let durability = get_str(v, "durability")?;
    let durability = crate::wal::Durability::parse(&durability).ok_or_else(|| {
        EngineError::CheckpointCorrupt(format!("unknown durability level '{durability}'"))
    })?;
    Ok(SessionConfig {
        tick_mode,
        n_workers: get_u64(v, "n_workers")? as usize,
        parallel_threshold: get_u64(v, "parallel_threshold")? as usize,
        max_epoch_ticks: get_u64(v, "max_epoch_ticks")? as usize,
        checkpoint_interval: get_u64(v, "checkpoint_interval")? as usize,
        tick_deadline,
        metrics_addr,
        serve_addr,
        durability,
        trace: get_bool(v, "trace")?,
    })
}

fn push_histogram_state(out: &mut String, h: &HistogramState) {
    out.push_str("{\"counts\":");
    push_u64_array(out, h.counts.iter().copied());
    out.push_str(&format!(
        ",\"n\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
        h.n, h.sum_ns, h.min_ns, h.max_ns
    ));
}

fn push_stats(out: &mut String, s: &StatsState) {
    out.push_str(&format!(
        "{{\"ticks\":{},\"epochs\":{},\"epoch_ticks\":{},\"parallel_ticks\":{},\
         \"degraded_ticks\":{},\"recoveries\":{},\
         \"checkpoints_taken\":{},\"chains_stepped\":{},\"bindings_grounded\":{},\
         \"alerts_emitted\":{},\"marginals_staged\":{},\"sampler_compilations\":{},\
         \"sampler_worlds\":{},\"fallbacks\":{},\"kernel_fast_steps\":{},\
         \"kernel_frozen_steps\":{},\"kernel_slow_steps\":{},\
         \"kernel_soa_steps\":{},\"kernel_simd_steps\":{},\"sym_cache_hits\":{},\
         \"sym_cache_misses\":{},\"automata_shared\":{},\"automata_attached\":{},\
         \"fallback_reasons\":{{",
        s.ticks,
        s.epochs,
        s.epoch_ticks,
        s.parallel_ticks,
        s.degraded_ticks,
        s.recoveries,
        s.checkpoints_taken,
        s.chains_stepped,
        s.bindings_grounded,
        s.alerts_emitted,
        s.marginals_staged,
        s.sampler_compilations,
        s.sampler_worlds,
        s.fallbacks,
        s.kernel_fast_steps,
        s.kernel_frozen_steps,
        s.kernel_slow_steps,
        s.kernel_soa_steps,
        s.kernel_simd_steps,
        s.sym_cache_hits,
        s.sym_cache_misses,
        s.automata_shared,
        s.automata_attached,
    ));
    for (i, (reason, count)) in s.fallback_reasons.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_string(out, reason);
        out.push_str(&format!(":{count}"));
    }
    out.push_str("},\"tick_latency\":");
    push_histogram_state(out, &s.tick_latency);
    out.push_str(",\"per_query\":[");
    for (i, q) in s.per_query.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"id\":{},\"name\":", q.id));
        json::push_string(out, &q.name);
        out.push_str(&format!(
            ",\"chains\":{},\"ticks\":{},\"last_probability\":",
            q.chains, q.ticks
        ));
        json::push_f64(out, q.last_probability);
        out.push_str(",\"step_latency\":");
        push_histogram_state(out, &q.step_latency);
        out.push('}');
    }
    out.push_str("]}");
}

fn parse_stats(v: &JsonValue) -> Result<StatsState, EngineError> {
    let reasons = get(v, "fallback_reasons")?
        .as_object()
        .ok_or_else(|| corrupt("fallback_reasons is not an object"))?;
    let mut fallback_reasons = BTreeMap::new();
    for (k, count) in reasons {
        fallback_reasons.insert(
            k.clone(),
            count
                .as_u64()
                .ok_or_else(|| corrupt("fallback count is not an integer"))?,
        );
    }
    let tick_latency = parse_histogram_state(get(v, "tick_latency")?)?;
    let per_query = get_array(v, "per_query")?
        .iter()
        .map(|q| {
            Ok(QueryState {
                id: get_u64(q, "id")?,
                name: get_str(q, "name")?,
                chains: get_u64(q, "chains")?,
                ticks: get_u64(q, "ticks")?,
                last_probability: get(q, "last_probability")?
                    .as_f64()
                    .ok_or_else(|| corrupt("last_probability is not a number"))?,
                step_latency: parse_histogram_state(get(q, "step_latency")?)?,
            })
        })
        .collect::<Result<_, EngineError>>()?;
    Ok(StatsState {
        ticks: get_u64(v, "ticks")?,
        epochs: get_u64(v, "epochs")?,
        epoch_ticks: get_u64(v, "epoch_ticks")?,
        parallel_ticks: get_u64(v, "parallel_ticks")?,
        degraded_ticks: get_u64(v, "degraded_ticks")?,
        recoveries: get_u64(v, "recoveries")?,
        checkpoints_taken: get_u64(v, "checkpoints_taken")?,
        chains_stepped: get_u64(v, "chains_stepped")?,
        bindings_grounded: get_u64(v, "bindings_grounded")?,
        alerts_emitted: get_u64(v, "alerts_emitted")?,
        marginals_staged: get_u64(v, "marginals_staged")?,
        sampler_compilations: get_u64(v, "sampler_compilations")?,
        sampler_worlds: get_u64(v, "sampler_worlds")?,
        fallbacks: get_u64(v, "fallbacks")?,
        kernel_fast_steps: get_u64(v, "kernel_fast_steps")?,
        kernel_frozen_steps: get_u64(v, "kernel_frozen_steps")?,
        kernel_slow_steps: get_u64(v, "kernel_slow_steps")?,
        // Added after the stats block was already in the wild: default
        // to 0 so checkpoints written by older builds still restore.
        kernel_soa_steps: get_u64_or_zero(v, "kernel_soa_steps")?,
        kernel_simd_steps: get_u64_or_zero(v, "kernel_simd_steps")?,
        sym_cache_hits: get_u64(v, "sym_cache_hits")?,
        sym_cache_misses: get_u64(v, "sym_cache_misses")?,
        automata_shared: get_u64(v, "automata_shared")?,
        automata_attached: get_u64(v, "automata_attached")?,
        fallback_reasons,
        tick_latency,
        per_query,
    })
}

fn parse_histogram_state(h: &JsonValue) -> Result<HistogramState, EngineError> {
    Ok(HistogramState {
        counts: u64_array(get(h, "counts")?, "histogram counts")?,
        n: get_u64(h, "n")?,
        sum_ns: get_u64(h, "sum_ns")?,
        min_ns: get_u64(h, "min_ns")?,
        max_ns: get_u64(h, "max_ns")?,
    })
}

fn corrupt(msg: &str) -> EngineError {
    EngineError::CheckpointCorrupt(msg.to_owned())
}

fn get<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, EngineError> {
    v.get(key)
        .ok_or_else(|| EngineError::CheckpointCorrupt(format!("missing field '{key}'")))
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, EngineError> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| EngineError::CheckpointCorrupt(format!("field '{key}' is not an integer")))
}

/// Like [`get_u64`] but treats a *missing* key as 0 — for counter fields
/// added after the checkpoint format shipped, so documents written by
/// older builds still restore. A present-but-non-integer value is still
/// corrupt.
fn get_u64_or_zero(v: &JsonValue, key: &str) -> Result<u64, EngineError> {
    match v.get(key) {
        None => Ok(0),
        Some(x) => x.as_u64().ok_or_else(|| {
            EngineError::CheckpointCorrupt(format!("field '{key}' is not an integer"))
        }),
    }
}

fn get_str(v: &JsonValue, key: &str) -> Result<String, EngineError> {
    Ok(get(v, key)?
        .as_str()
        .ok_or_else(|| EngineError::CheckpointCorrupt(format!("field '{key}' is not a string")))?
        .to_owned())
}

fn get_bool(v: &JsonValue, key: &str) -> Result<bool, EngineError> {
    match get(v, key)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(EngineError::CheckpointCorrupt(format!(
            "field '{key}' is not a boolean"
        ))),
    }
}

fn get_array<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], EngineError> {
    get(v, key)?
        .as_array()
        .ok_or_else(|| EngineError::CheckpointCorrupt(format!("field '{key}' is not an array")))
}

fn f64_array(v: &JsonValue, what: &str) -> Result<Vec<f64>, EngineError> {
    v.as_array()
        .ok_or_else(|| EngineError::CheckpointCorrupt(format!("{what} is not an array")))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| EngineError::CheckpointCorrupt(format!("{what} holds a non-number")))
        })
        .collect()
}

fn u64_array(v: &JsonValue, what: &str) -> Result<Vec<u64>, EngineError> {
    v.as_array()
        .ok_or_else(|| EngineError::CheckpointCorrupt(format!("{what} is not an array")))?
        .iter()
        .map(|x| {
            x.as_u64().ok_or_else(|| {
                EngineError::CheckpointCorrupt(format!("{what} holds a non-integer"))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            t: 3,
            config: SessionConfig {
                tick_mode: TickMode::Parallel,
                n_workers: 4,
                parallel_threshold: 128,
                max_epoch_ticks: 16,
                checkpoint_interval: 8,
                tick_deadline: Some(Duration::from_millis(250)),
                metrics_addr: Some("127.0.0.1:9633".parse().unwrap()),
                serve_addr: Some("127.0.0.1:9634".parse().unwrap()),
                durability: crate::wal::Durability::Batch,
                trace: true,
            },
            staged: vec![None, Some(vec![0.1, 0.2, 0.7])],
            queries: vec![QueryMeta {
                name: "q \"quoted\"".to_owned(),
                source: "At(p,'a') ; At(p,'c')".to_owned(),
                extended: true,
                n_chains: 2,
            }],
            chains: vec![ChainState {
                t: 3,
                dist: vec![0.1 + 0.2, 1.0 / 3.0, 5e-324],
                dfa_sets: vec![vec![0], vec![1, 2]],
            }],
            history: vec![
                vec![
                    vec![0.5, 0.5, 0.0],
                    vec![0.0, 0.0, 1.0],
                    vec![0.25, 0.25, 0.5],
                ],
                vec![vec![1.0, 0.0, 0.0]; 3],
            ],
            stats: StatsState {
                ticks: 3,
                epochs: 2,
                epoch_ticks: 3,
                parallel_ticks: 2,
                degraded_ticks: 1,
                recoveries: 1,
                checkpoints_taken: 1,
                chains_stepped: 9,
                bindings_grounded: 2,
                alerts_emitted: 3,
                marginals_staged: 6,
                sampler_compilations: 0,
                sampler_worlds: 0,
                fallbacks: 1,
                kernel_fast_steps: 120,
                kernel_frozen_steps: 30,
                kernel_slow_steps: 9,
                kernel_soa_steps: 4096,
                kernel_simd_steps: 512,
                sym_cache_hits: 40,
                sym_cache_misses: 11,
                automata_shared: 1,
                automata_attached: 2,
                fallback_reasons: BTreeMap::from([("why\n".to_owned(), 1)]),
                tick_latency: HistogramState {
                    counts: vec![0, 2, 1],
                    n: 3,
                    sum_ns: 12_345,
                    min_ns: 1_000,
                    max_ns: 9_000,
                },
                per_query: vec![QueryState {
                    id: 0,
                    name: "q \"quoted\"".to_owned(),
                    chains: 2,
                    ticks: 3,
                    last_probability: 0.1 + 0.2,
                    step_latency: HistogramState {
                        counts: vec![0, 0, 3],
                        n: 3,
                        sum_ns: 4_242,
                        min_ns: 1_111,
                        max_ns: 2_222,
                    },
                }],
            },
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let ckpt = sample();
        let doc = ckpt.to_json();
        let parsed = Checkpoint::from_json(&doc).unwrap();
        assert_eq!(parsed, ckpt);
        // Exactness down to the bit pattern of every float.
        for (a, b) in ckpt.chains[0].dist.iter().zip(&parsed.chains[0].dist) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Stable serialization: same document on re-encode.
        assert_eq!(parsed.to_json(), doc);
    }

    /// Checkpoints written before the batched-kernel counters existed
    /// lack `kernel_soa_steps`/`kernel_simd_steps`; they must still
    /// restore, defaulting the missing counters to 0.
    #[test]
    fn stats_missing_soa_counters_default_to_zero() {
        let doc = sample()
            .to_json()
            .replace("\"kernel_soa_steps\":4096,", "")
            .replace("\"kernel_simd_steps\":512,", "");
        let parsed = Checkpoint::from_json(&doc).unwrap();
        assert_eq!(parsed.stats.kernel_soa_steps, 0);
        assert_eq!(parsed.stats.kernel_simd_steps, 0);
        // A present-but-non-integer value is still rejected.
        let bad = sample()
            .to_json()
            .replace("\"kernel_soa_steps\":4096", "\"kernel_soa_steps\":\"no\"");
        assert!(Checkpoint::from_json(&bad).is_err());
    }

    #[test]
    fn empty_histogram_sentinels_round_trip() {
        let mut ckpt = sample();
        ckpt.stats.tick_latency = HistogramState {
            counts: vec![0; 64],
            n: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        };
        let parsed = Checkpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(parsed.stats.tick_latency.min_ns, u64::MAX);
    }

    #[test]
    fn rejects_corrupt_documents() {
        assert!(Checkpoint::from_json("not json").is_err());
        assert!(Checkpoint::from_json("{}").is_err());
        assert!(Checkpoint::from_json("{\"format\":\"other\"}").is_err());
        let mut wrong_version = sample();
        wrong_version.version = CHECKPOINT_VERSION + 1;
        let doc = wrong_version.to_json();
        let err = Checkpoint::from_json(&doc).unwrap_err();
        assert!(matches!(err, EngineError::CheckpointCorrupt(_)));
        // Truncated document.
        let doc = sample().to_json();
        assert!(Checkpoint::from_json(&doc[..doc.len() - 2]).is_err());
    }

    #[test]
    fn envelope_round_trip_is_exact() {
        let ckpt = sample();
        let enveloped = ckpt.to_envelope();
        assert_eq!(Checkpoint::from_envelope(&enveloped).unwrap(), ckpt);
    }

    #[test]
    fn envelope_rejects_torn_and_flipped_documents() {
        let enveloped = sample().to_envelope();
        // Truncation at any point fails the length or header check.
        for cut in [0, 10, enveloped.len() / 2, enveloped.len() - 1] {
            let err = Checkpoint::from_envelope(&enveloped[..cut]).unwrap_err();
            assert!(
                matches!(err, EngineError::CheckpointCorrupt(_)),
                "cut {cut}"
            );
        }
        // A single flipped payload character fails the checksum.
        let flipped = enveloped.replacen("\"t\":3", "\"t\":7", 1);
        assert_ne!(flipped, enveloped);
        let err = Checkpoint::from_envelope(&flipped).unwrap_err();
        assert!(matches!(err, EngineError::CheckpointCorrupt(_)));
        assert!(err.to_string().contains("checksum"));
        // Empty input.
        assert!(Checkpoint::from_envelope("").is_err());
    }

    #[test]
    fn generation_scan_falls_back_past_corrupt_files() {
        let dir = std::env::temp_dir().join(format!("lahar_ckpt_gen_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt = sample();
        write_generation(&dir, "s", 1, &ckpt).unwrap();
        write_generation(&dir, "s", 2, &ckpt).unwrap();
        // Tear the newest generation in place.
        let newest = generation_path(&dir, "s", 2);
        let full = std::fs::read_to_string(&newest).unwrap();
        std::fs::write(&newest, &full[..full.len() / 2]).unwrap();
        let loaded = load_newest(&dir, "s").unwrap().unwrap();
        assert_eq!(loaded.gen, 1);
        assert_eq!(loaded.checkpoint, ckpt);
        assert_eq!(loaded.quarantined.len(), 1);
        assert!(loaded.quarantined[0]
            .to_string_lossy()
            .ends_with(".corrupt"));
        assert!(loaded.quarantined[0].exists());
        // The torn file no longer shadows the scan.
        assert_eq!(list_generations(&dir, "s").len(), 1);
        // GC keeps the survivor.
        assert_eq!(gc_generations(&dir, "s", 1), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
