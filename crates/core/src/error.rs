//! Engine error type.

use lahar_model::ModelError;
use lahar_query::QueryError;
use std::fmt;

/// Errors raised by the Lahar engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A query-level error (parsing, validation, classification).
    Query(QueryError),
    /// A data-model error.
    Model(ModelError),
    /// The joint hidden-state space of the relevant streams exceeds the
    /// configured cap; use the sampler instead.
    StateSpaceTooLarge {
        /// The joint state-space size.
        size: usize,
        /// The configured cap.
        cap: usize,
    },
    /// Grounding enumeration for the sampler exceeded the configured cap.
    TooManyGroundings {
        /// Number of candidate bindings.
        count: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The query references no stream present in the database.
    NoRelevantStreams,
    /// A parallel worker thread panicked; the payload is the panic
    /// message when one was available.
    WorkerPanicked(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Query(e) => write!(f, "query error: {e}"),
            EngineError::Model(e) => write!(f, "model error: {e}"),
            EngineError::StateSpaceTooLarge { size, cap } => {
                write!(f, "joint hidden state space of {size} exceeds cap {cap}")
            }
            EngineError::TooManyGroundings { count, cap } => {
                write!(f, "{count} candidate groundings exceed cap {cap}")
            }
            EngineError::NoRelevantStreams => {
                write!(f, "no stream in the database can match the query")
            }
            EngineError::WorkerPanicked(msg) => {
                write!(f, "parallel worker thread panicked: {msg}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}

impl From<ModelError> for EngineError {
    fn from(e: ModelError) -> Self {
        EngineError::Model(e)
    }
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_owned())
}

/// Converts a payload caught from a panicking worker thread into
/// [`EngineError::WorkerPanicked`].
pub(crate) fn worker_panic(payload: Box<dyn std::any::Any + Send>) -> EngineError {
    EngineError::WorkerPanicked(panic_message(payload))
}
