//! Engine error type.

use lahar_model::ModelError;
use lahar_query::QueryError;
use std::fmt;
use std::time::Duration;

/// Errors raised by the Lahar engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A query-level error (parsing, validation, classification).
    Query(QueryError),
    /// A data-model error.
    Model(ModelError),
    /// The joint hidden-state space of the relevant streams exceeds the
    /// configured cap; use the sampler instead.
    StateSpaceTooLarge {
        /// The joint state-space size.
        size: usize,
        /// The configured cap.
        cap: usize,
    },
    /// Grounding enumeration for the sampler exceeded the configured cap.
    TooManyGroundings {
        /// Number of candidate bindings.
        count: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The query references no stream present in the database.
    NoRelevantStreams,
    /// A parallel worker thread panicked. Sessions hit by this fault can
    /// be repaired with [`crate::RealTimeSession::recover`].
    WorkerPanicked {
        /// Index of the worker (= shard) that panicked, when known.
        worker: Option<usize>,
        /// The panic message when one was available.
        message: String,
    },
    /// A parallel tick exceeded the session's configured
    /// [`crate::SessionConfig::tick_deadline`]. The session is poisoned
    /// but recoverable; after [`crate::RealTimeSession::recover`] it runs
    /// in degraded (sequential) mode.
    TickTimeout {
        /// The deadline that was exceeded.
        deadline: Duration,
    },
    /// An operation was attempted on a poisoned session; call
    /// [`crate::RealTimeSession::recover`] first.
    SessionPoisoned,
    /// An error injected by the fault-injection harness (the named fail
    /// point is in the payload). Only produced with the `failpoints`
    /// feature enabled.
    FaultInjected(String),
    /// [`crate::RealTimeSession::recover`] could not rebuild the session.
    RecoveryFailed(String),
    /// The session cannot be checkpointed (e.g. a query was registered
    /// from an AST without source text).
    CheckpointUnsupported(String),
    /// A checkpoint document failed to parse or validate on restore.
    CheckpointCorrupt(String),
    /// The metrics endpoint requested via
    /// [`crate::SessionConfig::metrics_addr`] could not be started
    /// (bind or thread-spawn failure).
    MetricsUnavailable(String),
    /// A configuration value rejected at build time (see
    /// [`crate::SessionConfig::builder`]).
    InvalidConfig(String),
    /// The serving endpoint could not be started or reached (bind,
    /// connect, or I/O failure on the wire).
    ServerUnavailable(String),
    /// A wire frame violated the serving protocol (malformed JSON,
    /// missing fields, unsupported version).
    Protocol(String),
    /// The write-ahead log or an atomic checkpoint write failed at the
    /// I/O layer; the triggering mutation was applied in memory but is
    /// **not** durable, so the server refuses to acknowledge it.
    DurabilityIo(String),
    /// The server answered a client request with an error response.
    Remote {
        /// Machine-readable error code from the server.
        code: crate::protocol::WireCode,
        /// Human-readable message from the server.
        message: String,
    },
}

impl EngineError {
    /// Whether a poisoned session hit by this fault can be repaired with
    /// [`crate::RealTimeSession::recover`] (as opposed to a
    /// configuration or data error the caller must fix).
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            EngineError::WorkerPanicked { .. }
                | EngineError::TickTimeout { .. }
                | EngineError::SessionPoisoned
                | EngineError::FaultInjected(_)
        )
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Query(e) => write!(f, "query error: {e}"),
            EngineError::Model(e) => write!(f, "model error: {e}"),
            EngineError::StateSpaceTooLarge { size, cap } => {
                write!(f, "joint hidden state space of {size} exceeds cap {cap}")
            }
            EngineError::TooManyGroundings { count, cap } => {
                write!(f, "{count} candidate groundings exceed cap {cap}")
            }
            EngineError::NoRelevantStreams => {
                write!(f, "no stream in the database can match the query")
            }
            EngineError::WorkerPanicked { worker, message } => match worker {
                Some(w) => write!(f, "parallel worker {w} panicked: {message}"),
                None => write!(f, "parallel worker thread panicked: {message}"),
            },
            EngineError::TickTimeout { deadline } => {
                write!(f, "parallel tick exceeded deadline of {deadline:?}")
            }
            EngineError::SessionPoisoned => {
                write!(f, "session is poisoned; call recover() first")
            }
            EngineError::FaultInjected(point) => {
                write!(f, "fault injected at fail point '{point}'")
            }
            EngineError::RecoveryFailed(msg) => {
                write!(f, "session recovery failed: {msg}")
            }
            EngineError::CheckpointUnsupported(msg) => {
                write!(f, "session cannot be checkpointed: {msg}")
            }
            EngineError::CheckpointCorrupt(msg) => {
                write!(f, "checkpoint is corrupt: {msg}")
            }
            EngineError::MetricsUnavailable(msg) => {
                write!(f, "metrics endpoint unavailable: {msg}")
            }
            EngineError::InvalidConfig(msg) => {
                write!(f, "invalid configuration: {msg}")
            }
            EngineError::ServerUnavailable(msg) => {
                write!(f, "server unavailable: {msg}")
            }
            EngineError::Protocol(msg) => {
                write!(f, "protocol violation: {msg}")
            }
            EngineError::DurabilityIo(msg) => {
                write!(
                    f,
                    "durability write failed (mutation not acknowledged): {msg}"
                )
            }
            EngineError::Remote { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}

impl From<ModelError> for EngineError {
    fn from(e: ModelError) -> Self {
        EngineError::Model(e)
    }
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_owned())
}

/// Converts a payload caught from a panicking worker thread into
/// [`EngineError::WorkerPanicked`] (with no worker attribution).
pub(crate) fn worker_panic(payload: Box<dyn std::any::Any + Send>) -> EngineError {
    EngineError::WorkerPanicked {
        worker: None,
        message: panic_message(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recoverability_classification() {
        assert!(EngineError::WorkerPanicked {
            worker: Some(2),
            message: "boom".into()
        }
        .is_recoverable());
        assert!(EngineError::TickTimeout {
            deadline: Duration::from_millis(5)
        }
        .is_recoverable());
        assert!(EngineError::SessionPoisoned.is_recoverable());
        assert!(EngineError::FaultInjected("worker_step".into()).is_recoverable());
        assert!(!EngineError::NoRelevantStreams.is_recoverable());
        assert!(!EngineError::StateSpaceTooLarge { size: 10, cap: 5 }.is_recoverable());
        assert!(!EngineError::CheckpointCorrupt("bad".into()).is_recoverable());
    }
}
