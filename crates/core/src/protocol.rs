//! Wire protocol of `lahar serve` (see `PROTOCOL.md` at the repo root).
//!
//! Frames are newline-delimited JSON: one request object per line from
//! the client, one response object per line from the server, answered in
//! order. The encoding is hand-rolled over [`crate::json`] — the same
//! dependency-free writer/parser the checkpoint format uses — so
//! probabilities survive the wire **bit-identically** (shortest
//! round-trip `f64` form on both directions).
//!
//! Requests carry a `"cmd"` tag, responses a `"type"` tag. An optional
//! `"v"` field on any request pins the protocol version; the server
//! rejects frames whose version it does not speak. The module is used by
//! both sides ([`crate::server`] and [`crate::client`]) and by the
//! round-trip proptests, so the two implementations cannot drift.
//!
//! Durability does not change the wire shapes — it changes what a
//! successful response *promises*. Under
//! [`crate::wal::Durability::Batch`] or `Always`, a mutating command is
//! acknowledged only after its record reached the session's write-ahead
//! log, so an acknowledged tick survives a `kill -9` of the server; a
//! failed append answers the `"durability"` error code with nothing
//! applied-and-acked. See `PROTOCOL.md` § Acknowledgement durability.

use crate::error::EngineError;
use crate::json::{self, JsonValue};

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// A stream identity plus one tick's marginal, as carried on the wire.
///
/// `probs` lists the full distribution in domain order — including the
/// ⊥ ("no event") outcome — exactly as
/// [`lahar_model::Marginal::probs`] stores it.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMarginal {
    /// The stream type (a declared stream schema name).
    pub stream_type: String,
    /// The stream key (string-valued key attributes only).
    pub key: Vec<String>,
    /// The distribution over the stream's domain, ⊥ included.
    pub probs: Vec<f64>,
}

/// One query alert, as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAlert {
    /// Index of the query within its session.
    pub query: usize,
    /// The query's registered name.
    pub name: String,
    /// The timestep the alert closes.
    pub t: u32,
    /// μ(q@t).
    pub probability: f64,
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness / version probe. Needs no session.
    Ping,
    /// Ensures the named session exists (restoring it from the server's
    /// checkpoint directory when a snapshot is on disk).
    Open {
        /// The session name.
        session: String,
    },
    /// Registers a named query from source text.
    Register {
        /// The session name.
        session: String,
        /// The query's name (unique per session).
        name: String,
        /// Query source text.
        query: String,
    },
    /// Stages one tick's marginals; with `tick: true` also closes the
    /// tick in the same frame (the batched ingest path).
    Stage {
        /// The session name.
        session: String,
        /// Marginals to stage, one per stream.
        marginals: Vec<WireMarginal>,
        /// Close the tick after staging.
        tick: bool,
    },
    /// Stages and closes a whole epoch of ticks in one frame: element
    /// `i` of `ticks` carries the marginals of tick `t+i` (an empty
    /// element closes a tick with every stream at ⊥). The server answers
    /// one [`Response::Ticked`] whose alerts span every closed tick in
    /// order — the batched ingest path that lets the session amortise
    /// one worker-pool join over the whole epoch.
    StageTicks {
        /// The session name.
        session: String,
        /// One marginal batch per tick, oldest first.
        ticks: Vec<Vec<WireMarginal>>,
    },
    /// Closes the current tick (unstaged streams read ⊥).
    Tick {
        /// The session name.
        session: String,
    },
    /// The full accumulated probability series of a registered query.
    Series {
        /// The session name.
        session: String,
        /// The query's registered name.
        query: String,
    },
    /// Takes a checkpoint now (also written to the server's checkpoint
    /// directory when one is configured).
    Checkpoint {
        /// The session name.
        session: String,
    },
    /// Gracefully stops the whole server: every hosted session writes a
    /// final checkpoint, then the process-level serve loop exits.
    Shutdown,
}

impl Command {
    /// The session a command routes to (`None` for server-level ones).
    pub fn session(&self) -> Option<&str> {
        match self {
            Command::Ping | Command::Shutdown => None,
            Command::Open { session }
            | Command::Register { session, .. }
            | Command::Stage { session, .. }
            | Command::StageTicks { session, .. }
            | Command::Tick { session }
            | Command::Series { session, .. }
            | Command::Checkpoint { session } => Some(session),
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Command::Ping`].
    Pong {
        /// The protocol version the server speaks.
        version: u32,
    },
    /// Answer to [`Command::Open`].
    Opened {
        /// The session's current timestep.
        t: u32,
        /// Whether the session was restored from a checkpoint on disk.
        restored: bool,
    },
    /// Answer to [`Command::Register`].
    Registered {
        /// Index of the query within its session.
        query: usize,
    },
    /// Answer to [`Command::Stage`] with `tick: false`.
    Staged {
        /// How many marginals were staged.
        staged: usize,
    },
    /// Answer to [`Command::Tick`] (and to [`Command::Stage`] with
    /// `tick: true`).
    Ticked {
        /// The session's timestep after the tick.
        t: u32,
        /// One alert per registered query, in query-index order.
        alerts: Vec<WireAlert>,
    },
    /// Answer to [`Command::Series`].
    Series {
        /// The query's registered name.
        query: String,
        /// μ(q@t) for t = 0..now, bit-identical to the session's alerts.
        series: Vec<f64>,
    },
    /// Answer to [`Command::Checkpoint`].
    Checkpointed {
        /// The timestep the checkpoint captures.
        t: u32,
    },
    /// Answer to [`Command::Shutdown`]; the connection closes after it.
    ShuttingDown,
    /// Any failure. `code` is machine-readable;
    /// [`WireCode::Overloaded`] means the target shard's bounded queue
    /// was full and the client should back off and retry — the frame
    /// was **not** enqueued.
    Error {
        /// Machine-readable error code.
        code: WireCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Machine-readable wire error codes, typed.
///
/// Each variant round-trips to the exact protocol-v1 string (the
/// `"code"` field of an error frame) via [`WireCode::as_str`] and
/// [`WireCode::from_wire`] — the wire shapes are unchanged; only the
/// in-process representation is typed. Both the server and
/// [`crate::client::RetryPolicy`] match on this enum, never on `&str`,
/// so retry/idempotence decisions are exhaustive matches the compiler
/// checks. Codes from a newer server that this build does not know
/// parse as [`WireCode::Other`] instead of failing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WireCode {
    /// Backpressure rejection: the target shard's bounded queue was
    /// full; the frame was **not** enqueued and a retry is safe.
    Overloaded,
    /// A session-addressed command whose session has not been opened on
    /// this server (sessions are created only by `open`).
    UnknownSession,
    /// Answer to `open` when the server already hosts its configured
    /// maximum number of sessions.
    SessionLimit,
    /// `series` named a query the session has not registered.
    UnknownQuery,
    /// A well-formed frame carrying an invalid request (duplicate query
    /// name, empty epoch, command not routable over the wire, …).
    BadRequest,
    /// A write-ahead-log append failed; the command was **not** applied
    /// and the session refuses further mutations until reopened.
    Durability,
    /// The frame itself was malformed (bad JSON, unknown command,
    /// unsupported version).
    Protocol,
    /// An engine-level failure while executing the command.
    Engine,
    /// The session is poisoned by an earlier failure and was recovered;
    /// the command was not applied.
    Poisoned,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// A code this build does not know (forward compatibility: newer
    /// servers may answer codes older clients have no variant for).
    Other(String),
}

impl WireCode {
    /// The exact protocol-v1 string this code encodes as.
    pub fn as_str(&self) -> &str {
        match self {
            WireCode::Overloaded => "overloaded",
            WireCode::UnknownSession => "unknown_session",
            WireCode::SessionLimit => "session_limit",
            WireCode::UnknownQuery => "unknown_query",
            WireCode::BadRequest => "bad_request",
            WireCode::Durability => "durability",
            WireCode::Protocol => "protocol",
            WireCode::Engine => "engine",
            WireCode::Poisoned => "poisoned",
            WireCode::ShuttingDown => "shutting_down",
            WireCode::Other(s) => s,
        }
    }

    /// Parses a wire string back into the typed code. Unknown strings
    /// become [`WireCode::Other`] — never an error — so old clients
    /// keep interoperating with newer servers.
    pub fn from_wire(s: &str) -> WireCode {
        match s {
            "overloaded" => WireCode::Overloaded,
            "unknown_session" => WireCode::UnknownSession,
            "session_limit" => WireCode::SessionLimit,
            "unknown_query" => WireCode::UnknownQuery,
            "bad_request" => WireCode::BadRequest,
            "durability" => WireCode::Durability,
            "protocol" => WireCode::Protocol,
            "engine" => WireCode::Engine,
            "poisoned" => WireCode::Poisoned,
            "shutting_down" => WireCode::ShuttingDown,
            other => WireCode::Other(other.to_owned()),
        }
    }
}

impl std::fmt::Display for WireCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn push_str_field(out: &mut String, name: &str, value: &str) {
    out.push(',');
    out.push('"');
    out.push_str(name);
    out.push_str("\":");
    json::push_string(out, value);
}

fn push_marginal_list(out: &mut String, marginals: &[WireMarginal]) {
    out.push('[');
    for (i, m) in marginals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"type\":");
        json::push_string(out, &m.stream_type);
        out.push_str(",\"key\":[");
        for (j, k) in m.key.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::push_string(out, k);
        }
        out.push_str("],\"probs\":[");
        for (j, p) in m.probs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::push_f64(out, *p);
        }
        out.push_str("]}");
    }
    out.push(']');
}

fn push_marginals(out: &mut String, marginals: &[WireMarginal]) {
    out.push_str(",\"marginals\":");
    push_marginal_list(out, marginals);
}

/// Encodes a command as one JSON line (no trailing newline). The output
/// never contains a raw newline: [`json::push_string`] escapes them, so
/// the frame boundary is unambiguous.
pub fn encode_command(c: &Command) -> String {
    encode_request(c, None)
}

/// Encodes a command with an optional request `id` (additive protocol v1
/// field; servers echo it verbatim in the matching response).
pub fn encode_request(c: &Command, id: Option<u64>) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"v\":");
    out.push_str(&PROTOCOL_VERSION.to_string());
    if let Some(id) = id {
        out.push_str(",\"id\":");
        out.push_str(&id.to_string());
    }
    out.push_str(",\"cmd\":");
    match c {
        Command::Ping => out.push_str("\"ping\""),
        Command::Shutdown => out.push_str("\"shutdown\""),
        Command::Open { session } => {
            out.push_str("\"open\"");
            push_str_field(&mut out, "session", session);
        }
        Command::Register {
            session,
            name,
            query,
        } => {
            out.push_str("\"register\"");
            push_str_field(&mut out, "session", session);
            push_str_field(&mut out, "name", name);
            push_str_field(&mut out, "query", query);
        }
        Command::Stage {
            session,
            marginals,
            tick,
        } => {
            out.push_str("\"stage\"");
            push_str_field(&mut out, "session", session);
            push_marginals(&mut out, marginals);
            out.push_str(",\"tick\":");
            out.push_str(if *tick { "true" } else { "false" });
        }
        Command::StageTicks { session, ticks } => {
            out.push_str("\"stage_ticks\"");
            push_str_field(&mut out, "session", session);
            out.push_str(",\"ticks\":[");
            for (i, tick) in ticks.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_marginal_list(&mut out, tick);
            }
            out.push(']');
        }
        Command::Tick { session } => {
            out.push_str("\"tick\"");
            push_str_field(&mut out, "session", session);
        }
        Command::Series { session, query } => {
            out.push_str("\"series\"");
            push_str_field(&mut out, "session", session);
            push_str_field(&mut out, "query", query);
        }
        Command::Checkpoint { session } => {
            out.push_str("\"checkpoint\"");
            push_str_field(&mut out, "session", session);
        }
    }
    out.push('}');
    out
}

/// Encodes a response, echoing the request's `id` when one was given.
/// Every response shape — including errors — carries the echo, so a
/// client can correlate replies even across failures.
pub fn encode_response_with_id(r: &Response, id: Option<u64>) -> String {
    let mut out = encode_response(r);
    if let Some(id) = id {
        debug_assert!(out.ends_with('}'));
        out.pop();
        out.push_str(",\"id\":");
        out.push_str(&id.to_string());
        out.push('}');
    }
    out
}

/// Encodes a response as one JSON line (no trailing newline).
pub fn encode_response(r: &Response) -> String {
    let mut out = String::with_capacity(128);
    match r {
        Response::Pong { version } => {
            out.push_str("{\"type\":\"pong\",\"ok\":true,\"version\":");
            out.push_str(&version.to_string());
            out.push('}');
        }
        Response::Opened { t, restored } => {
            out.push_str("{\"type\":\"opened\",\"ok\":true,\"t\":");
            out.push_str(&t.to_string());
            out.push_str(",\"restored\":");
            out.push_str(if *restored { "true" } else { "false" });
            out.push('}');
        }
        Response::Registered { query } => {
            out.push_str("{\"type\":\"registered\",\"ok\":true,\"query\":");
            out.push_str(&query.to_string());
            out.push('}');
        }
        Response::Staged { staged } => {
            out.push_str("{\"type\":\"staged\",\"ok\":true,\"staged\":");
            out.push_str(&staged.to_string());
            out.push('}');
        }
        Response::Ticked { t, alerts } => {
            out.push_str("{\"type\":\"ticked\",\"ok\":true,\"t\":");
            out.push_str(&t.to_string());
            out.push_str(",\"alerts\":[");
            for (i, a) in alerts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"query\":");
                out.push_str(&a.query.to_string());
                out.push_str(",\"name\":");
                json::push_string(&mut out, &a.name);
                out.push_str(",\"t\":");
                out.push_str(&a.t.to_string());
                out.push_str(",\"probability\":");
                json::push_f64(&mut out, a.probability);
                out.push('}');
            }
            out.push_str("]}");
        }
        Response::Series { query, series } => {
            out.push_str("{\"type\":\"series\",\"ok\":true,\"query\":");
            json::push_string(&mut out, query);
            out.push_str(",\"series\":[");
            for (i, p) in series.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_f64(&mut out, *p);
            }
            out.push_str("]}");
        }
        Response::Checkpointed { t } => {
            out.push_str("{\"type\":\"checkpointed\",\"ok\":true,\"t\":");
            out.push_str(&t.to_string());
            out.push('}');
        }
        Response::ShuttingDown => {
            out.push_str("{\"type\":\"shutting_down\",\"ok\":true}");
        }
        Response::Error { code, message } => {
            out.push_str("{\"type\":\"error\",\"ok\":false,\"code\":");
            json::push_string(&mut out, code.as_str());
            out.push_str(",\"message\":");
            json::push_string(&mut out, message);
            out.push('}');
        }
    }
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn proto_err(msg: impl Into<String>) -> EngineError {
    EngineError::Protocol(msg.into())
}

fn req_str(v: &JsonValue, field: &str) -> Result<String, EngineError> {
    v.get(field)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| proto_err(format!("missing or non-string field '{field}'")))
}

fn req_u64(v: &JsonValue, field: &str) -> Result<u64, EngineError> {
    v.get(field)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| proto_err(format!("missing or non-integer field '{field}'")))
}

fn req_bool(v: &JsonValue, field: &str) -> Result<bool, EngineError> {
    match v.get(field) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err(proto_err(format!("missing or non-boolean field '{field}'"))),
    }
}

fn f64_array(v: &JsonValue, what: &str) -> Result<Vec<f64>, EngineError> {
    v.as_array()
        .ok_or_else(|| proto_err(format!("{what} is not an array")))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| proto_err(format!("{what} contains a non-number")))
        })
        .collect()
}

fn parse_marginal(m: &JsonValue) -> Result<WireMarginal, EngineError> {
    let key = m
        .get("key")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| proto_err("marginal key is not an array"))?
        .iter()
        .map(|k| {
            k.as_str()
                .map(str::to_owned)
                .ok_or_else(|| proto_err("marginal key element is not a string"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(WireMarginal {
        stream_type: req_str(m, "type")?,
        key,
        probs: f64_array(
            m.get("probs").ok_or_else(|| proto_err("missing 'probs'"))?,
            "probs",
        )?,
    })
}

fn parse_marginals(v: &JsonValue) -> Result<Vec<WireMarginal>, EngineError> {
    v.get("marginals")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| proto_err("missing 'marginals' array"))?
        .iter()
        .map(parse_marginal)
        .collect()
}

fn parse_ticks(v: &JsonValue) -> Result<Vec<Vec<WireMarginal>>, EngineError> {
    v.get("ticks")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| proto_err("missing 'ticks' array"))?
        .iter()
        .map(|tick| {
            tick.as_array()
                .ok_or_else(|| proto_err("ticks element is not an array"))?
                .iter()
                .map(parse_marginal)
                .collect()
        })
        .collect()
}

/// Extracts the optional request-correlation `id` from a parsed frame.
/// A present-but-malformed id is a protocol error rather than being
/// silently dropped — the client is clearly speaking the extension and
/// would otherwise mis-correlate replies.
fn parse_request_id(v: &JsonValue) -> Result<Option<u64>, EngineError> {
    match v.get("id") {
        None => Ok(None),
        Some(id) => id
            .as_u64()
            .map(Some)
            .ok_or_else(|| proto_err("'id' is not an unsigned integer")),
    }
}

/// Parses one request line. Rejects frames whose `"v"` field names a
/// version this build does not speak (frames without `"v"` are assumed
/// current).
pub fn parse_command(line: &str) -> Result<Command, EngineError> {
    parse_request(line).map(|(c, _)| c)
}

/// Parses one request line together with its optional correlation `id`.
pub fn parse_request(line: &str) -> Result<(Command, Option<u64>), EngineError> {
    let v = json::parse(line).map_err(|e| proto_err(format!("bad frame: {e}")))?;
    if let Some(ver) = v.get("v") {
        let ver = ver
            .as_u64()
            .ok_or_else(|| proto_err("'v' is not an integer"))?;
        if ver != u64::from(PROTOCOL_VERSION) {
            return Err(proto_err(format!(
                "unsupported protocol version {ver} (this build speaks {PROTOCOL_VERSION})"
            )));
        }
    }
    let id = parse_request_id(&v)?;
    let cmd = match req_str(&v, "cmd")?.as_str() {
        "ping" => Ok(Command::Ping),
        "shutdown" => Ok(Command::Shutdown),
        "open" => Ok(Command::Open {
            session: req_str(&v, "session")?,
        }),
        "register" => Ok(Command::Register {
            session: req_str(&v, "session")?,
            name: req_str(&v, "name")?,
            query: req_str(&v, "query")?,
        }),
        "stage" => Ok(Command::Stage {
            session: req_str(&v, "session")?,
            marginals: parse_marginals(&v)?,
            tick: req_bool(&v, "tick")?,
        }),
        "stage_ticks" => Ok(Command::StageTicks {
            session: req_str(&v, "session")?,
            ticks: parse_ticks(&v)?,
        }),
        "tick" => Ok(Command::Tick {
            session: req_str(&v, "session")?,
        }),
        "series" => Ok(Command::Series {
            session: req_str(&v, "session")?,
            query: req_str(&v, "query")?,
        }),
        "checkpoint" => Ok(Command::Checkpoint {
            session: req_str(&v, "session")?,
        }),
        other => Err(proto_err(format!("unknown command '{other}'"))),
    }?;
    Ok((cmd, id))
}

/// Parses one response line.
pub fn parse_response(line: &str) -> Result<Response, EngineError> {
    parse_response_with_id(line).map(|(r, _)| r)
}

/// Parses one response line together with its optional echoed `id`.
pub fn parse_response_with_id(line: &str) -> Result<(Response, Option<u64>), EngineError> {
    let v = json::parse(line).map_err(|e| proto_err(format!("bad frame: {e}")))?;
    let id = parse_request_id(&v)?;
    let r = match req_str(&v, "type")?.as_str() {
        "pong" => Ok(Response::Pong {
            version: req_u64(&v, "version")? as u32,
        }),
        "opened" => Ok(Response::Opened {
            t: req_u64(&v, "t")? as u32,
            restored: req_bool(&v, "restored")?,
        }),
        "registered" => Ok(Response::Registered {
            query: req_u64(&v, "query")? as usize,
        }),
        "staged" => Ok(Response::Staged {
            staged: req_u64(&v, "staged")? as usize,
        }),
        "ticked" => {
            let alerts = v
                .get("alerts")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| proto_err("missing 'alerts' array"))?
                .iter()
                .map(|a| {
                    Ok(WireAlert {
                        query: req_u64(a, "query")? as usize,
                        name: req_str(a, "name")?,
                        t: req_u64(a, "t")? as u32,
                        probability: a
                            .get("probability")
                            .and_then(JsonValue::as_f64)
                            .ok_or_else(|| proto_err("missing 'probability'"))?,
                    })
                })
                .collect::<Result<Vec<_>, EngineError>>()?;
            Ok(Response::Ticked {
                t: req_u64(&v, "t")? as u32,
                alerts,
            })
        }
        "series" => Ok(Response::Series {
            query: req_str(&v, "query")?,
            series: f64_array(
                v.get("series")
                    .ok_or_else(|| proto_err("missing 'series'"))?,
                "series",
            )?,
        }),
        "checkpointed" => Ok(Response::Checkpointed {
            t: req_u64(&v, "t")? as u32,
        }),
        "shutting_down" => Ok(Response::ShuttingDown),
        "error" => Ok(Response::Error {
            code: WireCode::from_wire(&req_str(&v, "code")?),
            message: req_str(&v, "message")?,
        }),
        other => Err(proto_err(format!("unknown response type '{other}'"))),
    }?;
    Ok((r, id))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commands() -> Vec<Command> {
        vec![
            Command::Ping,
            Command::Shutdown,
            Command::Open {
                session: "s \"q\"\nnewline".into(),
            },
            Command::Register {
                session: "s".into(),
                name: "coffee".into(),
                query: "At('joe','office') ; At('joe','coffee')".into(),
            },
            Command::Stage {
                session: "s".into(),
                marginals: vec![WireMarginal {
                    stream_type: "At".into(),
                    key: vec!["joe".into(), "2".into()],
                    probs: vec![0.1 + 0.2, 1.0 / 3.0, 0.5400000000000001],
                }],
                tick: true,
            },
            Command::StageTicks {
                session: "s".into(),
                ticks: vec![
                    vec![WireMarginal {
                        stream_type: "At".into(),
                        key: vec!["joe".into()],
                        probs: vec![0.25, 0.75],
                    }],
                    Vec::new(),
                    vec![
                        WireMarginal {
                            stream_type: "At".into(),
                            key: vec!["joe".into()],
                            probs: vec![0.1 + 0.2, 0.7],
                        },
                        WireMarginal {
                            stream_type: "At".into(),
                            key: vec!["sue".into()],
                            probs: vec![5e-324, 1.0],
                        },
                    ],
                ],
            },
            Command::Tick {
                session: "s".into(),
            },
            Command::Series {
                session: "s".into(),
                query: "coffee".into(),
            },
            Command::Checkpoint {
                session: "s".into(),
            },
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Pong {
                version: PROTOCOL_VERSION,
            },
            Response::Opened {
                t: 7,
                restored: true,
            },
            Response::Registered { query: 3 },
            Response::Staged { staged: 2 },
            Response::Ticked {
                t: 8,
                alerts: vec![WireAlert {
                    query: 0,
                    name: "coffee ⊥".into(),
                    t: 7,
                    probability: 0.5400000000000001,
                }],
            },
            Response::Series {
                query: "coffee".into(),
                series: vec![0.0, 0.1 + 0.2, 5e-324],
            },
            Response::Checkpointed { t: 8 },
            Response::ShuttingDown,
            Response::Error {
                code: WireCode::Overloaded,
                message: "shard 2 queue full\ndetail".into(),
            },
            Response::Error {
                code: WireCode::Other("code_from_the_future".into()),
                message: "forward compat".into(),
            },
        ]
    }

    #[test]
    fn commands_round_trip_as_single_lines() {
        for c in commands() {
            let line = encode_command(&c);
            assert!(!line.contains('\n'), "frame has a raw newline: {line}");
            assert_eq!(parse_command(&line).unwrap(), c, "{line}");
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        for r in responses() {
            let line = encode_response(&r);
            assert!(!line.contains('\n'), "frame has a raw newline: {line}");
            let back = parse_response(&line).unwrap();
            assert_eq!(back, r, "{line}");
        }
        // Bit-exactness of probabilities specifically.
        let r = Response::Series {
            query: "q".into(),
            series: vec![0.1 + 0.2],
        };
        match parse_response(&encode_response(&r)).unwrap() {
            Response::Series { series, .. } => {
                assert_eq!(series[0].to_bits(), (0.1f64 + 0.2).to_bits());
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn request_ids_round_trip_on_both_directions() {
        for c in commands() {
            let line = encode_request(&c, Some(42));
            assert!(!line.contains('\n'), "frame has a raw newline: {line}");
            let (back, id) = parse_request(&line).unwrap();
            assert_eq!(back, c, "{line}");
            assert_eq!(id, Some(42), "{line}");
            // Frames without an id still parse as id-less.
            let (back, id) = parse_request(&encode_request(&c, None)).unwrap();
            assert_eq!(back, c);
            assert_eq!(id, None);
        }
        for r in responses() {
            // The largest id that survives every f64-backed JSON parser.
            let max_safe = (1u64 << 53) - 1;
            let line = encode_response_with_id(&r, Some(max_safe));
            assert!(!line.contains('\n'), "frame has a raw newline: {line}");
            let (back, id) = parse_response_with_id(&line).unwrap();
            assert_eq!(back, r, "{line}");
            assert_eq!(id, Some(max_safe), "{line}");
            assert_eq!(encode_response_with_id(&r, None), encode_response(&r));
        }
    }

    #[test]
    fn wire_codes_round_trip_to_the_exact_v1_strings() {
        let known = [
            (WireCode::Overloaded, "overloaded"),
            (WireCode::UnknownSession, "unknown_session"),
            (WireCode::SessionLimit, "session_limit"),
            (WireCode::UnknownQuery, "unknown_query"),
            (WireCode::BadRequest, "bad_request"),
            (WireCode::Durability, "durability"),
            (WireCode::Protocol, "protocol"),
            (WireCode::Engine, "engine"),
            (WireCode::Poisoned, "poisoned"),
            (WireCode::ShuttingDown, "shutting_down"),
        ];
        for (code, wire) in known {
            assert_eq!(code.as_str(), wire);
            assert_eq!(WireCode::from_wire(wire), code);
            assert_eq!(code.to_string(), wire);
        }
        // Unknown strings survive a round trip rather than erroring.
        let future = WireCode::from_wire("brownout");
        assert_eq!(future, WireCode::Other("brownout".into()));
        assert_eq!(future.as_str(), "brownout");
    }

    #[test]
    fn malformed_request_ids_are_protocol_errors() {
        for bad in [
            "{\"cmd\":\"ping\",\"id\":\"seven\"}",
            "{\"cmd\":\"ping\",\"id\":-1}",
            "{\"cmd\":\"ping\",\"id\":1.5}",
            "{\"cmd\":\"ping\",\"id\":null}",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut line = encode_command(&Command::Ping);
        line = line.replace("\"v\":1", "\"v\":999");
        let err = parse_command(&line).unwrap_err();
        assert!(matches!(err, EngineError::Protocol(_)), "{err}");
        // Frames without a version field are assumed current.
        assert_eq!(parse_command("{\"cmd\":\"ping\"}").unwrap(), Command::Ping);
    }

    #[test]
    fn malformed_frames_are_protocol_errors() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"cmd\":\"nope\"}",
            "{\"cmd\":\"open\"}",
            "{\"cmd\":\"stage\",\"session\":\"s\"}",
            "{\"cmd\":\"stage_ticks\",\"session\":\"s\"}",
            "{\"cmd\":\"stage_ticks\",\"session\":\"s\",\"ticks\":[{}]}",
            "{\"type\":\"mystery\"}",
        ] {
            assert!(parse_command(bad).is_err(), "{bad:?}");
        }
        assert!(parse_response("{\"type\":\"mystery\"}").is_err());
    }
}
