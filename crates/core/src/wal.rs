//! Per-session write-ahead tick log.
//!
//! The engine's contract after PR 7 is that an **acknowledged tick is
//! durable**: once `lahar serve` answers a `stage`/`stage_ticks`/`tick`
//! request, a crash (up to and including `kill -9`) must not lose it.
//! Checkpoints alone cannot give that — they are periodic, and
//! re-capturing a full [`crate::Checkpoint`] per tick would be O(history)
//! per ack. So every state-mutating command is first applied to the
//! in-memory session and then appended here as one framed record; on
//! restart, [`crate::LaharServer`] restores the newest good checkpoint
//! and replays the log tail on top of it, converging bit-identically to
//! the pre-crash series.
//!
//! # Segment format
//!
//! A session's log is a sequence of *segment* files named
//! `{stem}.g{generation:08}.wal` next to the checkpoint generations.
//! Segment `gN` holds exactly the records appended **after** checkpoint
//! generation `N` was persisted (`g0` precedes any checkpoint); the
//! writer rotates to a new segment whenever a checkpoint generation is
//! persisted, and segments older than the oldest retained checkpoint
//! generation are garbage-collected.
//!
//! Each record is one line, length- and checksum-framed around an NDJSON
//! payload so a torn tail (partial write at the crash point) is detected
//! and discarded rather than misparsed:
//!
//! ```text
//! <len:08x> <crc32:08x> <payload JSON>\n
//! ```
//!
//! `len` is the byte length of the payload; `crc32` is the IEEE CRC-32
//! of the payload bytes. Readers stop at the first frame whose length,
//! checksum, or trailing newline does not check out ([`SegmentRead::torn`]).
//! Payload strings are JSON-escaped, so a payload never contains a raw
//! newline and the frame boundary is unambiguous.
//!
//! # Fsync policy
//!
//! [`Durability`] (from `SessionConfig::durability` /
//! `lahar serve --durability`) picks the cost of the guarantee:
//!
//! * [`Durability::None`] — no log at all; an ack only promises the
//!   in-memory apply (pre-PR 7 behaviour).
//! * [`Durability::Batch`] — the record is written to the OS before the
//!   ack (`write(2)`, no fsync; fsync happens at checkpoint/rotation).
//!   Acked ticks survive **process death** (the page cache persists a
//!   `kill -9`) but not a whole-host power loss.
//! * [`Durability::Always`] — fsync per append; acked ticks survive
//!   power loss at the price of one `fdatasync` per acked batch.

use crate::error::EngineError;
use crate::json::{self, JsonValue};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// What an acknowledgement is allowed to promise: the fsync policy of
/// the per-session write-ahead log. See the module docs for the exact
/// guarantee at each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No write-ahead log: acknowledged ticks since the last checkpoint
    /// are lost on process death.
    #[default]
    None,
    /// Log every acked batch with `write(2)` before the ack; fsync only
    /// at checkpoint boundaries. Survives `kill -9`, not power loss.
    Batch,
    /// Log and fsync every acked batch before the ack. Survives power
    /// loss.
    Always,
}

impl Durability {
    /// Parses the CLI / config spelling (`none`, `batch`, `always`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(Self::None),
            "batch" => Some(Self::Batch),
            "always" => Some(Self::Always),
            _ => None,
        }
    }

    /// The CLI / config spelling of this level.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Batch => "batch",
            Self::Always => "always",
        }
    }
}

/// One staged marginal as logged: the stream's index in database order
/// (stable across restore) plus the full probability vector in domain
/// order, ⊥ last — the same layout as `Marginal::probs()`.
#[derive(Debug, Clone, PartialEq)]
pub struct WalMarginal {
    /// Stream index in database declaration order.
    pub stream: usize,
    /// Full probability vector, domain order, ⊥ last.
    pub probs: Vec<f64>,
}

/// The state mutation a record captures.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// `stage` with `tick: false`: marginals staged, tick left open.
    Staged(Vec<WalMarginal>),
    /// One or more closed ticks (`stage` with `tick: true`, bare
    /// `tick`, or a whole `stage_ticks` epoch): `ticks[i]` holds the
    /// marginals staged for tick `t0 + i`; an empty list is an all-⊥
    /// tick.
    Ticks(Vec<Vec<WalMarginal>>),
    /// A query registered mid-stream (replay re-registers + backfills).
    Register {
        /// Registered query name.
        name: String,
        /// Query source text.
        query: String,
    },
}

/// One framed log record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotonic per-session sequence number (diagnostic ordering).
    pub seq: u64,
    /// The session clock when the mutation was applied. For
    /// [`WalOp::Ticks`] the record covers session times
    /// `t0 .. t0 + ticks.len()`.
    pub t0: u64,
    /// The logged mutation.
    pub op: WalOp,
}

impl WalRecord {
    /// Encodes the payload JSON (no framing).
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str(&format!("{{\"seq\":{},\"t0\":{},", self.seq, self.t0));
        match &self.op {
            WalOp::Staged(marginals) => {
                out.push_str("\"staged\":");
                push_marginals(&mut out, marginals);
            }
            WalOp::Ticks(ticks) => {
                out.push_str("\"ticks\":[");
                for (i, tick) in ticks.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_marginals(&mut out, tick);
                }
                out.push(']');
            }
            WalOp::Register { name, query } => {
                out.push_str("\"register\":{\"name\":");
                json::push_string(&mut out, name);
                out.push_str(",\"query\":");
                json::push_string(&mut out, query);
                out.push('}');
            }
        }
        out.push('}');
        out
    }

    /// Parses a payload produced by [`WalRecord::to_json`].
    fn from_json(payload: &str) -> Result<Self, EngineError> {
        let doc = json::parse(payload).map_err(|e| corrupt(&format!("wal record: {e}")))?;
        let seq = get_u64(&doc, "seq")?;
        let t0 = get_u64(&doc, "t0")?;
        let op = if let Some(staged) = doc.get("staged") {
            WalOp::Staged(parse_marginals(staged)?)
        } else if let Some(ticks) = doc.get("ticks") {
            WalOp::Ticks(
                ticks
                    .as_array()
                    .ok_or_else(|| corrupt("wal ticks is not an array"))?
                    .iter()
                    .map(parse_marginals)
                    .collect::<Result<_, _>>()?,
            )
        } else if let Some(reg) = doc.get("register") {
            WalOp::Register {
                name: get_str(reg, "name")?,
                query: get_str(reg, "query")?,
            }
        } else {
            return Err(corrupt("wal record has no operation field"));
        };
        Ok(Self { seq, t0, op })
    }
}

fn push_marginals(out: &mut String, marginals: &[WalMarginal]) {
    out.push('[');
    for (i, m) in marginals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"s\":{},\"p\":[", m.stream));
        for (j, &p) in m.probs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::push_f64(out, p);
        }
        out.push_str("]}");
    }
    out.push(']');
}

fn parse_marginals(v: &JsonValue) -> Result<Vec<WalMarginal>, EngineError> {
    v.as_array()
        .ok_or_else(|| corrupt("wal marginal list is not an array"))?
        .iter()
        .map(|m| {
            let probs = m
                .get("p")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| corrupt("wal marginal has no probability array"))?
                .iter()
                .map(|p| {
                    p.as_f64()
                        .ok_or_else(|| corrupt("wal marginal holds a non-number"))
                })
                .collect::<Result<_, _>>()?;
            Ok(WalMarginal {
                stream: get_u64(m, "s")? as usize,
                probs,
            })
        })
        .collect()
}

fn corrupt(msg: &str) -> EngineError {
    EngineError::CheckpointCorrupt(msg.to_owned())
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, EngineError> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| corrupt(&format!("wal field '{key}' is not an integer")))
}

fn get_str(v: &JsonValue, key: &str) -> Result<String, EngineError> {
    Ok(v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| corrupt(&format!("wal field '{key}' is not a string")))?
        .to_owned())
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven. Shared with the checkpoint
// envelope — the workspace deliberately carries no external crates.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `bytes` (the same polynomial as zip/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frames one payload line: `<len:08x> <crc:08x> <payload>\n`.
fn frame(payload: &str) -> String {
    format!(
        "{:08x} {:08x} {payload}\n",
        payload.len(),
        crc32(payload.as_bytes())
    )
}

// ---------------------------------------------------------------------
// Segment files.

/// The segment file holding records appended after checkpoint
/// generation `gen` (`g0` precedes any checkpoint).
pub fn segment_path(dir: &Path, stem: &str, gen: u64) -> PathBuf {
    dir.join(format!("{stem}.g{gen:08}.wal"))
}

/// All of a session's segments in `dir`, ascending by generation.
pub fn list_segments(dir: &Path, stem: &str) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return found;
    };
    let prefix = format!("{stem}.g");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(rest) = name.strip_prefix(&prefix) {
            if let Some(digits) = rest.strip_suffix(".wal") {
                if let Ok(gen) = digits.parse::<u64>() {
                    found.push((gen, entry.path()));
                }
            }
        }
    }
    found.sort();
    found
}

/// Removes segments with generation `< keep_from`; returns how many
/// were deleted. Failures to delete are ignored (a leftover segment is
/// harmless — replay skips covered records).
pub fn gc_segments(dir: &Path, stem: &str, keep_from: u64) -> usize {
    let mut removed = 0;
    for (gen, path) in list_segments(dir, stem) {
        if gen < keep_from && std::fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// The decoded contents of one segment file.
#[derive(Debug, Default)]
pub struct SegmentRead {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// True when the file ended in a torn frame (bad length, checksum,
    /// or missing trailing newline) — everything before it is intact.
    pub torn: bool,
}

/// Reads and verifies a segment, stopping at the first torn frame.
pub fn read_segment(path: &Path) -> std::io::Result<SegmentRead> {
    let bytes = std::fs::read(path)?;
    let mut out = SegmentRead::default();
    let mut at = 0usize;
    while at < bytes.len() {
        // Header: 8 hex chars, ' ', 8 hex chars, ' '.
        let Some(header) = bytes.get(at..at + 18) else {
            out.torn = true;
            break;
        };
        let Ok(header) = std::str::from_utf8(header) else {
            out.torn = true;
            break;
        };
        let (len, crc) = match (
            u32::from_str_radix(&header[0..8], 16),
            u32::from_str_radix(&header[9..17], 16),
        ) {
            (Ok(len), Ok(crc)) if &header[8..9] == " " && &header[17..18] == " " => (len, crc),
            _ => {
                out.torn = true;
                break;
            }
        };
        let start = at + 18;
        let end = start + len as usize;
        if end >= bytes.len() || bytes[end] != b'\n' {
            out.torn = true;
            break;
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            out.torn = true;
            break;
        }
        let Ok(payload) = std::str::from_utf8(payload) else {
            out.torn = true;
            break;
        };
        match WalRecord::from_json(payload) {
            Ok(record) => out.records.push(record),
            Err(_) => {
                out.torn = true;
                break;
            }
        }
        at = end + 1;
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Writer.

/// Appender for one session's log. Owned by the serving shard that owns
/// the session; never constructed when the policy is
/// [`Durability::None`].
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    stem: String,
    gen: u64,
    next_seq: u64,
    durability: Durability,
    file: File,
    stats: Option<crate::stats::EngineStats>,
}

impl WalWriter {
    /// Opens (appending) the segment for checkpoint generation `gen`.
    pub fn open(
        dir: &Path,
        stem: &str,
        gen: u64,
        next_seq: u64,
        durability: Durability,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(dir, stem, gen))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            stem: stem.to_owned(),
            gen,
            next_seq,
            durability,
            file,
            stats: None,
        })
    }

    /// Routes append/fsync telemetry into a session's [`crate::EngineStats`].
    pub fn with_stats(mut self, stats: crate::stats::EngineStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The checkpoint generation the current segment follows.
    pub fn gen(&self) -> u64 {
        self.gen
    }

    /// Appends one operation as a framed record, honouring the fsync
    /// policy, and returns the record's sequence number. The ack for
    /// the mutation must not be sent until this returns.
    pub fn append(&mut self, t0: u64, op: WalOp) -> std::io::Result<u64> {
        let _span = crate::trace::span("wal_append").with("t0", t0);
        let seq = self.next_seq;
        let record = WalRecord { seq, t0, op };
        let line = frame(&record.to_json());
        // Torn-write fault injection: write a partial frame, then die
        // exactly as a power cut mid-append would — the recovery path
        // must discard the torn tail and keep everything before it.
        if crate::failpoint::check("wal_append").is_err() {
            let _ = self.file.write_all(&line.as_bytes()[..line.len() / 2]);
            let _ = self.file.sync_data();
            std::process::abort();
        }
        self.file.write_all(line.as_bytes())?;
        if self.durability == Durability::Always {
            self.sync()?;
        }
        self.next_seq = seq + 1;
        if let Some(stats) = &self.stats {
            stats.record_wal_append(line.len() as u64);
        }
        Ok(seq)
    }

    /// Fsyncs the current segment, recording the latency.
    pub fn sync(&mut self) -> std::io::Result<()> {
        let _span = crate::trace::span("wal_fsync");
        let started = Instant::now();
        self.file.sync_data()?;
        if let Some(stats) = &self.stats {
            stats.record_fsync(started.elapsed());
        }
        Ok(())
    }

    /// Rotates to the segment following checkpoint generation
    /// `new_gen`: fsyncs and closes the current segment, then opens the
    /// new one. Called right after a checkpoint generation is
    /// persisted, so replay can treat segment `gN` as strictly
    /// post-checkpoint-`N`.
    pub fn rotate(&mut self, new_gen: u64) -> std::io::Result<()> {
        self.sync()?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, &self.stem, new_gen))?;
        self.file = file;
        self.gen = new_gen;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lahar_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops() -> Vec<(u64, WalOp)> {
        vec![
            (
                0,
                WalOp::Register {
                    name: "q \"quoted\"\n".to_owned(),
                    query: "At(p,'a') ; At(p,'c')".to_owned(),
                },
            ),
            (
                0,
                WalOp::Staged(vec![WalMarginal {
                    stream: 3,
                    probs: vec![0.1 + 0.2, 5e-324, 0.0],
                }]),
            ),
            (
                0,
                WalOp::Ticks(vec![
                    vec![WalMarginal {
                        stream: 0,
                        probs: vec![1.0 / 3.0, 0.5],
                    }],
                    vec![],
                ]),
            ),
        ]
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_read_round_trip_is_exact() {
        let dir = temp_dir("roundtrip");
        let mut w = WalWriter::open(&dir, "s", 0, 7, Durability::Batch).unwrap();
        for (t0, op) in sample_ops() {
            w.append(t0, op).unwrap();
        }
        let read = read_segment(&segment_path(&dir, "s", 0)).unwrap();
        assert!(!read.torn);
        assert_eq!(read.records.len(), 3);
        assert_eq!(read.records[0].seq, 7);
        assert_eq!(read.records[2].seq, 9);
        let expect: Vec<WalOp> = sample_ops().into_iter().map(|(_, op)| op).collect();
        for (record, op) in read.records.iter().zip(&expect) {
            assert_eq!(&record.op, op);
        }
        // Bit-exact floats through the frame.
        match (&read.records[1].op, &expect[1]) {
            (WalOp::Staged(a), WalOp::Staged(b)) => {
                for (x, y) in a[0].probs.iter().zip(&b[0].probs) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            _ => unreachable!(),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_detected_and_prefix_survives() {
        let dir = temp_dir("torn");
        let mut w = WalWriter::open(&dir, "s", 2, 0, Durability::Batch).unwrap();
        for (t0, op) in sample_ops() {
            w.append(t0, op).unwrap();
        }
        drop(w);
        let path = segment_path(&dir, "s", 2);
        let full = std::fs::read(&path).unwrap();
        // Truncate at every byte boundary inside the final frame: the
        // first two records must always survive, torn must be flagged.
        let second_end = {
            let mut seen = 0;
            full.iter()
                .position(|&b| {
                    if b == b'\n' {
                        seen += 1;
                    }
                    seen == 2
                })
                .unwrap()
                + 1
        };
        // A cut exactly at the record boundary (`second_end`) is a
        // clean two-record file, not a torn one; every cut strictly
        // inside the final frame must be flagged.
        for cut in second_end + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let read = read_segment(&path).unwrap();
            assert!(read.torn, "cut at {cut} not flagged");
            assert_eq!(read.records.len(), 2, "cut at {cut} lost intact prefix");
        }
        // A flipped payload bit fails the checksum.
        let mut flipped = full.clone();
        let last = flipped.len() - 10;
        flipped[last] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        let read = read_segment(&path).unwrap();
        assert!(read.torn);
        assert_eq!(read.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_gc_manage_segments() {
        let dir = temp_dir("rotate");
        let mut w = WalWriter::open(&dir, "s", 0, 0, Durability::Batch).unwrap();
        w.append(0, WalOp::Ticks(vec![vec![]])).unwrap();
        w.rotate(1).unwrap();
        w.append(1, WalOp::Ticks(vec![vec![]])).unwrap();
        w.rotate(2).unwrap();
        assert_eq!(w.gen(), 2);
        let gens: Vec<u64> = list_segments(&dir, "s")
            .into_iter()
            .map(|(g, _)| g)
            .collect();
        assert_eq!(gens, vec![0, 1, 2]);
        assert_eq!(gc_segments(&dir, "s", 1), 1);
        let gens: Vec<u64> = list_segments(&dir, "s")
            .into_iter()
            .map(|(g, _)| g)
            .collect();
        assert_eq!(gens, vec![1, 2]);
        // Sequence numbers survive rotation.
        let read = read_segment(&segment_path(&dir, "s", 1)).unwrap();
        assert_eq!(read.records[0].seq, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durability_parse_round_trips() {
        for level in [Durability::None, Durability::Batch, Durability::Always] {
            assert_eq!(Durability::parse(level.as_str()), Some(level));
        }
        assert_eq!(Durability::parse("fsync"), None);
    }
}
