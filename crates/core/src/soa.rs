//! Batched struct-of-arrays stepping for the session hot path.
//!
//! The scalar path steps one chain at a time: per chain, a symbol-cache
//! probe, a slot binary-search per distribution entry, and a
//! bounds-checked `step()` per `(state, slot)` pair. At ~1k chains per
//! tick the per-chain bookkeeping dominates the actual arithmetic.
//!
//! This module regroups the work *across* chains. Chains that share a
//! [`SharedAutomaton`] **and** the same local state numbering (identical
//! `local_to_shared`, hence identical accepting masks and identical
//! float accumulation order) are packed into one *batch*: a contiguous
//! mass matrix `mass[state][lane]` (lane = chain), a per-tick
//! probability matrix `pmat[dist_entry][lane]` over the *union* symbol
//! support, and one transition column per `(state, dist_entry)` resolved
//! once per batch instead of once per chain. The per-tick inner loop is
//! then a flat `next[q2][lane] += mass[q][lane] * pmat[di][lane]` over
//! lanes — autovectorizable, or dispatched to the explicit AVX2/SSE2
//! kernels in [`crate::simd`].
//!
//! # Bit-identity
//!
//! The engine guarantees bit-identical results across stepping paths,
//! and batching preserves it *exactly*, not approximately:
//!
//! * Per lane, contributions to each target state are applied in
//!   `(state ascending, dist entry ascending)` order — the same order
//!   as the scalar loop, because each lane's distribution is a sorted
//!   subsequence of the sorted union support.
//! * Union-support entries a lane doesn't have get probability `+0.0`,
//!   and zero-mass rows are routed rather than skipped. All masses and
//!   probabilities are non-negative, so every such contribution is
//!   exactly `+0.0`, and `x + 0.0` is bit-identical to `x` for every
//!   non-negative `x` — padding is invisible at the bit level.
//! * The SIMD kernels are element-wise multiply-then-add (never FMA),
//!   so each lane's arithmetic is IEEE-identical to scalar.
//!
//! A batch only takes the fast path when every transition out of an
//! *occupied* state lands in the lanes' existing local numbering; a
//! transition that would have to discover a new local state makes the
//! whole batch fall back to per-chain scalar stepping for that tick
//! (which performs the discovery in per-chain order, exactly as the
//! scalar engine would have). In steady state — the automaton's reachable
//! closure discovered, which the freeze heuristics reach within a few
//! ticks — every tick takes the fast path.
//!
//! When span tracing is enabled the shard steps chains scalar so the
//! per-chain `chain_step` spans keep their exact legacy shape.

use crate::chain::ChainEvaluator;
use crate::error::EngineError;
use crate::kernel::{KernelTickStats, SymCache, Via, UNKNOWN};
use crate::simd;
use lahar_automata::SymbolSet;
use lahar_model::Marginal;
use std::time::Instant;

/// Below this many lanes a batch isn't worth its per-tick setup
/// (support merge + column resolution); such chains step scalar.
const MIN_LANES: usize = 4;

/// Lanes per route/accept/commit block: 64 lanes × 8 bytes = one 512 B
/// row segment, so a block's mass, next, and pmat rows all sit in L1
/// while every (state, support) pair is applied to it.
const LANE_BLOCK: usize = 64;

/// Reusable per-shard scratch for the batched path. Carried inside the
/// shard so allocations survive across ticks (and travel with the shard
/// to worker threads); holds no chain state — chains remain the single
/// source of truth between ticks, so checkpoint export/restore is
/// untouched by batching.
#[derive(Default)]
pub(crate) struct SoaScratch {
    groups: Vec<Group>,
    /// Chain indices stepped scalar this tick (non-independent, forced
    /// interpreter, or in a group below [`MIN_LANES`]).
    singles: Vec<usize>,
    /// Per-chain `(automaton ptr, layout fingerprint, syms fingerprint)`
    /// from the plan pass.
    keys: Vec<Option<(usize, u64, u64)>>,
    /// Monotone batched-tick counter; see [`Group::commit_seq`].
    seq: u64,
}

impl SoaScratch {
    /// Marks that chain masses advanced outside the batched path (the
    /// tracing-mode scalar loop steps chains directly): any `next`
    /// matrix a group still holds no longer mirrors its chains, so the
    /// next batched tick must re-gather instead of swapping it in.
    pub(crate) fn invalidate_residency(&mut self) {
        self.seq = self.seq.wrapping_add(1);
    }
}

/// One batch: chains sharing an automaton and a local state numbering.
#[derive(Default)]
struct Group {
    ptr: usize,
    layout_hash: u64,
    /// Fingerprint of the lanes' symbol-translation tables: chains of
    /// different queries sharing an automaton stay in separate groups.
    syms_hash: u64,
    /// Chain indices (shard order) — the lanes.
    lanes: Vec<usize>,
    /// Per lane: this tick's distribution index in the symbol cache.
    dist_idx: Vec<u32>,
    /// Sorted union of the lanes' distribution supports.
    support: Vec<SymbolSet>,
    /// `pmat[di * lanes + lane]` — per-lane probability on the union
    /// support (`+0.0` where a lane lacks the entry).
    pmat: Vec<f64>,
    /// `cols[q * support + di]` — local target state, [`UNKNOWN`] when
    /// outside the lanes' numbering (legal only over zero-mass rows).
    /// Cached across ticks: fully determined by (automaton, layout
    /// contents, support contents), so it is reused as long as
    /// `cols_ptr` matches and the layout and support compare equal, and
    /// only columns newly active this tick still resolve.
    cols: Vec<u32>,
    /// Per support entry: was its `cols` column resolved (under the
    /// cached layout)? Inactive columns stay unresolved until a tick
    /// activates them.
    cols_resolved: Vec<bool>,
    /// Cells of resolved columns whose target is outside the lanes'
    /// numbering, skipped because their row was zero-mass. Re-checked
    /// each tick against `row_occ`: a gap whose row gains mass either
    /// resolves into the numbering or forces a discovery.
    gaps: Vec<(u32, u32)>,
    /// Per state: does any lane carry nonzero mass there this tick?
    row_occ: Vec<bool>,
    /// The automaton `ptr` the cached `cols` was resolved against
    /// (group slots are reused across plans, so the slot's key can
    /// change under a cache built for another automaton).
    cols_ptr: usize,
    /// Scratch for this tick's support, compared against the cached
    /// `support` before invalidating the column cache.
    support_new: Vec<SymbolSet>,
    /// The lane list the cached shape below was verified against. Lanes
    /// and their chains' symbol tables are immutable per (query,
    /// binding), so an unchanged lane list keeps the whole phase-1 shape
    /// — uniformity, `stream_idx`, `support`, `slot_of` — valid.
    shape_lanes: Vec<usize>,
    /// Cached [`single_stream_shape`] verdict for `shape_lanes`.
    shape_uniform: bool,
    /// Uniform shape: per lane, its single stream's marginal index.
    stream_idx: Vec<u32>,
    /// Accepting local states (ascending), rebuilt with the layout.
    acc_rows: Vec<u32>,
    /// Per support entry: does any lane carry nonzero probability on it?
    /// Inactive columns route only `+0.0` and are skipped bit-identically.
    active: Vec<bool>,
    /// Single-stream direct fill: outcome index → support slot.
    slot_of: Vec<u32>,
    /// `mass[q * lanes + lane]` / `next[...]` — the SoA mass matrices.
    mass: Vec<f64>,
    next: Vec<f64>,
    /// Per-lane accepting-mass accumulator.
    acc: Vec<f64>,
    /// Copy of the (shared) layout: local → shared ids, accepting words.
    l2s: Vec<u32>,
    acc_words: Vec<u64>,
    /// Scratch for deduplicating distribution indices.
    uniq: Vec<u32>,
    /// The [`SoaScratch::seq`] value of the last tick this group
    /// committed through the fused fast path (0 = never). When the
    /// immediately preceding tick committed with the same lanes and
    /// layout, the group's `next` matrix *is* every lane's current mass
    /// vector — `soa_commit_strided` wrote the chains from exactly
    /// these columns — so the gather swaps it in instead of re-reading
    /// every chain. Cleared on any scalar or split exit.
    commit_seq: u64,
}

/// FNV-1a over a layout (local → shared id map) for cheap grouping;
/// equal hashes are confirmed by exact slice comparison before joining.
/// The hot paths read the memoized copy ([`crate::chain::ChainEvaluator::
/// layout_fp`]); this reference implementation pins the hash order the
/// memo must reproduce.
#[cfg(test)]
fn layout_fingerprint(l2s: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &v in l2s {
        h ^= u64::from(v);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// What one shard tick hands back: per-chain accept probabilities,
/// per-query `(query, ns)` wall-time attribution, and kernel counters.
pub(crate) type ShardStepOutput = (Vec<f64>, Vec<(usize, u64)>, KernelTickStats);

/// Steps every chain in the shard against one tick's marginals —
/// batched where layouts allow, scalar otherwise. Drop-in replacement
/// for the scalar per-chain loop: returns the same `(probs, query_ns,
/// kernel stats)` triple, with per-batch wall time apportioned evenly
/// across a batch's lanes for the per-query attribution.
pub(crate) fn step_shard_chains(
    chains: &mut [(usize, ChainEvaluator)],
    marginals: &[Marginal],
    cache: &mut SymCache,
    failpoint: &'static str,
    scratch: &mut SoaScratch,
) -> Result<ShardStepOutput, EngineError> {
    // The batch path checks all failpoints up front (a faulted tick
    // mutates no chain at all — strictly cleaner than the scalar path's
    // partial progress; recovery semantics are identical either way).
    for _ in chains.iter() {
        crate::failpoint::check(failpoint)?;
    }
    let mut probs = vec![0.0f64; chains.len()];
    let mut query_ns: Vec<(usize, u64)> = Vec::new();
    let mut kernel = KernelTickStats::default();

    plan_groups(chains, scratch);
    scratch.seq = scratch.seq.wrapping_add(1);
    let seq = scratch.seq;

    // Step the batches (each group is homogeneous in layout, not
    // necessarily in query, so per-query time is apportioned per lane).
    let mut groups = std::mem::take(&mut scratch.groups);
    for g in &mut groups {
        let started = Instant::now();
        step_group(
            g,
            chains,
            marginals,
            cache,
            &mut kernel,
            &mut probs,
            seq,
            true,
        )?;
        let per_lane = elapsed_ns(started) / g.lanes.len().max(1) as u64;
        for &idx in &g.lanes {
            query_ns.push((chains[idx].0, per_lane));
        }
    }
    scratch.groups = groups;

    // Step the leftovers scalar, exactly like the legacy loop.
    let singles = std::mem::take(&mut scratch.singles);
    for &idx in &singles {
        let started = Instant::now();
        let (qi, chain) = &mut chains[idx];
        probs[idx] = chain.step_with_cache(marginals, Some(cache))?;
        kernel.steps.add(chain.take_kernel_counters());
        query_ns.push((*qi, elapsed_ns(started)));
    }
    scratch.singles = singles;

    let (sym_hits, sym_misses) = cache.take_counters();
    kernel.sym_hits += sym_hits;
    kernel.sym_misses += sym_misses;
    Ok((probs, query_ns, kernel))
}

/// Partitions the shard's chains into layout-homogeneous groups plus a
/// scalar leftover list, reusing the scratch's allocations.
fn plan_groups(chains: &[(usize, ChainEvaluator)], scratch: &mut SoaScratch) {
    for g in &mut scratch.groups {
        g.lanes.clear();
    }
    scratch.singles.clear();
    scratch.keys.clear();
    for (idx, (_, chain)) in chains.iter().enumerate() {
        let Some(desc) = chain.soa_descriptor() else {
            scratch.singles.push(idx);
            scratch.keys.push(None);
            continue;
        };
        let key = (
            desc.automaton_ptr,
            chain.layout_fp().expect("SoA-eligible chain"),
            chain.syms_fingerprint(),
        );
        scratch.keys.push(Some(key));
        // Linear scan: group counts stay small (one per automaton ×
        // layout variant × query symbol table present in the shard).
        let found = scratch.groups.iter_mut().find(|g| {
            (g.ptr, g.layout_hash, g.syms_hash) == key
                && g.lanes.first().is_none_or(|&rep| {
                    chains[rep]
                        .1
                        .soa_descriptor()
                        .is_some_and(|r| r.l2s == desc.l2s)
                })
        });
        match found {
            Some(g) => g.lanes.push(idx),
            None => {
                // Reuse an empty group slot before allocating a new one.
                if let Some(g) = scratch.groups.iter_mut().find(|g| g.lanes.is_empty()) {
                    g.ptr = key.0;
                    g.layout_hash = key.1;
                    g.syms_hash = key.2;
                    g.lanes.push(idx);
                } else {
                    scratch.groups.push(Group {
                        ptr: key.0,
                        layout_hash: key.1,
                        syms_hash: key.2,
                        lanes: vec![idx],
                        ..Group::default()
                    });
                }
            }
        }
    }
    // Undersized groups step scalar.
    for g in &mut scratch.groups {
        if g.lanes.len() < MIN_LANES {
            scratch.singles.append(&mut g.lanes);
        }
    }
    scratch.groups.retain(|g| !g.lanes.is_empty());
    // Keep the scalar leftovers in shard order (append may interleave).
    scratch.singles.sort_unstable();
}

/// The shared outcome → symbol-set table when every lane of the group
/// reads exactly one independent stream through the same table (the
/// shape every per-key grounding of a single-stream query produces).
fn single_stream_shape<'c>(
    g: &Group,
    chains: &'c [(usize, ChainEvaluator)],
) -> Option<&'c [SymbolSet]> {
    let (_, rep_syms) = chains[*g.lanes.first()?].1.soa_single_stream()?;
    for &idx in &g.lanes[1..] {
        let (_, syms) = chains[idx].1.soa_single_stream()?;
        if syms != rep_syms {
            return None;
        }
    }
    Some(rep_syms)
}

/// Steps one batch through one tick: resolve per-lane distributions,
/// merge the union support, resolve transition columns, then route mass
/// in flat lane loops. Falls back to per-chain scalar stepping when a
/// transition out of an occupied state would leave the lanes' numbering.
#[allow(clippy::too_many_arguments)] // one hot internal call site
fn step_group(
    g: &mut Group,
    chains: &mut [(usize, ChainEvaluator)],
    marginals: &[Marginal],
    cache: &mut SymCache,
    kernel: &mut KernelTickStats,
    probs: &mut [f64],
    seq: u64,
    allow_split: bool,
) -> Result<(), EngineError> {
    let lanes = g.lanes.len();
    // An unchanged lane list is the precondition for every cross-tick
    // cache below (captured before the shape block refreshes it).
    let shape_ok = g.shape_lanes == g.lanes;

    // Phases 1–2: per-lane symbol distributions on a shared sorted
    // support, as `pmat[di * lanes + lane]`.
    //
    // Fast shape: every lane reads exactly one independent stream
    // through the same outcome → symbol-set table. The single-stream
    // union-convolution is then just that mapping, so the support is the
    // table's sorted distinct symbols (fixed for the group) and each
    // lane's probabilities come straight from its staged marginal — no
    // signature hashing, no per-chain cache entry. Bit-identity: the
    // scalar convolution pushes `(syms[d], 1.0 * p_d)` in outcome order,
    // stable-sorts, and merges left-to-right, which is exactly
    // `pmat[slot_of[d]] += p_d` in ascending `d` (`1.0 * x == x` and
    // `0.0 + x == x` for the non-negative `x` involved; zero-probability
    // outcomes are skipped by both paths).
    // Shape revalidation is a single lane-list compare in steady state:
    // symbol tables are fixed per (query, binding), so the uniformity
    // verdict, per-lane stream indices, union support, and slot map all
    // survive as long as the planner produced the same lanes.
    let support_same;
    if !shape_ok {
        let uniform = single_stream_shape(g, chains);
        g.shape_lanes.clear();
        g.shape_lanes.extend_from_slice(&g.lanes);
        g.shape_uniform = uniform.is_some();
        if let Some(rep_syms) = uniform {
            g.support_new.clear();
            g.support_new.extend_from_slice(rep_syms);
            g.support_new.sort_unstable_by_key(|sym| sym.0);
            g.support_new.dedup();
            // An unchanged support keeps the cached transition columns
            // below alive; a changed one replaces it.
            support_same = g.support_new == g.support;
            if !support_same {
                std::mem::swap(&mut g.support, &mut g.support_new);
            }
            g.slot_of.clear();
            for &sym in rep_syms {
                let slot = g
                    .support
                    .binary_search_by_key(&sym.0, |s| s.0)
                    .expect("outcome symbol is in the support");
                g.slot_of.push(slot as u32);
            }
            g.stream_idx.clear();
            for &idx in &g.lanes {
                let (si, _) = chains[idx].1.soa_single_stream().expect("uniform lane");
                g.stream_idx.push(si as u32);
            }
        } else {
            support_same = false;
        }
    } else {
        support_same = g.shape_uniform;
    }
    let is_uniform = g.shape_uniform;
    g.active.clear();
    g.pmat.clear();
    if is_uniform {
        let s_len = g.support.len();
        g.active.resize(s_len, false);
        g.pmat.resize(s_len * lanes, 0.0);
        for (lane, &si) in g.stream_idx.iter().enumerate() {
            let probs = marginals[si as usize].probs();
            for (d, &pd) in probs.iter().enumerate().take(g.slot_of.len()) {
                if pd == 0.0 {
                    continue;
                }
                let slot = g.slot_of[d] as usize;
                g.pmat[slot * lanes + lane] += pd;
                g.active[slot] = true;
            }
        }
    } else {
        // General shape: per-lane distributions through the symbol
        // cache (the exact scalar protocol), union support, two-pointer
        // alignment. Every support entry is nonzero in some lane. The
        // support varies with the tick's distributions, so the column
        // cache is not used here (`support_same` is already false for
        // every non-uniform shape).
        g.support.clear();
        g.dist_idx.clear();
        for &idx in &g.lanes {
            g.dist_idx
                .push(chains[idx].1.sym_dist_index(marginals, cache));
        }
        g.uniq.clear();
        g.uniq.extend_from_slice(&g.dist_idx);
        g.uniq.sort_unstable();
        g.uniq.dedup();
        for &di in &g.uniq {
            g.support.extend(cache.dist(di).iter().map(|&(sym, _)| sym));
        }
        g.support.sort_unstable_by_key(|sym| sym.0);
        g.support.dedup();
        let s_len = g.support.len();
        g.active.resize(s_len, true);
        g.pmat.resize(s_len * lanes, 0.0);
        for (lane, &di) in g.dist_idx.iter().enumerate() {
            let dist = cache.dist(di);
            let mut s = 0;
            for &(sym, p) in dist {
                while g.support[s].0 < sym.0 {
                    s += 1;
                }
                debug_assert_eq!(g.support[s].0, sym.0);
                g.pmat[s * lanes + lane] = p;
            }
        }
    }
    let s_len = g.support.len();

    // Phases 3–5, with one discovery retry. A resolution miss (unknown
    // target out of an occupied state) means this is a discovery tick:
    // each lane assigns the new local ids in the exact scalar order
    // (`soa_discover`), the layout snapshot refreshes, and the batch
    // retries — so warmup ticks stay batched instead of falling back to
    // the full per-chain scalar machinery. Only if the lanes' numberings
    // diverge during discovery (their occupied sets differ) does the
    // group step scalar this tick; the next tick's planner regroups.
    let mut n_states;
    let mut discovered = false;
    loop {
        // Layout snapshot from the representative lane (identical across
        // the group by construction, re-verified after discovery). An
        // unchanged layout keeps the cached columns alive and skips the
        // copies.
        let layout_same;
        {
            let rep = chains[g.lanes[0]]
                .1
                .soa_descriptor()
                .expect("group members are SoA-eligible");
            layout_same = rep.l2s == g.l2s.as_slice();
            if !layout_same {
                g.l2s.clear();
                g.l2s.extend_from_slice(rep.l2s);
                g.acc_words.clear();
                g.acc_words.extend_from_slice(rep.acc_words);
                g.acc_rows.clear();
                for (w, &word) in g.acc_words.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let q = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if q < rep.l2s.len() {
                            g.acc_rows.push(q as u32);
                        }
                    }
                }
            }
        }
        n_states = g.l2s.len();

        // Phase 3: the mass matrix. If this group committed the
        // immediately preceding batched tick with the same lanes and
        // layout, its `next` matrix already holds every lane's current
        // mass vector bit-for-bit (the commit wrote the chains from
        // exactly these columns), so swap it in instead of re-reading
        // every chain. Occupancy is rescanned from the matrix either
        // way — the gap re-check below needs it exact, not conservative.
        let resident = g.commit_seq != 0
            && g.commit_seq == seq.wrapping_sub(1)
            && layout_same
            && shape_ok
            && g.next.len() == n_states * lanes;
        if resident {
            std::mem::swap(&mut g.mass, &mut g.next);
            g.row_occ.clear();
            g.row_occ.resize(n_states, false);
            for (q, occ) in g.row_occ.iter_mut().enumerate() {
                *occ = g.mass[q * lanes..(q + 1) * lanes].iter().any(|&m| m != 0.0);
            }
        } else {
            // Full gather (zero-padded: lanes whose mass vector is
            // shorter than the layout contribute exactly +0.0).
            g.mass.clear();
            g.mass.resize(n_states * lanes, 0.0);
            g.row_occ.clear();
            g.row_occ.resize(n_states, false);
            for (lane, &idx) in g.lanes.iter().enumerate() {
                let mass = chains[idx].1.soa_mass().expect("SoA-eligible lane");
                for (q, &m) in mass.iter().enumerate().take(n_states) {
                    g.mass[q * lanes + lane] = m;
                    if m != 0.0 {
                        g.row_occ[q] = true;
                    }
                }
            }
        }

        // Phase 4: transition columns over (state × support), resolved
        // once per batch through the shared automaton (frozen table or
        // interpreter — never a chain's numbering, which only
        // `soa_discover` touches).
        let automaton = chains[g.lanes[0]]
            .1
            .soa_automaton()
            .expect("SoA-eligible lane");
        let cache_live = g.cols_ptr == g.ptr
            && layout_same
            && support_same
            && is_uniform
            && g.cols.len() == n_states * s_len
            && g.cols_resolved.len() == s_len;
        if !cache_live {
            g.cols.clear();
            g.cols.resize(n_states * s_len, UNKNOWN);
            g.cols_resolved.clear();
            g.cols_resolved.resize(s_len, false);
            g.gaps.clear();
            g.cols_ptr = g.ptr;
        }
        let mut fast_ok = true;
        // Re-check cached gap cells: a gap whose row is still zero-mass
        // (or whose column is inactive) keeps contributing exactly
        // nothing; one whose row gained mass under an active column
        // must resolve now — into the numbering, or via a discovery.
        let mut gi = 0;
        while fast_ok && gi < g.gaps.len() {
            let (di, q) = (g.gaps[gi].0 as usize, g.gaps[gi].1 as usize);
            if !g.active[di] || !g.row_occ[q] {
                gi += 1;
                continue;
            }
            let (sq2, _acc, via) = automaton.resolve(g.l2s[q], g.support[di], true);
            match via {
                Via::Frozen => kernel.steps.frozen += 1,
                Via::Interpreter => kernel.steps.slow += 1,
            }
            match chains[g.lanes[0]].1.soa_peek_local(sq2) {
                Some(local) => {
                    g.cols[q * s_len + di] = local;
                    g.gaps.swap_remove(gi);
                }
                None => fast_ok = false,
            }
        }
        // Resolve the columns active this tick that the cache doesn't
        // already hold. In steady state every recurring column is
        // cached, so the shared automaton (and its locks) is not
        // touched at all. A cached column that went inactive still
        // routes — its lanes all carry +0.0 there, which is
        // bit-invisible.
        'resolve: for di in 0..s_len {
            if !fast_ok {
                break;
            }
            // An inactive, unresolved column carries +0.0 in every
            // lane; the scalar path never resolves it, and routing it
            // would add only +0.0 — skip it (its cols entries stay
            // UNKNOWN).
            if !g.active[di] || g.cols_resolved[di] {
                continue;
            }
            let sym = g.support[di];
            for q in 0..n_states {
                let (sq2, _acc, via) = automaton.resolve(g.l2s[q], sym, true);
                match via {
                    Via::Frozen => kernel.steps.frozen += 1,
                    Via::Interpreter => kernel.steps.slow += 1,
                }
                match chains[g.lanes[0]].1.soa_peek_local(sq2) {
                    Some(local) => g.cols[q * s_len + di] = local,
                    None => {
                        // Legal only if no lane occupies q: the scalar
                        // path would never resolve transitions out of a
                        // zero-mass state, so skipping them is
                        // bit-identical. Any occupied lane means a
                        // discovery is due.
                        if g.row_occ[q] {
                            fast_ok = false;
                            break 'resolve;
                        }
                        // Remember the gap: if this row gains mass in a
                        // later tick the cell must resolve then.
                        g.gaps.push((di as u32, q as u32));
                    }
                }
            }
            g.cols_resolved[di] = true;
        }
        if fast_ok {
            break;
        }
        if !discovered {
            discovered = true;
            // Discovery pass: per lane, in the exact scalar order, so
            // the refreshed numbering is bit-for-bit what a scalar tick
            // would have produced.
            let mut act: Vec<SymbolSet> = Vec::with_capacity(s_len);
            for (lane, &idx) in g.lanes.iter().enumerate() {
                act.clear();
                for (di, &sym) in g.support.iter().enumerate() {
                    if g.pmat[di * lanes + lane] != 0.0 {
                        act.push(sym);
                    }
                }
                let (_, chain) = &mut chains[idx];
                chain.soa_discover(&act);
                kernel.steps.add(chain.take_kernel_counters());
            }
            // Lanes that occupied different states discovered different
            // ids; the snapshot above is only valid if every lane still
            // shares the representative's numbering.
            let rep_fp = chains[g.lanes[0]].1.layout_fp().expect("SoA-eligible lane");
            let agree = g.lanes[1..]
                .iter()
                .all(|&idx| chains[idx].1.layout_fp() == Some(rep_fp));
            if agree {
                continue;
            }
            if allow_split {
                // Diverging discovery tick: the lanes now carry
                // different numberings (they occupied different states
                // when the new ids were assigned), but each numbering
                // is still shared by many lanes — so re-partition by
                // layout and step one sub-batch per partition instead
                // of dropping the whole group to scalar. One level
                // only: a sub-batch that diverges again steps scalar.
                let mut parts: Vec<(u64, Group)> = Vec::new();
                for &idx in &g.lanes {
                    let fp = chains[idx].1.layout_fp().expect("SoA-eligible lane");
                    match parts.iter_mut().find(|(p, _)| *p == fp) {
                        Some((_, sub)) => sub.lanes.push(idx),
                        None => parts.push((
                            fp,
                            Group {
                                ptr: g.ptr,
                                layout_hash: fp,
                                syms_hash: g.syms_hash,
                                lanes: vec![idx],
                                ..Group::default()
                            },
                        )),
                    }
                }
                for (_, mut sub) in parts {
                    step_group(
                        &mut sub, chains, marginals, cache, kernel, probs, seq, false,
                    )?;
                }
                g.commit_seq = 0;
                return Ok(());
            }
        }
        // Scalar fallback (discovery already ran, so these steps resolve
        // the same transitions the batch would have).
        g.commit_seq = 0;
        for &idx in &g.lanes {
            let (_, chain) = &mut chains[idx];
            probs[idx] = chain.step_with_cache(marginals, Some(cache))?;
            kernel.steps.add(chain.take_kernel_counters());
        }
        return Ok(());
    }

    // Phases 6–8 fused, in blocks of [`LANE_BLOCK`] lanes: route, then
    // accepting mass, then commit, all while the block's rows are
    // cache-hot. Blocking over lanes is invisible to the arithmetic —
    // every lane still receives its contributions in (q ascending,
    // di ascending) order, the scalar accumulation order, and its
    // accepting sum still adds states ascending (same order as
    // `accept_scan`). Zero-mass rows and inactive columns contribute
    // exactly +0.0 everywhere, so skipping them is bit-invisible.
    g.next.clear();
    g.next.resize(n_states * lanes, 0.0);
    g.acc.clear();
    g.acc.resize(lanes, 0.0);
    let mut lb = 0;
    while lb < lanes {
        let le = (lb + LANE_BLOCK).min(lanes);
        for q in 0..n_states {
            if !g.row_occ[q] {
                continue;
            }
            for di in 0..s_len {
                if !g.active[di] {
                    continue;
                }
                let q2 = g.cols[q * s_len + di] as usize;
                if q2 as u32 == UNKNOWN {
                    continue;
                }
                let next_row = &mut g.next[q2 * lanes + lb..q2 * lanes + le];
                let mass_row = &g.mass[q * lanes + lb..q * lanes + le];
                let p_row = &g.pmat[di * lanes + lb..di * lanes + le];
                simd::mul_add_lanes(next_row, mass_row, p_row);
            }
        }
        for &q in &g.acc_rows {
            let q = q as usize;
            simd::add_lanes(&mut g.acc[lb..le], &g.next[q * lanes + lb..q * lanes + le]);
        }
        for lane in lb..le {
            let (_, chain) = &mut chains[g.lanes[lane]];
            chain.soa_commit_strided(&g.next, lane, lanes, g.acc[lane]);
            probs[g.lanes[lane]] = chain.accept_prob();
        }
        lb = le;
    }
    g.commit_seq = seq;
    let n_active = g.active.iter().filter(|&&a| a).count();
    let routed = (n_states * n_active * lanes) as u64;
    if simd::dispatch().is_simd() {
        kernel.steps.simd += routed;
    } else {
        kernel.steps.soa += routed;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_fingerprint_separates_orders() {
        assert_ne!(
            layout_fingerprint(&[0, 1, 2]),
            layout_fingerprint(&[0, 2, 1])
        );
        assert_eq!(layout_fingerprint(&[0, 1]), layout_fingerprint(&[0, 1]));
        assert_ne!(layout_fingerprint(&[0, 1]), layout_fingerprint(&[0, 1, 2]));
    }
}
