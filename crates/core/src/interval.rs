//! Interval probabilities `P[q[ts, tf]]` for regular queries (§3.3.1,
//! "Regular Expression" operator).
//!
//! `q[ts, tf]` holds when `q` is satisfied at *some* timestep in
//! `[ts, tf]`. The paper's recursion conditions on the Markov-chain state
//! `M(n)`; operationally we augment the chain with a sticky accepted-bit:
//! run the chain normally up to `ts − 1` (partial matches may begin before
//! the interval), then *drain* the accepting mass after every step — the
//! drained total after consuming `tf` is exactly `P[q[ts, tf]]`.
//!
//! One forward pass per interval start gives the paper's `O(T²)` bound;
//! passes share their `[0, ts)` prefix through snapshots, and each pass is
//! extended **lazily** only as far as the largest `tf` requested — the
//! reason Fig 14(b)'s measured curve beats the analytic worst case.

use crate::chain::ChainEvaluator;
use crate::error::EngineError;
use lahar_model::Database;
use lahar_query::NormalItem;
use std::collections::HashMap;

/// A lazily evaluated run for one interval start `ts`.
#[derive(Debug, Clone)]
struct Run {
    chain: ChainEvaluator,
    /// `cumulative[k] = P[q[ts, ts + k]]`.
    cumulative: Vec<f64>,
}

/// Interval-probability evaluator for a grounded regular query.
#[derive(Debug)]
pub struct IntervalChain {
    template: ChainEvaluator,
    /// `prefixes[t]` has consumed timesteps `0 .. t` (i.e. `next_t == t`).
    prefixes: Vec<ChainEvaluator>,
    runs: HashMap<u32, Run>,
}

impl IntervalChain {
    /// Builds the evaluator for grounded items.
    pub fn new(db: &Database, items: &[NormalItem]) -> Result<Self, EngineError> {
        let template = ChainEvaluator::new(db, items)?;
        Ok(Self {
            prefixes: vec![template.clone()],
            template,
            runs: HashMap::new(),
        })
    }

    /// `P[q@t]` — the point probability (equal to `prob(t, t)`).
    pub fn prob_at(&mut self, db: &Database, t: u32) -> f64 {
        self.prob(db, t, t)
    }

    /// `P[q[ts, tf]]`; returns 0 for empty intervals (`tf < ts`).
    pub fn prob(&mut self, db: &Database, ts: u32, tf: u32) -> f64 {
        if tf < ts {
            return 0.0;
        }
        self.ensure_prefix(db, ts);
        let run = self.runs.entry(ts).or_insert_with(|| Run {
            chain: self.prefixes[ts as usize].clone(),
            cumulative: Vec::new(),
        });
        let need = (tf - ts) as usize;
        while run.cumulative.len() <= need {
            run.chain.step(db);
            let drained = run.chain.drain_accepting();
            let prev = run.cumulative.last().copied().unwrap_or(0.0);
            run.cumulative.push(prev + drained);
        }
        run.cumulative[need]
    }

    /// Extends the shared prefix snapshots so `prefixes[ts]` exists.
    fn ensure_prefix(&mut self, db: &Database, ts: u32) {
        while self.prefixes.len() <= ts as usize {
            let mut next = self.prefixes.last().expect("non-empty").clone();
            next.step(db);
            self.prefixes.push(next);
        }
    }

    /// Number of materialized forward passes (diagnostics for the laziness
    /// experiment, Fig 14(b)).
    pub fn n_runs(&self) -> usize {
        self.runs.len()
    }

    /// A fresh evaluator sharing nothing; used when the template must be
    /// re-grounded.
    pub fn template(&self) -> &ChainEvaluator {
        &self.template
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahar_model::{Database, StreamBuilder};
    use lahar_query::{parse_query, prob_series, NormalQuery};

    fn db() -> Database {
        let mut db = Database::new();
        db.declare_stream("At", &["p"], &["loc"]).unwrap();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a", "c"]);
        let init = b.marginal(&[("a", 0.6), ("c", 0.2)]).unwrap();
        let cpt = b
            .cpt(&[
                ("a", "a", 0.5),
                ("a", "c", 0.3),
                ("c", "c", 0.6),
                ("c", "a", 0.2),
            ])
            .unwrap();
        db.add_stream(b.markov(init, vec![cpt.clone(), cpt.clone(), cpt]).unwrap())
            .unwrap();
        db
    }

    fn chain(db: &Database, src: &str) -> (IntervalChain, lahar_query::Query) {
        let q = parse_query(db.interner(), src).unwrap();
        let nq = NormalQuery::from_query(&q);
        (IntervalChain::new(db, &nq.items).unwrap(), q)
    }

    /// Oracle for intervals: Σ over worlds satisfying q at some t in the
    /// interval.
    fn oracle_interval(db: &Database, q: &lahar_query::Query, ts: u32, tf: u32) -> f64 {
        let mut total = 0.0;
        for (world, p) in db.enumerate_worlds() {
            let sat = (ts..=tf).any(|t| lahar_query::satisfied_at(db, &world, q, t).unwrap());
            if sat {
                total += p;
            }
        }
        total
    }

    #[test]
    fn point_probabilities_match_series_oracle() {
        let db = db();
        let (mut ic, q) = chain(&db, "At('joe','a') ; At('joe','c')");
        let want = prob_series(&db, &q).unwrap();
        for (t, w) in want.iter().enumerate() {
            let got = ic.prob_at(&db, t as u32);
            assert!((got - w).abs() < 1e-9, "t={t}: {got} vs {w}");
        }
    }

    #[test]
    fn interval_probabilities_match_interval_oracle() {
        let db = db();
        let (mut ic, q) = chain(&db, "At('joe','a') ; At('joe','c')");
        for ts in 0..4u32 {
            for tf in ts..4u32 {
                let got = ic.prob(&db, ts, tf);
                let want = oracle_interval(&db, &q, ts, tf);
                assert!((got - want).abs() < 1e-9, "[{ts},{tf}]: {got} vs {want}");
            }
        }
    }

    #[test]
    fn empty_interval_is_zero() {
        let db = db();
        let (mut ic, _) = chain(&db, "At('joe','a')");
        assert_eq!(ic.prob(&db, 3, 2), 0.0);
    }

    #[test]
    fn intervals_are_monotone_in_tf() {
        let db = db();
        let (mut ic, _) = chain(&db, "At('joe','a') ; At('joe','c')");
        let mut prev = 0.0;
        for tf in 0..4 {
            let p = ic.prob(&db, 0, tf);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
    }

    #[test]
    fn lazy_runs_only_materialize_requested_starts() {
        let db = db();
        let (mut ic, _) = chain(&db, "At('joe','a')");
        ic.prob(&db, 2, 3);
        ic.prob(&db, 2, 3);
        assert_eq!(ic.n_runs(), 1);
        ic.prob(&db, 0, 1);
        assert_eq!(ic.n_runs(), 2);
    }
}
