//! # lahar-core — the Lahar event-query engine
//!
//! Exact and approximate evaluation of event queries on correlated
//! probabilistic streams, implementing §3 of *Event Queries on Correlated
//! Probabilistic Streams* (Ré, Letchner, Balazinska, Suciu — SIGMOD 2008):
//!
//! | Class (static analysis) | Evaluator | Cost |
//! |---|---|---|
//! | Regular (Def 3.1) | [`RegularEvaluator`] — symbol-set translation + NFA simulated as a Markov chain over (hidden value × automaton state) | `O(1)` space, streaming (Thm 3.3) |
//! | Extended regular (Def 3.5) | [`ExtendedRegularEvaluator`] — one chain per key binding, combined as `1 − Π(1 − pᵢ)` | `O(m)` space (Thm 3.7) |
//! | Safe (Def 3.8) | [`SafePlanExecutor`] — interval algebra with the latest-precursor/latest-witness `seq` factorization | `O(|W| T²)` offline (Thm 3.10) |
//! | Unsafe (§3.4, #P-hard) | [`Sampler`] — (ε, δ) Monte Carlo with bitvector world-parallel NFA simulation | Prop 3.20 |
//!
//! The easiest entry point is the [`Lahar`] facade:
//!
//! ```
//! use lahar_core::Lahar;
//! use lahar_model::{Database, StreamBuilder};
//!
//! let mut db = Database::new();
//! db.declare_stream("At", &["person"], &["loc"]).unwrap();
//! let b = StreamBuilder::new(db.interner(), "At", &["joe"], &["office", "coffee"]);
//! let marginals = vec![
//!     b.marginal(&[("office", 0.9)]).unwrap(),
//!     b.marginal(&[("coffee", 0.6), ("office", 0.3)]).unwrap(),
//! ];
//! db.add_stream(b.independent(marginals).unwrap()).unwrap();
//!
//! let series = Lahar::prob_series(&db, "At('joe','office') ; At('joe','coffee')").unwrap();
//! assert!((series[1] - 0.54).abs() < 1e-9);
//! ```
//!
//! Every exact evaluator in this crate is property-tested against the
//! possible-world oracle of `lahar-query` (`prob_series`).

#![warn(missing_docs)]
#![deny(unsafe_code)] // sole exception: the annotated `simd` kernel module
#![allow(clippy::needless_range_loop)] // numeric kernels index flat matrices

mod chain;
pub mod checkpoint;
mod client;
mod engine;
mod error;
pub mod expose;
mod extended;
pub mod failpoint;
mod interval;
pub mod json;
mod kernel;
mod occurrence;
mod pool;
pub mod protocol;
mod reactor;
mod regular;
mod safeplan;
mod sampler;
mod server;
mod session;
#[allow(unsafe_code)] // see the module's unsafe-audit policy
pub mod simd;
mod soa;
mod stats;
#[allow(unsafe_code)] // see the module's unsafe-audit policy
mod sys_poll;
pub mod trace;
mod translate;
pub mod wal;

pub use chain::{ChainEvaluator, DfaCache, DEFAULT_STATE_CAP};
pub use checkpoint::{Checkpoint, CHECKPOINT_VERSION};
pub use client::{LaharClient, RetryPolicy};
pub use engine::{Algorithm, CompileOptions, CompiledQuery, Lahar, QuerySource};
pub use error::EngineError;
pub use expose::{health_report, HealthRenderer, MetricsRenderer, MetricsServer};
pub use extended::{ExtendedRegularEvaluator, DEFAULT_BINDING_CAP};
pub use interval::IntervalChain;
pub use occurrence::{OccurrenceModel, TpTw};
pub use protocol::WireCode;
pub use regular::RegularEvaluator;
pub use safeplan::SafePlanExecutor;
pub use sampler::{Sampler, SamplerConfig};
pub use server::{LaharServer, ServerConfig, ServerConfigBuilder};
pub use session::{Alert, QueryId, RealTimeSession, SessionConfig, SessionConfigBuilder, TickMode};
pub use stats::{EngineStats, LatencySnapshot, QuerySnapshot, StatsSnapshot};
pub use translate::{
    a_bit, build_regex, candidate_values, enumerate_bindings, m_bit, relevant_streams,
    stream_relevant, substitute_cond, substitute_items, symbol_table, symbols_for_event,
};
pub use wal::Durability;
