//! Naïve possible-world sampling with the bitvector optimization
//! (§3.5, Proposition 3.20).
//!
//! The sampler handles *any* query, including the #P-hard ones of §3.4.
//! Shared variables (and variables of non-local predicates) are grounded
//! over their candidate constants; each grounding is a regular query, whose
//! NFA is advanced over `n` sampled worlds *simultaneously*: the occupancy
//! of every automaton state is an `n`-bit vector and a transition is a
//! word-wise `AND` with the per-predicate match mask followed by `OR` into
//! the target's ε-closure — the paper's "simple technique based on
//! bitvectors" that avoids running `n` independent query copies.
//!
//! With `n = ⌈ln(2/δ) / (2ε²)⌉` samples the estimate is within `ε` of
//! `μ(q@t)` with probability at least `1 − δ` (additive Hoeffding bound).

use crate::error::EngineError;
use crate::translate::{build_regex, enumerate_bindings, relevant_streams, substitute_items};
use lahar_automata::{Nfa, Pred, SymbolSet};
use lahar_model::{Database, StreamData};
use lahar_query::{eval_cond, Binding, NormalQuery, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Configuration of the Monte Carlo sampler.
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Additive precision ε.
    pub epsilon: f64,
    /// Failure probability δ.
    pub delta: f64,
    /// RNG seed (the guarantee is over the sampler's own randomness).
    pub seed: u64,
    /// Cap on the number of candidate groundings.
    pub grounding_cap: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        // The paper's defaults: ε = δ = 0.1 (§4.3).
        Self {
            epsilon: 0.1,
            delta: 0.1,
            seed: 0x001a_4a12_u64,
            grounding_cap: 1 << 16,
        }
    }
}

impl SamplerConfig {
    /// The Hoeffding sample count for (ε, δ), rounded up to a multiple of
    /// 64 so bitvector words are fully used.
    pub fn n_samples(&self) -> usize {
        let n = ((2.0 / self.delta).ln() / (2.0 * self.epsilon * self.epsilon)).ceil() as usize;
        n.div_ceil(64) * 64
    }
}

/// One grounded regular query compiled for bulk NFA simulation.
struct Grounding {
    nfa: Nfa,
    /// Indices into the sampler's `streams` list.
    local_streams: Vec<usize>,
    /// Per local stream: symbol set per outcome.
    syms: Vec<Vec<SymbolSet>>,
    /// Per NFA state: occupancy bitvector (one bit per sample).
    occupancy: Vec<Vec<u64>>,
    preds: Vec<Pred>,
}

/// Builds the symbol table for a grounding with the *match/accept split*:
/// the match symbol `m_i` uses the subgoal grounded only on variables
/// already bound earlier in the sequence (successor competition is decided
/// before this item binds its fresh variables — Fig 2), while the accept
/// symbol `a_i` uses the fully grounded pattern.
fn split_symbol_table(
    db: &Database,
    stream: &lahar_model::Stream,
    m_items: &[lahar_query::NormalItem],
    a_items: &[lahar_query::NormalItem],
) -> Result<Vec<SymbolSet>, EngineError> {
    use crate::translate::{a_bit, m_bit, symbol_table as table};
    let tm = table(db, stream, m_items)?;
    let ta = table(db, stream, a_items)?;
    let mut out = vec![SymbolSet::EMPTY; tm.len()];
    for (d, slot) in out.iter_mut().enumerate() {
        for i in 0..m_items.len() {
            if tm[d].contains(m_bit(i)) {
                slot.insert(m_bit(i));
            }
            if ta[d].contains(a_bit(i)) {
                slot.insert(a_bit(i));
            }
        }
    }
    Ok(out)
}

/// The per-grounding item pair: competition (match) items and accept items.
fn split_items(
    items: &[lahar_query::NormalItem],
    binding: &Binding,
) -> Option<(Vec<lahar_query::NormalItem>, Vec<lahar_query::NormalItem>)> {
    use lahar_query::BaseQuery;
    let mut bound_earlier: BTreeSet<Var> = BTreeSet::new();
    let mut m_items = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        // h2-style pattern: a Kleene whose shared variables are not bound
        // before the item — the first unfolding competes unbound while the
        // rest compete bound, which a single symbol pair cannot express.
        if i > 0 {
            if let BaseQuery::Kleene { shared, .. } = &item.base {
                if shared
                    .iter()
                    .any(|v| binding.contains_key(v) && !bound_earlier.contains(v))
                {
                    return None;
                }
            }
        }
        // For Kleene items the shared set V is bound from the first
        // unfolding on, so it also constrains competition (the bail-out
        // above excludes the one shape where the first unfolding competes
        // unbound).
        let kleene_shared: BTreeSet<Var> = match &item.base {
            BaseQuery::Kleene { shared, .. } => shared.iter().copied().collect(),
            BaseQuery::Goal { .. } => BTreeSet::new(),
        };
        let m_binding: Binding = binding
            .iter()
            .filter(|(v, _)| bound_earlier.contains(v) || kleene_shared.contains(v))
            .map(|(v, val)| (*v, *val))
            .collect();
        let mut m_item = substitute_items(std::slice::from_ref(item), &m_binding).remove(0);
        // Competition ignores accept-side predicates.
        m_item.assoc = lahar_query::Cond::True;
        m_items.push(m_item);
        bound_earlier.extend(item.base.free_vars());
    }
    let a_items = substitute_items(items, binding);
    Some((m_items, a_items))
}

/// Per-stream sampling state.
struct StreamState {
    /// Index into `db.streams()`.
    index: usize,
    /// Current outcome per sample.
    current: Vec<u32>,
}

/// A Monte Carlo evaluator for arbitrary event queries.
pub struct Sampler {
    config: SamplerConfig,
    n: usize,
    words: usize,
    groundings: Vec<Grounding>,
    streams: Vec<StreamState>,
    rng: SmallRng,
    t: u32,
    /// Scratch: per-sample symbol set for the grounding being advanced.
    sample_syms: Vec<SymbolSet>,
    /// Scratch: per-predicate match masks.
    masks: Vec<Vec<u64>>,
    /// Per-world satisfaction sets when the semantic fallback is active
    /// (`fallback[sample][t]`): used for query shapes whose successor
    /// competition a single grounded NFA cannot express (a Kleene plus
    /// binding its shared variables mid-sequence, e.g. the paper's `h2`).
    fallback: Option<Vec<Vec<bool>>>,
}

impl Sampler {
    /// Builds a sampler for a (possibly unsafe) normalized query.
    pub fn new(db: &Database, nq: &NormalQuery) -> Result<Self, EngineError> {
        Self::with_config(db, nq, SamplerConfig::default())
    }

    /// Builds a sampler with explicit (ε, δ) and seed.
    pub fn with_config(
        db: &Database,
        nq: &NormalQuery,
        config: SamplerConfig,
    ) -> Result<Self, EngineError> {
        crate::failpoint::check("sampler")?;
        let _span = crate::trace::span("sampler_compile").with("worlds", config.n_samples() as u64);
        // Variables that must be grounded: shared variables plus every
        // variable of a residual (non-local) condition.
        let mut to_ground: BTreeSet<Var> = lahar_query::shared_vars(&nq.items);
        for r in &nq.residual {
            to_ground.extend(r.cond.vars());
        }
        let vars: Vec<Var> = to_ground.into_iter().collect();
        let bindings = enumerate_bindings(db, &nq.items, &vars, config.grounding_cap)?;

        let n = config.n_samples();
        let words = n / 64;
        let mut stream_of_db_index: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut streams: Vec<StreamState> = Vec::new();
        let mut groundings = Vec::new();

        let mut needs_semantic_fallback = false;
        'bindings: for binding in &bindings {
            // A grounding is viable only if every residual conjunct holds
            // under it (they are fully ground after substitution).
            let residual_ok = nq.residual.iter().try_fold(true, |acc, r| {
                let c = crate::translate::substitute_cond(&r.cond, binding);
                eval_cond(db, &c, &Binding::new()).map(|ok| acc && ok)
            })?;
            if !residual_ok {
                continue;
            }
            let (m_items, a_items) = match split_items(&nq.items, binding) {
                Some(pair) => pair,
                None => {
                    needs_semantic_fallback = true;
                    break 'bindings;
                }
            };
            let nfa = Nfa::compile(&build_regex(&a_items));
            // Competition can involve streams the accept pattern excludes,
            // so relevance is judged on the match items.
            let rel = relevant_streams(db, &m_items);
            let mut local_streams = Vec::with_capacity(rel.len());
            let mut syms = Vec::with_capacity(rel.len());
            for si in rel {
                let local = *stream_of_db_index.entry(si).or_insert_with(|| {
                    streams.push(StreamState {
                        index: si,
                        current: vec![0; n],
                    });
                    streams.len() - 1
                });
                local_streams.push(local);
                syms.push(split_symbol_table(
                    db,
                    &db.streams()[si],
                    &m_items,
                    &a_items,
                )?);
            }
            let mut occupancy = vec![vec![0u64; words]; nfa.n_states()];
            for s in nfa.initial().iter() {
                occupancy[s].fill(u64::MAX);
            }
            let preds = nfa.distinct_preds();
            groundings.push(Grounding {
                nfa,
                local_streams,
                syms,
                occupancy,
                preds,
            });
        }

        let mut rng = SmallRng::seed_from_u64(config.seed);
        let fallback = if needs_semantic_fallback {
            // Run n full copies of the query on sampled worlds — the
            // paper's unoptimized sampler — for shapes the grounded-NFA
            // simulation cannot express.
            let query = nq.to_query();
            let horizon = db.horizon() as usize;
            let mut sat = Vec::with_capacity(n);
            for _ in 0..n {
                let world = db.sample_world(&mut rng);
                let results =
                    lahar_query::eval_query(db, &world, &query).map_err(EngineError::Query)?;
                let mut hit = vec![false; horizon];
                for e in results {
                    if (e.t as usize) < horizon {
                        hit[e.t as usize] = true;
                    }
                }
                sat.push(hit);
            }
            groundings.clear();
            streams.clear();
            Some(sat)
        } else {
            None
        };

        Ok(Self {
            n,
            words,
            groundings,
            streams,
            rng,
            t: 0,
            sample_syms: vec![SymbolSet::EMPTY; n],
            masks: Vec::new(),
            config,
            fallback,
        })
    }

    /// The configured sample count.
    pub fn n_samples(&self) -> usize {
        self.n
    }

    /// Number of viable groundings being simulated.
    pub fn n_groundings(&self) -> usize {
        self.groundings.len()
    }

    /// The configuration in use.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// Consumes one timestep: samples every relevant stream's value in each
    /// of the `n` worlds, advances all automata, and returns the estimate
    /// of `μ(q@t)`.
    pub fn step(&mut self, db: &Database) -> f64 {
        let _span = crate::trace::span("sampler_run")
            .with("t", u64::from(self.t))
            .with("worlds", self.n as u64);
        if let Some(sat) = &self.fallback {
            let t = self.t as usize;
            self.t += 1;
            let hits = sat
                .iter()
                .filter(|h| h.get(t).copied().unwrap_or(false))
                .count();
            return hits as f64 / self.n as f64;
        }
        // 1. Sample stream outcomes for each world.
        self.sample_streams(db);

        // 2. Advance every grounding's automaton in bulk.
        let mut accepted = vec![0u64; self.words];
        for g in &mut self.groundings {
            // Per-sample symbol set.
            self.sample_syms.fill(SymbolSet::EMPTY);
            for (gi, &local) in g.local_streams.iter().enumerate() {
                let current = &self.streams[local].current;
                let table = &g.syms[gi];
                for (slot, &d) in self.sample_syms.iter_mut().zip(current) {
                    *slot = slot.union(table[d as usize]);
                }
            }
            // Per-predicate match masks.
            self.masks.resize(g.preds.len(), Vec::new());
            for (pi, pred) in g.preds.iter().enumerate() {
                let mask = &mut self.masks[pi];
                mask.clear();
                mask.resize(self.words, 0);
                for (i, &sym) in self.sample_syms.iter().enumerate() {
                    if pred.matches(sym) {
                        mask[i / 64] |= 1u64 << (i % 64);
                    }
                }
            }
            // Transition: B'[closure(tgt)] |= B[src] & mask[pred].
            let mut next = vec![vec![0u64; self.words]; g.nfa.n_states()];
            for s in 0..g.nfa.n_states() {
                let src = &g.occupancy[s];
                if src.iter().all(|&w| w == 0) {
                    continue;
                }
                for &(pred, tgt) in g.nfa.edges(s) {
                    let pi = g.preds.iter().position(|&p| p == pred).expect("known pred");
                    let mask = &self.masks[pi];
                    for u in g.nfa.closure(tgt).iter() {
                        for w in 0..self.words {
                            next[u][w] |= src[w] & mask[w];
                        }
                    }
                }
            }
            g.occupancy = next;
            // Acceptance for this grounding at t.
            for s in g.nfa.accepting_states().iter() {
                for w in 0..self.words {
                    accepted[w] |= g.occupancy[s][w];
                }
            }
        }
        self.t += 1;
        let hits: u32 = accepted.iter().map(|w| w.count_ones()).sum();
        hits as f64 / self.n as f64
    }

    /// Estimates `μ(q@t)` for every `t` in `0..horizon`.
    pub fn prob_series(mut self, db: &Database, horizon: u32) -> Vec<f64> {
        (0..horizon).map(|_| self.step(db)).collect()
    }

    /// Scalar reference implementation: each sampled world advances its own
    /// NFA state set one at a time, with no bitvector word parallelism.
    /// Exists to quantify the bitvector optimization (ablation bench); the
    /// estimates are identically distributed to [`Sampler::step`]'s.
    pub fn prob_series_scalar(mut self, db: &Database, horizon: u32) -> Vec<f64> {
        use lahar_automata::BitSet;
        if self.fallback.is_some() {
            return self.prob_series(db, horizon);
        }
        // Per grounding, per sample: an NFA state set.
        let mut states: Vec<Vec<BitSet>> = self
            .groundings
            .iter()
            .map(|g| vec![g.nfa.initial().clone(); self.n])
            .collect();
        let mut out = Vec::with_capacity(horizon as usize);
        let mut scratch: Option<BitSet> = None;
        for _ in 0..horizon {
            // Reuse step()'s stream sampling by inlining the same logic.
            self.sample_streams(db);
            let mut hits = 0usize;
            for sample in 0..self.n {
                let mut accepted = false;
                for (gi, g) in self.groundings.iter().enumerate() {
                    let mut sym = SymbolSet::EMPTY;
                    for (li, &local) in g.local_streams.iter().enumerate() {
                        let d = self.streams[local].current[sample] as usize;
                        sym = sym.union(g.syms[li][d]);
                    }
                    let cur = &mut states[gi][sample];
                    let mut next = scratch
                        .take()
                        .filter(|b| b.capacity() == g.nfa.n_states())
                        .unwrap_or_else(|| BitSet::new(g.nfa.n_states()));
                    g.nfa.step_into(cur, sym, &mut next);
                    std::mem::swap(cur, &mut next);
                    scratch = Some(next);
                    accepted |= g.nfa.is_accepting(cur);
                }
                hits += accepted as usize;
            }
            self.t += 1;
            out.push(hits as f64 / self.n as f64);
        }
        out
    }

    /// Draws each relevant stream's value for every sampled world at the
    /// current timestep.
    fn sample_streams(&mut self, db: &Database) {
        for state in &mut self.streams {
            let stream = &db.streams()[state.index];
            let dom = stream.domain().len();
            match stream.data() {
                StreamData::Independent(_) => {
                    let marginal = stream.marginal_at(self.t);
                    let probs = marginal.probs();
                    for slot in state.current.iter_mut() {
                        *slot = sample_from(probs, &mut self.rng) as u32;
                    }
                }
                StreamData::Markov { initial, cpts } => {
                    if self.t == 0 {
                        let probs = initial.probs();
                        for slot in state.current.iter_mut() {
                            *slot = sample_from(probs, &mut self.rng) as u32;
                        }
                    } else {
                        match cpts.get(self.t as usize - 1) {
                            Some(cpt) => {
                                let mut col = vec![0.0; dom];
                                for slot in state.current.iter_mut() {
                                    let prev = *slot as usize;
                                    for (d2, c) in col.iter_mut().enumerate() {
                                        *c = cpt.get(d2, prev);
                                    }
                                    *slot = sample_from(&col, &mut self.rng) as u32;
                                }
                            }
                            None => state.current.fill(dom as u32 - 1),
                        }
                    }
                }
            }
        }
    }
}

/// Samples an index from a probability vector.
fn sample_from<R: Rng>(probs: &[f64], rng: &mut R) -> usize {
    let mut u = rng.gen::<f64>();
    for (i, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahar_model::StreamBuilder;
    use lahar_query::{parse_query, prob_series, NormalQuery};

    fn assert_close_to_oracle(db: &Database, src: &str, tol: f64) {
        let q = parse_query(db.interner(), src).unwrap();
        let nq = NormalQuery::from_query(&q);
        let config = SamplerConfig {
            epsilon: 0.02,
            delta: 0.01,
            seed: 7,
            ..Default::default()
        };
        let sampler = Sampler::with_config(db, &nq, config).unwrap();
        let got = sampler.prob_series(db, db.horizon());
        let want = prob_series(db, &q).unwrap();
        for (t, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() < tol,
                "{src} at t={t}: sampler {g} vs oracle {w}"
            );
        }
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        let i = db.interner().clone();
        for (p, ps) in [("joe", 0.6), ("sue", 0.4)] {
            let b = StreamBuilder::new(&i, "At", &[p], &["a", "c"]);
            let ms = vec![
                b.marginal(&[("a", ps)]).unwrap(),
                b.marginal(&[("a", 0.2), ("c", 0.5)]).unwrap(),
                b.marginal(&[("c", 0.7)]).unwrap(),
            ];
            db.add_stream(b.independent(ms).unwrap()).unwrap();
        }
        db
    }

    fn markov_db() -> Database {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a", "c"]);
        let init = b.marginal(&[("a", 0.6), ("c", 0.1)]).unwrap();
        let cpt = b
            .cpt(&[("a", "a", 0.6), ("a", "c", 0.3), ("c", "c", 0.8)])
            .unwrap();
        db.add_stream(b.markov(init, vec![cpt.clone(), cpt]).unwrap())
            .unwrap();
        db
    }

    #[test]
    fn sample_count_follows_hoeffding() {
        let c = SamplerConfig {
            epsilon: 0.1,
            delta: 0.1,
            ..Default::default()
        };
        // ln(20)/0.02 ≈ 149.8 → 192 after rounding to words.
        assert_eq!(c.n_samples(), 192);
        let tight = SamplerConfig {
            epsilon: 0.01,
            delta: 0.01,
            ..Default::default()
        };
        assert!(tight.n_samples() >= 26_000);
    }

    #[test]
    fn regular_query_estimate_matches_oracle() {
        assert_close_to_oracle(&db(), "At('joe','a') ; At('joe','c')", 0.03);
    }

    #[test]
    fn markov_sampling_matches_oracle() {
        assert_close_to_oracle(&markov_db(), "At('joe','a') ; At('joe','c')", 0.03);
    }

    #[test]
    fn extended_query_grounds_shared_variables() {
        let db = db();
        let q = parse_query(db.interner(), "At(p,'a') ; At(p,'c')").unwrap();
        let nq = NormalQuery::from_query(&q);
        let s = Sampler::new(&db, &nq).unwrap();
        assert_eq!(s.n_groundings(), 2);
        assert_close_to_oracle(&db, "At(p,'a') ; At(p,'c')", 0.03);
    }

    #[test]
    fn unsafe_h1_style_query_is_estimated() {
        // σ_{x=y}(At(x,'a'); At(y,'c')) has a non-local predicate; the
        // sampler grounds x and y jointly and drops bindings violating it.
        let db = db();
        assert_close_to_oracle(&db, "sigma[x = y](At(x,'a') ; At(y,'c'))", 0.03);
    }

    #[test]
    fn kleene_with_shared_var_is_estimated() {
        // h2-style: unsafe, sampler-only.
        let db = db();
        assert_close_to_oracle(&db, "At('joe','a') ; (At(p, 'c'))+{p}", 0.03);
    }

    #[test]
    fn estimates_are_valid_probabilities() {
        let db = markov_db();
        let q = parse_query(db.interner(), "(At('joe', l))+{}").unwrap();
        let nq = NormalQuery::from_query(&q);
        let s = Sampler::new(&db, &nq).unwrap();
        for p in s.prob_series(&db, db.horizon()) {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
