//! Occurrence statistics of a base query: the latest-precursor /
//! latest-witness distributions used by the `seq` operator (§3.3.1, Fig 7).
//!
//! For a grounded base item `bq`, an *occurrence* at timestep `t` is the
//! event "some stream event at `t` matches `bq`". The `seq` factorization
//! (Eq. 3) needs, for a window `[ts, tf]`:
//!
//! * `P[Tp = a]` — the latest occurrence in `[0, ts)` is at `a`
//!   (`a = None` when there is none), and
//! * `P[Tw = b]` — the latest occurrence in `[ts, tf]` is at `b`.
//!
//! With per-timestep independence inside the item's streams (the paper's
//! assumption) `Tp ⊥ Tw` and both have closed products. For a **single
//! Markovian stream** we additionally compute the exact *joint*
//! `P[Tp = a ∧ Tw = b]` by dynamic programming over the chain — an
//! extension the paper's simplified presentation leaves out (Tp and Tw are
//! correlated through the chain). Multiple Markovian streams fall back to
//! the sampler at the engine level.

use crate::error::EngineError;
use crate::translate::{relevant_streams, symbol_table};
use lahar_model::Database;
use lahar_query::{NormalItem, QueryError};

/// Joint distribution of (latest precursor, latest witness) for one
/// window. Row `a + 1` is `Tp = a` (row 0 is `Tp = None`); column
/// `b − ts` is `Tw = b`.
#[derive(Debug, Clone)]
pub struct TpTw {
    /// Window start.
    pub ts: u32,
    /// Window end (inclusive).
    pub tf: u32,
    /// `(ts + 1) × (tf − ts + 1)` joint probabilities, row-major.
    joint: Vec<f64>,
}

impl TpTw {
    /// `P[Tp = a ∧ Tw = b]`; `a = None` is the no-precursor case.
    pub fn prob(&self, a: Option<u32>, b: u32) -> f64 {
        let row = match a {
            None => 0,
            Some(a) => a as usize + 1,
        };
        let col = (b - self.ts) as usize;
        self.joint[row * ((self.tf - self.ts) as usize + 1) + col]
    }

    /// Iterates over `(a, b, p)` entries with `p > 0`.
    pub fn iter(&self) -> impl Iterator<Item = (Option<u32>, u32, f64)> + '_ {
        let cols = (self.tf - self.ts) as usize + 1;
        self.joint.iter().enumerate().filter_map(move |(i, &p)| {
            if p == 0.0 {
                return None;
            }
            let row = i / cols;
            let col = (i % cols) as u32;
            let a = if row == 0 { None } else { Some(row as u32 - 1) };
            Some((a, self.ts + col, p))
        })
    }
}

/// How the occurrence process is modeled.
#[derive(Debug)]
enum Model {
    /// All relevant streams independent: per-timestep occurrence
    /// probabilities `f[t] = P[∃ match at t]`.
    Independent { f: Vec<f64> },
    /// One Markovian stream: the chain itself plus the per-outcome match
    /// mask.
    MarkovSingle {
        stream_idx: usize,
        matches: Vec<bool>,
    },
}

/// Occurrence model for one grounded base item.
#[derive(Debug)]
pub struct OccurrenceModel {
    model: Model,
    horizon: u32,
}

impl OccurrenceModel {
    /// Like [`OccurrenceModel::new`] but *forcing* the paper's
    /// per-timestep-independence treatment even on Markovian streams
    /// (marginals only). Used by the ablation bench to quantify the error
    /// the exact joint (Tp, Tw) extension removes.
    pub fn new_independence_approx(db: &Database, item: &NormalItem) -> Result<Self, EngineError> {
        let mut model = Self::new(db, item)?;
        if let Model::MarkovSingle {
            stream_idx,
            matches,
        } = &model.model
        {
            let stream = &db.streams()[*stream_idx];
            let f = stream
                .all_marginals()
                .iter()
                .map(|m| {
                    matches
                        .iter()
                        .enumerate()
                        .filter(|(_, &hit)| hit)
                        .map(|(d, _)| m.prob(d))
                        .sum()
                })
                .collect();
            model.model = Model::Independent { f };
        }
        Ok(model)
    }

    /// Builds the model; fails when the item carries an associated (outer)
    /// predicate — the Eq.-3 factorization is only exact when every
    /// occurrence is accepting — or when several Markovian streams are
    /// relevant (exact joint not implemented; the engine falls back to
    /// sampling).
    pub fn new(db: &Database, item: &NormalItem) -> Result<Self, EngineError> {
        if !item.assoc.is_true() {
            return Err(EngineError::Query(QueryError::NotInClass(
                "seq with an associated predicate on the base query (falls back to sampling)"
                    .to_owned(),
            )));
        }
        let items = std::slice::from_ref(item);
        let rel = relevant_streams(db, items);
        let horizon = db.horizon();
        let markov: Vec<usize> = rel
            .iter()
            .copied()
            .filter(|&si| db.streams()[si].is_markov())
            .collect();
        if markov.len() > 1 || (markov.len() == 1 && rel.len() > 1) {
            return Err(EngineError::Query(QueryError::NotInClass(
                "seq base over multiple correlated streams (falls back to sampling)".to_owned(),
            )));
        }
        if markov.len() == 1 {
            let si = markov[0];
            let table = symbol_table(db, &db.streams()[si], items)?;
            // An outcome matches when it produces the item's m-symbol.
            let matches = table.iter().map(|s| !s.is_empty()).collect();
            return Ok(Self {
                model: Model::MarkovSingle {
                    stream_idx: si,
                    matches,
                },
                horizon,
            });
        }
        // Independent case: combine per-stream match marginals.
        let mut f = vec![0.0f64; horizon as usize];
        let mut none = vec![1.0f64; horizon as usize];
        for &si in &rel {
            let stream = &db.streams()[si];
            let table = symbol_table(db, stream, items)?;
            for (t, slot) in none.iter_mut().enumerate() {
                let marginal = stream.marginal_at(t as u32);
                let p_match: f64 = table
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.is_empty())
                    .map(|(d, _)| marginal.prob(d))
                    .sum();
                *slot *= 1.0 - p_match;
            }
        }
        for (slot, n) in f.iter_mut().zip(none) {
            *slot = 1.0 - n;
        }
        Ok(Self {
            model: Model::Independent { f },
            horizon,
        })
    }

    /// Occurrence probability `P[∃ match at t]` (marginal).
    pub fn occurrence_at(&self, db: &Database, t: u32) -> f64 {
        match &self.model {
            Model::Independent { f } => f.get(t as usize).copied().unwrap_or(0.0),
            Model::MarkovSingle {
                stream_idx,
                matches,
            } => {
                let m = db.streams()[*stream_idx].marginal_at(t);
                matches
                    .iter()
                    .enumerate()
                    .filter(|(_, &hit)| hit)
                    .map(|(d, _)| m.prob(d))
                    .sum()
            }
        }
    }

    /// The joint (Tp, Tw) distribution for a window.
    pub fn tp_tw(&self, db: &Database, ts: u32, tf: u32) -> TpTw {
        debug_assert!(ts <= tf);
        let tf = tf.min(self.horizon.saturating_sub(1).max(ts));
        match &self.model {
            Model::Independent { f } => self.tp_tw_independent(f, ts, tf),
            Model::MarkovSingle {
                stream_idx,
                matches,
            } => self.tp_tw_markov(db, *stream_idx, matches, ts, tf),
        }
    }

    fn tp_tw_independent(&self, f: &[f64], ts: u32, tf: u32) -> TpTw {
        let get = |t: u32| f.get(t as usize).copied().unwrap_or(0.0);
        // P[Tp = a]: occurrence at a, none in (a, ts).
        let mut tp = vec![0.0; ts as usize + 1];
        {
            let mut none_after = 1.0;
            for a in (0..ts).rev() {
                // none_after = P[no occ in (a, ts)].
                tp[a as usize + 1] = get(a) * none_after;
                none_after *= 1.0 - get(a);
            }
            tp[0] = none_after; // no occurrence in [0, ts) at all
        }
        // P[Tw = b]: occurrence at b, none in (b, tf].
        let mut tw = vec![0.0; (tf - ts) as usize + 1];
        {
            let mut none_after = 1.0;
            for b in (ts..=tf).rev() {
                tw[(b - ts) as usize] = get(b) * none_after;
                none_after *= 1.0 - get(b);
            }
        }
        let cols = tw.len();
        let mut joint = vec![0.0; tp.len() * cols];
        for (ai, &pa) in tp.iter().enumerate() {
            if pa == 0.0 {
                continue;
            }
            for (bi, &pb) in tw.iter().enumerate() {
                joint[ai * cols + bi] = pa * pb;
            }
        }
        TpTw { ts, tf, joint }
    }

    /// Exact joint for a single Markov stream.
    ///
    /// Forward vectors `v_a(d) = P[Tp = a ∧ X_{ts−1} = d]` are built by
    /// masked propagation from each candidate `a`; conditional witness
    /// weights `u_b(d) = P[Tw = b | X_{ts−1} = d]` come from a free forward
    /// sweep combined with a masked backward sweep `ρ_b(d) =
    /// P[no match in (b, tf] | X_b = d]`.
    fn tp_tw_markov(
        &self,
        db: &Database,
        stream_idx: usize,
        matches: &[bool],
        ts: u32,
        tf: u32,
    ) -> TpTw {
        let stream = &db.streams()[stream_idx];
        let n = stream.domain().len();
        let cpt_at = |t: u32| stream.cpt_at(t); // transition t -> t+1
        let marginals = stream.all_marginals();
        let marginal = |t: u32| -> Vec<f64> {
            marginals
                .get(t as usize)
                .map(|m| m.probs().to_vec())
                .unwrap_or_else(|| {
                    let mut v = vec![0.0; n];
                    v[n - 1] = 1.0;
                    v
                })
        };

        // Backward: rho[t][d] = P[no match in (t, tf] | X_t = d].
        let mut rho = vec![vec![1.0f64; n]; (tf + 1) as usize + 1];
        for t in (0..tf).rev() {
            let cpt = cpt_at(t);
            for d in 0..n {
                let mut acc = 0.0;
                for d2 in 0..n {
                    if !matches[d2] || d2 >= matches.len() {
                        acc += cpt.get(d2, d) * rho[(t + 1) as usize][d2];
                    }
                }
                rho[t as usize][d] = acc;
            }
        }

        // Forward (precursor side): for each a, propagate
        // P[X_a = d ∧ d matches] through non-matching outcomes to ts − 1.
        // v[a + 1] = vector at time ts − 1 (or at "a" itself when ts == 0 —
        // impossible since a < ts). Row 0: no occurrence in [0, ts).
        let rows = ts as usize + 1;
        let cols = (tf - ts) as usize + 1;
        let mut joint = vec![0.0; rows * cols];

        // Conditional witness weights u_b(d_prev at ts−1):
        //   free propagation ts..b−1, match at b, masked (b, tf].
        // free[t][d_prev][d] built incrementally as vectors per d_prev.
        // We compute u_b for all b in one sweep per starting state.
        let compute_u = |init: &[f64]| -> Vec<f64> {
            // init: distribution over X_{ts-1} (or the initial marginal
            // when ts == 0, representing X_{ts} directly — handled below).
            // Returns per-b: P[init ∧ Tw = b].
            let mut out = vec![0.0; cols];
            let mut cur = init.to_vec();
            // Step into each b = ts..tf: at time b the value must match,
            // then survive masked to tf.
            for b in ts..=tf {
                let at_b: Vec<f64> = if b == 0 {
                    // cur already represents X_0's distribution.
                    cur.clone()
                } else {
                    let cpt = cpt_at(b - 1);
                    let mut next = vec![0.0; n];
                    for d in 0..n {
                        if cur[d] == 0.0 {
                            continue;
                        }
                        for d2 in 0..n {
                            next[d2] += cpt.get(d2, d) * cur[d];
                        }
                    }
                    next
                };
                let mut p = 0.0;
                for d in 0..n {
                    if matches[d] {
                        p += at_b[d] * rho[b as usize][d];
                    }
                }
                out[(b - ts) as usize] = p;
                cur = at_b;
            }
            out
        };

        if ts == 0 {
            // No precursor range: Tp = None with probability 1; the chain
            // starts fresh at t = 0.
            let init = marginal(0);
            // compute_u expects X_{ts-1}; emulate by treating init as the
            // already-stepped-into distribution for b = 0.
            let u = compute_u_with_direct_start(&init, n, ts, tf, &cpt_at, matches, &rho);
            for (bi, &p) in u.iter().enumerate() {
                joint[bi] = p;
            }
            return TpTw { ts, tf, joint };
        }

        // Row 0: no occurrence in [0, ts): masked propagation from t = 0.
        {
            let mut cur = marginal(0);
            for (d, slot) in cur.iter_mut().enumerate() {
                if matches[d] {
                    *slot = 0.0;
                }
            }
            for t in 0..ts - 1 {
                let cpt = cpt_at(t);
                let mut next = vec![0.0; n];
                for d in 0..n {
                    if cur[d] == 0.0 {
                        continue;
                    }
                    for d2 in 0..n {
                        if !matches[d2] {
                            next[d2] += cpt.get(d2, d) * cur[d];
                        }
                    }
                }
                cur = next;
            }
            let u = compute_u(&cur);
            for (bi, &p) in u.iter().enumerate() {
                joint[bi] = p;
            }
        }

        // Rows a = 0 .. ts-1: match at a, masked to ts − 1.
        for a in 0..ts {
            let mut cur = marginal(a);
            for (d, slot) in cur.iter_mut().enumerate() {
                if !matches[d] {
                    *slot = 0.0;
                }
            }
            for t in a..ts - 1 {
                let cpt = cpt_at(t);
                let mut next = vec![0.0; n];
                for d in 0..n {
                    if cur[d] == 0.0 {
                        continue;
                    }
                    for d2 in 0..n {
                        if !matches[d2] {
                            next[d2] += cpt.get(d2, d) * cur[d];
                        }
                    }
                }
                cur = next;
            }
            let u = compute_u(&cur);
            for (bi, &p) in u.iter().enumerate() {
                joint[(a as usize + 1) * cols + bi] = p;
            }
        }

        TpTw { ts, tf, joint }
    }
}

/// `compute_u` variant for `ts == 0`, where `init` is already the
/// distribution of `X_0` (no step into `b = 0`).
fn compute_u_with_direct_start(
    init: &[f64],
    n: usize,
    ts: u32,
    tf: u32,
    cpt_at: &dyn Fn(u32) -> lahar_model::Cpt,
    matches: &[bool],
    rho: &[Vec<f64>],
) -> Vec<f64> {
    let cols = (tf - ts) as usize + 1;
    let mut out = vec![0.0; cols];
    let mut cur = init.to_vec();
    for b in ts..=tf {
        if b > ts {
            let cpt = cpt_at(b - 1);
            let mut next = vec![0.0; n];
            for d in 0..n {
                if cur[d] == 0.0 {
                    continue;
                }
                for d2 in 0..n {
                    next[d2] += cpt.get(d2, d) * cur[d];
                }
            }
            cur = next;
        }
        let mut p = 0.0;
        for d in 0..n {
            if matches[d] {
                p += cur[d] * rho[b as usize][d];
            }
        }
        out[(b - ts) as usize] = p;
    }
    out
}

/// Marginal of an occurrence-pattern distribution used in tests: but kept
/// private; see unit tests below.
#[cfg(test)]
mod tests {
    use super::*;
    use lahar_model::{Database, StreamBuilder};
    use lahar_query::{parse_query, NormalQuery};

    fn item(db: &Database, src: &str) -> NormalItem {
        let q = parse_query(db.interner(), src).unwrap();
        NormalQuery::from_query(&q).items.remove(0)
    }

    fn indep_db() -> Database {
        let mut db = Database::new();
        db.declare_stream("R", &["k"], &["v"]).unwrap();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "R", &["k1"], &["x", "y"]);
        let ms = vec![
            b.marginal(&[("x", 0.5)]).unwrap(),
            b.marginal(&[("x", 0.3), ("y", 0.3)]).unwrap(),
            b.marginal(&[("y", 0.8)]).unwrap(),
            b.marginal(&[("x", 0.1)]).unwrap(),
        ];
        db.add_stream(b.independent(ms).unwrap()).unwrap();
        db
    }

    fn markov_db() -> Database {
        let mut db = Database::new();
        db.declare_stream("R", &["k"], &["v"]).unwrap();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "R", &["k1"], &["x", "y"]);
        let init = b.marginal(&[("x", 0.4), ("y", 0.3)]).unwrap();
        let cpt = b
            .cpt(&[
                ("x", "x", 0.6),
                ("x", "y", 0.2),
                ("y", "y", 0.5),
                ("y", "x", 0.3),
            ])
            .unwrap();
        db.add_stream(b.markov(init, vec![cpt.clone(), cpt.clone(), cpt]).unwrap())
            .unwrap();
        db
    }

    /// Brute-force (Tp, Tw) joint from world enumeration.
    fn oracle_tp_tw(
        db: &Database,
        item: &NormalItem,
        ts: u32,
        tf: u32,
    ) -> Vec<(Option<u32>, u32, f64)> {
        use std::collections::HashMap;
        let items = std::slice::from_ref(item);
        let mut acc: HashMap<(Option<u32>, Option<u32>), f64> = HashMap::new();
        for (world, p) in db.enumerate_worlds() {
            let occ = |t: u32| -> bool {
                world.events_at(t).any(|e| {
                    crate::translate::symbols_for_event(db, e, items)
                        .map(|s| !s.is_empty())
                        .unwrap_or(false)
                })
            };
            let tp = (0..ts).rev().find(|&a| occ(a));
            let tw = (ts..=tf).rev().find(|&b| occ(b));
            *acc.entry((tp, tw)).or_insert(0.0) += p;
        }
        acc.into_iter()
            .filter_map(|((a, b), p)| b.map(|b| (a, b, p)))
            .collect()
    }

    fn assert_joint_matches(db: &Database, src: &str, ts: u32, tf: u32) {
        let item = item(db, src);
        let model = OccurrenceModel::new(db, &item).unwrap();
        let got = model.tp_tw(db, ts, tf);
        let want = oracle_tp_tw(db, &item, ts, tf);
        let mut total = 0.0;
        for (a, b, p) in &want {
            let g = got.prob(*a, *b);
            assert!(
                (g - p).abs() < 1e-9,
                "Tp={a:?} Tw={b}: got {g}, want {p} (window [{ts},{tf}])"
            );
            total += p;
        }
        // Every positive entry of the model appears in the oracle.
        let got_total: f64 = got.iter().map(|(_, _, p)| p).sum();
        assert!((got_total - total).abs() < 1e-9);
    }

    #[test]
    fn independent_joint_matches_oracle() {
        let db = indep_db();
        for (ts, tf) in [(0, 3), (1, 3), (2, 3), (2, 2), (1, 2)] {
            assert_joint_matches(&db, "R(k, 'x')", ts, tf);
        }
    }

    #[test]
    fn markov_joint_matches_oracle() {
        let db = markov_db();
        for (ts, tf) in [(0, 3), (1, 3), (2, 3), (2, 2), (1, 2), (3, 3)] {
            assert_joint_matches(&db, "R(k, 'x')", ts, tf);
        }
    }

    #[test]
    fn occurrence_marginal_matches_stream_marginal() {
        let db = indep_db();
        let item = item(&db, "R(k, 'x')");
        let model = OccurrenceModel::new(&db, &item).unwrap();
        assert!((model.occurrence_at(&db, 0) - 0.5).abs() < 1e-12);
        assert!((model.occurrence_at(&db, 2) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn assoc_predicate_is_rejected() {
        let mut db = indep_db();
        db.declare_relation("Good", 1).unwrap();
        let q = parse_query(db.interner(), "sigma[Good(v)](R(k, v))").unwrap();
        let item = NormalQuery::from_query(&q).items.remove(0);
        assert!(!item.assoc.is_true());
        assert!(OccurrenceModel::new(&db, &item).is_err());
    }

    #[test]
    fn tw_marginal_sums_to_some_witness_probability() {
        let db = markov_db();
        let item = item(&db, "R(k, 'x')");
        let model = OccurrenceModel::new(&db, &item).unwrap();
        let joint = model.tp_tw(&db, 1, 3);
        let total: f64 = joint.iter().map(|(_, _, p)| p).sum();
        // Equals P[some occurrence in [1, 3]] — cross-check via oracle.
        let mut want = 0.0;
        let items = std::slice::from_ref(&item);
        for (world, p) in db.enumerate_worlds() {
            let any = (1..=3).any(|t| {
                world.events_at(t).any(|e| {
                    crate::translate::symbols_for_event(&db, e, items)
                        .map(|s| !s.is_empty())
                        .unwrap_or(false)
                })
            });
            if any {
                want += p;
            }
        }
        assert!((total - want).abs() < 1e-9, "{total} vs {want}");
    }
}
