//! The process-shared worker pool behind every parallel tick.
//!
//! Earlier revisions gave each [`crate::RealTimeSession`] its own
//! one-thread-per-core pool, which made thread count scale with session
//! count: a `lahar serve` process hosting `n` sessions under load ran
//! `n × n_cores` stepping threads. This module replaces those per-session
//! pools with one lazily-spawned, process-wide pool of
//! `available_parallelism()` threads (named `lahar-pool-{i}`) that every
//! session — offline or hosted — submits epoch jobs to.
//!
//! The pool is deliberately minimal: a single MPMC work queue (an
//! `mpsc` receiver shared behind a mutex — the lock is held only while
//! *taking* a task, never while running one) of boxed closures. Fault
//! isolation is the submitter's job: sessions send replies over a
//! per-epoch channel, so a late or panicked job's reply lands on a dead
//! receiver instead of corrupting a later epoch. The pool itself only
//! guarantees that a panicking task never takes a shared thread down
//! with it.
//!
//! Each pool thread owns a [`SymCache`] in thread-local storage
//! (see [`with_sym_cache`]), reused — cleared, not freed — across all
//! jobs that thread runs, exactly like the per-worker caches of the old
//! per-session pools.

use crate::kernel::SymCache;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};

type Task = Box<dyn FnOnce() + Send + 'static>;

struct SharedPool {
    submit: Sender<Task>,
    threads: usize,
    /// Total tasks ever submitted (monotone; exposed as
    /// `lahar_pool_tasks_total`).
    tasks: AtomicU64,
}

static POOL: OnceLock<SharedPool> = OnceLock::new();

fn shared() -> &'static SharedPool {
    POOL.get_or_init(|| {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let (submit, rx) = channel::<Task>();
        let rx = Arc::new(Mutex::new(rx));
        for index in 0..threads {
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("lahar-pool-{index}"))
                .spawn(move || worker(&rx))
                .expect("spawning a shared pool thread");
        }
        SharedPool {
            submit,
            threads,
            tasks: AtomicU64::new(0),
        }
    })
}

fn worker(rx: &Mutex<Receiver<Task>>) {
    loop {
        let task = {
            // A task that panicked while holding the lock poisons it;
            // the receiver itself is still fine, so take it back.
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            match guard.recv() {
                Ok(task) => task,
                Err(_) => return,
            }
        };
        // The thread is shared by every session in the process: a
        // panicking job must not take it down. The submitter observes
        // the fault through its own reply channel, not through here.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
    }
}

/// Submits a task to the shared pool, spawning its threads on first use.
pub(crate) fn spawn(task: impl FnOnce() + Send + 'static) {
    let pool = shared();
    pool.tasks.fetch_add(1, Ordering::Relaxed);
    pool.submit
        .send(Box::new(task))
        .expect("shared pool threads never exit while the process lives");
}

/// `(threads, tasks ever submitted)` — `(0, 0)` until the pool's first
/// use. Reading never forces the pool to spawn.
pub(crate) fn stats() -> (usize, u64) {
    match POOL.get() {
        Some(pool) => (pool.threads, pool.tasks.load(Ordering::Relaxed)),
        None => (0, 0),
    }
}

thread_local! {
    /// Per-pool-thread symbol-distribution cache (every thread also gets
    /// one lazily, which keeps `with_sym_cache` correct off-pool too).
    static SYM_CACHE: RefCell<SymCache> = RefCell::new(SymCache::new());
}

/// Runs `f` with the calling thread's cached [`SymCache`].
pub(crate) fn with_sym_cache<R>(f: impl FnOnce(&mut SymCache) -> R) -> R {
    SYM_CACHE.with(|cache| f(&mut cache.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn pool_runs_tasks_and_survives_panics() {
        let (tx, rx) = channel();
        let panic_tx = tx.clone();
        super::spawn(move || {
            let _ = panic_tx; // moved in, dropped on unwind
            panic!("injected pool-task panic");
        });
        super::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 42);
        let (threads, tasks) = super::stats();
        assert!(threads >= 1);
        assert!(tasks >= 2);
    }
}
