//! Streaming evaluation of Regular Queries (§3.1, Theorem 3.3).

use crate::chain::ChainEvaluator;
use crate::error::EngineError;
use lahar_model::Database;
use lahar_query::{is_regular, NormalQuery, QueryError};

/// Exact streaming evaluator for a regular query: `O(1)` state (in the
/// stream length) and `O(1)` work per timestep.
#[derive(Debug, Clone)]
pub struct RegularEvaluator {
    chain: ChainEvaluator,
}

impl RegularEvaluator {
    /// Builds an evaluator; fails unless the query is regular (Def 3.1).
    pub fn new(db: &Database, nq: &NormalQuery) -> Result<Self, EngineError> {
        if !is_regular(nq) {
            return Err(QueryError::NotInClass("regular".to_owned()).into());
        }
        Ok(Self {
            chain: ChainEvaluator::new(db, &nq.items)?,
        })
    }

    /// The timestep the next [`RegularEvaluator::step`] will consume.
    pub fn next_t(&self) -> u32 {
        self.chain.next_t()
    }

    /// Consumes one timestep and returns `μ(q@t)` for it.
    pub fn step(&mut self, db: &Database) -> f64 {
        self.chain.step(db)
    }

    /// Decomposes into the underlying chain (the session's sharded tick
    /// path owns chains directly).
    pub(crate) fn into_chain(self) -> ChainEvaluator {
        self.chain
    }

    /// Evaluates `μ(q@t)` for every `t` in `0..horizon`.
    pub fn prob_series(mut self, db: &Database, horizon: u32) -> Vec<f64> {
        (0..horizon).map(|_| self.step(db)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahar_model::{Database, StreamBuilder};
    use lahar_query::{parse_query, prob_series, NormalQuery};

    fn series(db: &Database, src: &str) -> (Vec<f64>, Vec<f64>) {
        let q = parse_query(db.interner(), src).unwrap();
        let nq = NormalQuery::from_query(&q);
        let eval = RegularEvaluator::new(db, &nq).unwrap();
        let got = eval.prob_series(db, db.horizon());
        let want = prob_series(db, &q).unwrap();
        (got, want)
    }

    fn assert_matches_oracle(db: &Database, src: &str) {
        let (got, want) = series(db, src);
        for (t, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() < 1e-9,
                "{src} at t={t}: chain {g} vs oracle {w}\nchain {got:?}\noracle {want:?}"
            );
        }
    }

    fn indep_db() -> Database {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        db.declare_relation("Hallway", 1).unwrap();
        let i = db.interner().clone();
        db.insert_relation_tuple("Hallway", lahar_model::tuple([i.intern("h")]))
            .unwrap();
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a", "h", "c"]);
        let ms = vec![
            b.marginal(&[("a", 0.6), ("h", 0.3)]).unwrap(),
            b.marginal(&[("h", 0.5), ("c", 0.2)]).unwrap(),
            b.marginal(&[("c", 0.7), ("a", 0.1)]).unwrap(),
            b.marginal(&[("c", 0.4), ("h", 0.4)]).unwrap(),
        ];
        db.add_stream(b.independent(ms).unwrap()).unwrap();
        db
    }

    fn markov_db() -> Database {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        db.declare_relation("Hallway", 1).unwrap();
        let i = db.interner().clone();
        db.insert_relation_tuple("Hallway", lahar_model::tuple([i.intern("h")]))
            .unwrap();
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a", "h", "c"]);
        let init = b.marginal(&[("a", 0.7), ("h", 0.2)]).unwrap();
        let cpt = b
            .cpt(&[
                ("a", "a", 0.5),
                ("a", "h", 0.4),
                ("h", "h", 0.3),
                ("h", "c", 0.5),
                ("h", "a", 0.1),
                ("c", "c", 0.8),
                ("c", "h", 0.1),
            ])
            .unwrap();
        db.add_stream(b.markov(init, vec![cpt.clone(), cpt.clone(), cpt]).unwrap())
            .unwrap();
        db
    }

    #[test]
    fn single_goal_matches_oracle() {
        assert_matches_oracle(&indep_db(), "At('joe', 'c')");
        assert_matches_oracle(&markov_db(), "At('joe', 'c')");
    }

    #[test]
    fn sequence_matches_oracle() {
        assert_matches_oracle(&indep_db(), "At('joe','a') ; At('joe','c')");
        assert_matches_oracle(&markov_db(), "At('joe','a') ; At('joe','c')");
    }

    #[test]
    fn inner_vs_outer_selection_differ_and_match_oracle() {
        // Ex 3.11 on probabilistic data: q_f vs q_s.
        assert_matches_oracle(&indep_db(), "At('joe','a') ; At('joe','c')");
        assert_matches_oracle(&indep_db(), "sigma[l = 'c'](At('joe','a') ; At('joe', l))");
        let (qf, _) = series(&indep_db(), "At('joe','a') ; At('joe','c')");
        let (qs, _) = series(&indep_db(), "sigma[l = 'c'](At('joe','a') ; At('joe', l))");
        assert!(qf.iter().zip(&qs).any(|(a, b)| (a - b).abs() > 1e-9));
    }

    #[test]
    fn kleene_matches_oracle() {
        assert_matches_oracle(
            &indep_db(),
            "At('joe','a') ; (At('joe', l))+{| Hallway(l)} ; At('joe','c')",
        );
        assert_matches_oracle(
            &markov_db(),
            "At('joe','a') ; (At('joe', l))+{| Hallway(l)} ; At('joe','c')",
        );
    }

    #[test]
    fn standalone_kleene_matches_oracle() {
        assert_matches_oracle(&indep_db(), "(At('joe', l))+{| Hallway(l)}");
        assert_matches_oracle(&markov_db(), "(At('joe', l))+{| Hallway(l)}");
    }

    #[test]
    fn three_step_sequence_matches_oracle() {
        assert_matches_oracle(&indep_db(), "At('joe','a') ; At('joe','h') ; At('joe','c')");
        assert_matches_oracle(
            &markov_db(),
            "At('joe','a') ; At('joe','h') ; At('joe','c')",
        );
    }

    #[test]
    fn multi_stream_regular_query_matches_oracle() {
        // Two independent keys referenced by one regular query.
        let mut db = indep_db();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "At", &["sue"], &["a", "h", "c"]);
        let ms = vec![
            b.marginal(&[("c", 0.5)]).unwrap(),
            b.marginal(&[("a", 0.9)]).unwrap(),
            b.marginal(&[("c", 0.6), ("h", 0.2)]).unwrap(),
            b.marginal(&[("h", 0.5)]).unwrap(),
        ];
        db.add_stream(b.independent(ms).unwrap()).unwrap();
        assert_matches_oracle(&db, "At('joe','a') ; At('sue','c')");
    }

    #[test]
    fn multi_stream_markov_product_chain_matches_oracle() {
        let mut db = markov_db();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "At", &["sue"], &["a", "c"]);
        let init = b.marginal(&[("a", 0.5), ("c", 0.3)]).unwrap();
        let cpt = b
            .cpt(&[("a", "c", 0.6), ("a", "a", 0.2), ("c", "c", 0.9)])
            .unwrap();
        db.add_stream(b.markov(init, vec![cpt.clone(), cpt.clone(), cpt]).unwrap())
            .unwrap();
        assert_matches_oracle(&db, "At('joe','a') ; At('sue','c')");
    }

    #[test]
    fn rejects_non_regular_queries() {
        let db = indep_db();
        let q = parse_query(db.interner(), "At(p,'a') ; At(p,'c')").unwrap();
        let nq = NormalQuery::from_query(&q);
        assert!(RegularEvaluator::new(&db, &nq).is_err());
    }

    #[test]
    fn probability_never_exceeds_one() {
        let db = markov_db();
        let q = parse_query(db.interner(), "(At('joe', l))+{}").unwrap();
        let nq = NormalQuery::from_query(&q);
        let eval = RegularEvaluator::new(&db, &nq).unwrap();
        for p in eval.prob_series(&db, db.horizon()) {
            assert!((0.0..=1.0 + 1e-12).contains(&p));
        }
    }
}
