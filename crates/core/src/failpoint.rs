//! Deterministic fault injection for the chaos test harness.
//!
//! Compiled only with the `failpoints` feature; without it every check
//! compiles to an inline no-op so production builds pay nothing. With
//! the feature on, named fail points in the engine's hot paths —
//! `"worker_step"` (inside the parallel worker's per-chain step loop),
//! `"sequential_step"` (the sequential tick path), and `"sampler"`
//! (Monte Carlo compilation) — consult a process-global registry and
//! can panic, sleep, or return an [`EngineError::FaultInjected`]
//! according to a **seeded deterministic schedule**, so every chaos run
//! is exactly reproducible.
//!
//! ```no_run
//! # #[cfg(feature = "failpoints")] {
//! use lahar_core::failpoint::{self, FailAction, Schedule};
//! failpoint::configure("worker_step", FailAction::Panic, Schedule::Once { at: 3 });
//! // ... run the session; the 4th worker_step check panics ...
//! failpoint::clear_all();
//! # }
//! ```

#[cfg(feature = "failpoints")]
pub use enabled::*;

#[cfg(feature = "failpoints")]
mod enabled {
    use crate::error::EngineError;
    use std::collections::HashMap;
    use std::sync::{LazyLock, Mutex};
    use std::time::Duration;

    /// What a triggered fail point does.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FailAction {
        /// Panic with a recognizable message (exercises `catch_unwind`
        /// recovery paths).
        Panic,
        /// Sleep for the given duration (exercises the tick watchdog).
        Delay(Duration),
        /// Return [`EngineError::FaultInjected`] from the check site.
        Error,
    }

    /// When a configured fail point triggers. All schedules are
    /// deterministic functions of the point's hit counter, which starts
    /// at zero when the point is configured.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Schedule {
        /// Trigger exactly once, on the `at`-th hit (0-based), then
        /// never again.
        Once {
            /// 0-based hit index to trigger on.
            at: u64,
        },
        /// Trigger on every `n`-th hit (hits 0, n, 2n, ...); `n = 1`
        /// means every hit. `n = 0` never triggers.
        EveryNth {
            /// Period in hits.
            n: u64,
        },
        /// Trigger pseudo-randomly with probability `num/denom` per hit,
        /// decided by a splitmix64 hash of `(seed, hit_index)` — the
        /// same seed always yields the same trigger pattern.
        Seeded {
            /// Hash seed.
            seed: u64,
            /// Numerator of the per-hit trigger probability.
            num: u64,
            /// Denominator of the per-hit trigger probability.
            denom: u64,
        },
    }

    impl Schedule {
        fn fires(&self, hit: u64) -> bool {
            match *self {
                Schedule::Once { at } => hit == at,
                Schedule::EveryNth { n } => n != 0 && hit.is_multiple_of(n),
                Schedule::Seeded { seed, num, denom } => {
                    denom != 0
                        && splitmix64(seed ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % denom < num
                }
            }
        }
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    #[derive(Debug)]
    struct Point {
        action: FailAction,
        schedule: Schedule,
        hits: u64,
        triggered: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Point>> {
        static REGISTRY: LazyLock<Mutex<HashMap<String, Point>>> =
            LazyLock::new(|| Mutex::new(HashMap::new()));
        &REGISTRY
    }

    /// Arms fail point `name` with an action and a schedule, resetting
    /// its hit counter.
    pub fn configure(name: &str, action: FailAction, schedule: Schedule) {
        registry().lock().unwrap().insert(
            name.to_owned(),
            Point {
                action,
                schedule,
                hits: 0,
                triggered: 0,
            },
        );
    }

    /// Disarms fail point `name`.
    pub fn clear(name: &str) {
        registry().lock().unwrap().remove(name);
    }

    /// Disarms every fail point. Call between chaos test cases.
    pub fn clear_all() {
        registry().lock().unwrap().clear();
    }

    /// How many times fail point `name` has triggered since it was
    /// configured.
    pub fn trigger_count(name: &str) -> u64 {
        registry()
            .lock()
            .unwrap()
            .get(name)
            .map_or(0, |p| p.triggered)
    }

    /// Arms fail points from the `LAHAR_FAILPOINTS` environment
    /// variable, so a *subprocess* (the crash harness's spawned
    /// `lahar serve`) can be configured without any in-process call.
    /// Returns how many points were armed.
    ///
    /// Syntax: `;`-separated `name=action:schedule` entries, where
    /// `action` is `panic`, `error`, or `delay<millis>` and `schedule`
    /// is `once@N`, `every@N`, or `seeded@SEED/NUM/DENOM`. Example:
    ///
    /// ```text
    /// LAHAR_FAILPOINTS='wal_append=error:once@5;checkpoint_write=error:once@0'
    /// ```
    ///
    /// Malformed entries are reported on stderr and skipped — a chaos
    /// harness typo must not silently disable the fault.
    pub fn configure_from_env() -> usize {
        let Ok(spec) = std::env::var("LAHAR_FAILPOINTS") else {
            return 0;
        };
        let mut armed = 0;
        for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
            match parse_entry(entry) {
                Some((name, action, schedule)) => {
                    configure(name, action, schedule);
                    armed += 1;
                }
                None => eprintln!("lahar: ignoring malformed LAHAR_FAILPOINTS entry '{entry}'"),
            }
        }
        armed
    }

    fn parse_entry(entry: &str) -> Option<(&str, FailAction, Schedule)> {
        let (name, rest) = entry.trim().split_once('=')?;
        let (action, schedule) = rest.split_once(':')?;
        let action = match action {
            "panic" => FailAction::Panic,
            "error" => FailAction::Error,
            ms => FailAction::Delay(Duration::from_millis(
                ms.strip_prefix("delay")?.parse().ok()?,
            )),
        };
        let (kind, args) = schedule.split_once('@')?;
        let schedule = match kind {
            "once" => Schedule::Once {
                at: args.parse().ok()?,
            },
            "every" => Schedule::EveryNth {
                n: args.parse().ok()?,
            },
            "seeded" => {
                let mut parts = args.split('/');
                Schedule::Seeded {
                    seed: parts.next()?.parse().ok()?,
                    num: parts.next()?.parse().ok()?,
                    denom: parts.next()?.parse().ok()?,
                }
            }
            _ => return None,
        };
        Some((name, action, schedule))
    }

    /// The check inserted at each instrumented site. Unarmed points (or
    /// schedule misses) return `Ok(())`. A triggered `Panic` action
    /// panics with `"failpoint '<name>' fired"`; `Delay` sleeps and then
    /// returns `Ok(())`; `Error` returns
    /// [`EngineError::FaultInjected`].
    pub fn check(name: &str) -> Result<(), EngineError> {
        let outcome = {
            let mut reg = registry().lock().unwrap();
            match reg.get_mut(name) {
                None => None,
                Some(p) => {
                    let hit = p.hits;
                    p.hits += 1;
                    if p.schedule.fires(hit) {
                        p.triggered += 1;
                        Some(p.action)
                    } else {
                        None
                    }
                }
            }
            // Lock dropped before acting: a Panic here must not poison
            // the registry, and a Delay must not serialize other points.
        };
        match outcome {
            None => Ok(()),
            Some(FailAction::Panic) => panic!("failpoint '{name}' fired"),
            Some(FailAction::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(FailAction::Error) => Err(EngineError::FaultInjected(name.to_owned())),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn schedules_are_deterministic() {
            assert!(Schedule::Once { at: 2 }.fires(2));
            assert!(!Schedule::Once { at: 2 }.fires(3));
            assert!(Schedule::EveryNth { n: 3 }.fires(0));
            assert!(!Schedule::EveryNth { n: 3 }.fires(1));
            assert!(Schedule::EveryNth { n: 3 }.fires(3));
            assert!(!Schedule::EveryNth { n: 0 }.fires(0));
            let s = Schedule::Seeded {
                seed: 42,
                num: 1,
                denom: 4,
            };
            let pattern_a: Vec<bool> = (0..64).map(|h| s.fires(h)).collect();
            let pattern_b: Vec<bool> = (0..64).map(|h| s.fires(h)).collect();
            assert_eq!(pattern_a, pattern_b);
            assert!(pattern_a.iter().any(|&f| f), "1/4 over 64 hits should fire");
            assert!(!pattern_a.iter().all(|&f| f));
        }

        #[test]
        fn env_entries_parse() {
            let (name, action, schedule) = parse_entry("wal_append=error:once@5").unwrap();
            assert_eq!(name, "wal_append");
            assert_eq!(action, FailAction::Error);
            assert_eq!(schedule, Schedule::Once { at: 5 });
            let (_, action, schedule) = parse_entry("x=delay250:every@3").unwrap();
            assert_eq!(action, FailAction::Delay(Duration::from_millis(250)));
            assert_eq!(schedule, Schedule::EveryNth { n: 3 });
            let (_, action, schedule) = parse_entry("y=panic:seeded@7/1/4").unwrap();
            assert_eq!(action, FailAction::Panic);
            assert_eq!(
                schedule,
                Schedule::Seeded {
                    seed: 7,
                    num: 1,
                    denom: 4
                }
            );
            assert!(parse_entry("bad").is_none());
            assert!(parse_entry("x=explode:once@0").is_none());
            assert!(parse_entry("x=error:sometimes@1").is_none());
        }

        #[test]
        fn check_follows_schedule_and_counts_triggers() {
            // Unique point name: the registry is process-global and
            // tests in this binary run concurrently.
            let name = "test_point_check_follows_schedule";
            configure(name, FailAction::Error, Schedule::Once { at: 1 });
            assert!(check(name).is_ok());
            assert_eq!(
                check(name),
                Err(EngineError::FaultInjected(name.to_owned()))
            );
            assert!(check(name).is_ok());
            assert_eq!(trigger_count(name), 1);
            clear(name);
            assert!(check(name).is_ok());
        }
    }
}

/// No-op stub used when the `failpoints` feature is off: always `Ok`,
/// compiles away entirely.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub(crate) fn check(_name: &str) -> Result<(), crate::error::EngineError> {
    Ok(())
}
