//! Metrics exposition: Prometheus text encoding and a minimal scrape
//! endpoint.
//!
//! [`to_prometheus`] renders a [`StatsSnapshot`] — global counters, the
//! tick-latency histogram, bounded-cardinality fallback reasons, and the
//! per-query registry — in [Prometheus text format v0.0.4], hand-rolled
//! with no dependencies. [`MetricsServer`] serves it live over a
//! blocking [`std::net::TcpListener`] HTTP/1.1 loop (`GET /metrics`,
//! `GET /healthz` — a real readiness probe answering 503 with a JSON
//! body when a session is poisoned or durability-poisoned — and
//! `GET /trace`), started automatically when
//! [`crate::SessionConfig::metrics_addr`] is set. [`write_prometheus`]
//! is the scrape-less dump-to-file mode.
//!
//! The server runs on one named thread (`lahar-metrics`) and holds only
//! a clone of the session's [`EngineStats`] handle, so scrapes never
//! block a tick: they read atomics and briefly lock the histogram maps.
//!
//! [Prometheus text format v0.0.4]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::error::EngineError;
use crate::stats::{EngineStats, LatencySnapshot, StatsSnapshot};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One row of the counter exposition table: metric name, help text, and
/// the accessor that pulls the value out of a snapshot.
type CounterRow = (&'static str, &'static str, fn(&StatsSnapshot) -> u64);

/// Escapes a label value per the Prometheus text format: backslash,
/// double quote, and newline.
pub(crate) fn push_label_value(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a float the Prometheus parser accepts (shortest round-trip
/// form; non-finite values use the spec's `NaN`/`+Inf`/`-Inf` spellings).
pub(crate) fn push_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        write!(out, "{v:?}").unwrap();
    }
}

pub(crate) fn push_header(out: &mut String, name: &str, help: &str, kind: &str) {
    writeln!(out, "# HELP {name} {help}").unwrap();
    writeln!(out, "# TYPE {name} {kind}").unwrap();
}

/// Emits one cumulative histogram series (`_bucket`/`_sum`/`_count`)
/// under `name`, with `labels` (e.g. `query="coffee",id="0"`) spliced
/// into every sample. Bucket upper bounds come from the power-of-two
/// layout: a snapshot bucket `(lower, n)` covers `[lower, 2·lower)` ns.
pub(crate) fn push_histogram(out: &mut String, name: &str, labels: &str, l: &LatencySnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for &(lower_ns, n) in &l.buckets {
        cumulative += n;
        let le = (lower_ns.saturating_mul(2)) as f64 / 1e9;
        write!(out, "{name}_bucket{{{labels}{sep}le=\"").unwrap();
        push_value(out, le);
        writeln!(out, "\"}} {cumulative}").unwrap();
    }
    writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", l.count).unwrap();
    // `{}` (an empty label set) is rejected by some scrapers: brace the
    // _sum/_count samples only when there are labels to carry.
    let braced = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    write!(out, "{name}_sum{braced} ").unwrap();
    push_value(out, l.sum_ns as f64 / 1e9);
    out.push('\n');
    writeln!(out, "{name}_count{braced} {}", l.count).unwrap();
}

/// Joins a session label fragment with metric-specific labels.
fn joined(session: &str, rest: &str) -> String {
    match (session.is_empty(), rest.is_empty()) {
        (true, _) => rest.to_owned(),
        (false, true) => session.to_owned(),
        (false, false) => format!("{session},{rest}"),
    }
}

/// Writes one `name{labels} value` sample, omitting the braces for an
/// empty label set.
pub(crate) fn push_sample(out: &mut String, name: &str, labels: &str, value: &str) {
    if labels.is_empty() {
        writeln!(out, "{name} {value}").unwrap();
    } else {
        writeln!(out, "{name}{{{labels}}} {value}").unwrap();
    }
}

/// Renders a [`StatsSnapshot`] in Prometheus text format v0.0.4.
pub fn to_prometheus(snap: &StatsSnapshot) -> String {
    to_prometheus_sessions(&[("", snap)])
}

/// Renders several sessions' snapshots as one exposition document:
/// HELP/TYPE metadata once per metric, one sample per session labelled
/// `session="<name>"`. An empty name attaches no `session` label — the
/// single-session [`to_prometheus`] path delegates here with one unnamed
/// entry, so its output shape is unchanged.
pub fn to_prometheus_sessions(sessions: &[(&str, &StatsSnapshot)]) -> String {
    let mut out = String::with_capacity(4096 * sessions.len().max(1));
    // Pre-rendered `session="..."` fragment per entry.
    let entries: Vec<(String, &StatsSnapshot)> = sessions
        .iter()
        .map(|(name, snap)| {
            if name.is_empty() {
                (String::new(), *snap)
            } else {
                let mut l = String::from("session=");
                push_label_value(&mut l, name);
                (l, *snap)
            }
        })
        .collect();

    let counters: [CounterRow; 18] = [
        ("lahar_ticks_total", "Session ticks processed.", |s| s.ticks),
        (
            "lahar_epochs_total",
            "Tick epochs closed (each steps one batch of staged ticks).",
            |s| s.epochs,
        ),
        (
            "lahar_epoch_ticks_total",
            "Ticks stepped through closed epochs.",
            |s| s.epoch_ticks,
        ),
        (
            "lahar_parallel_ticks_total",
            "Ticks run on the sharded parallel path.",
            |s| s.parallel_ticks,
        ),
        (
            "lahar_degraded_ticks_total",
            "Ticks forced sequential by degraded mode.",
            |s| s.degraded_ticks,
        ),
        (
            "lahar_recoveries_total",
            "Successful session recoveries.",
            |s| s.recoveries,
        ),
        (
            "lahar_checkpoints_total",
            "Checkpoints taken (manual or automatic).",
            |s| s.checkpoints_taken,
        ),
        (
            "lahar_chains_stepped_total",
            "Per-binding Markov chains stepped across all ticks.",
            |s| s.chains_stepped,
        ),
        (
            "lahar_bindings_grounded_total",
            "Per-key chains grounded at query registration.",
            |s| s.bindings_grounded,
        ),
        ("lahar_alerts_total", "Alerts emitted by ticks.", |s| {
            s.alerts_emitted
        }),
        (
            "lahar_marginals_staged_total",
            "Marginals staged by the inference layer.",
            |s| s.marginals_staged,
        ),
        (
            "lahar_sampler_compilations_total",
            "Monte Carlo compilations.",
            |s| s.sampler_compilations,
        ),
        (
            "lahar_sampler_worlds_total",
            "Sampled worlds across all Monte Carlo compilations.",
            |s| s.sampler_worlds,
        ),
        (
            "lahar_fallbacks_total",
            "Exact-path to sampler fallbacks.",
            |s| s.fallbacks,
        ),
        (
            "lahar_wal_appends_total",
            "Records appended to the write-ahead tick log.",
            |s| s.wal_appends,
        ),
        (
            "lahar_wal_bytes_total",
            "Bytes appended to the write-ahead tick log (frames included).",
            |s| s.wal_bytes,
        ),
        (
            "lahar_wal_replayed_ticks_total",
            "Ticks re-applied from the write-ahead log during recovery.",
            |s| s.wal_replayed_ticks,
        ),
        (
            "lahar_checkpoint_quarantined_total",
            "Corrupt checkpoint generations quarantined during restore.",
            |s| s.checkpoints_quarantined,
        ),
    ];
    for (name, help, value) in counters {
        push_header(&mut out, name, help, "counter");
        for (label, snap) in &entries {
            push_sample(&mut out, name, label, &value(snap).to_string());
        }
    }

    push_header(
        &mut out,
        "lahar_kernel_steps_total",
        "Chain transitions by kernel path (fast = local dense table, \
         frozen = shared frozen table, slow = interpreter, scalar_soa = \
         batched struct-of-arrays lanes, simd = batched lanes through \
         SSE2/AVX2).",
        "counter",
    );
    for (label, snap) in &entries {
        for (path, value) in [
            ("fast", snap.kernel_fast_steps),
            ("frozen", snap.kernel_frozen_steps),
            ("slow", snap.kernel_slow_steps),
            ("scalar_soa", snap.kernel_soa_steps),
            ("simd", snap.kernel_simd_steps),
        ] {
            let labels = joined(label, &format!("path=\"{path}\""));
            push_sample(
                &mut out,
                "lahar_kernel_steps_total",
                &labels,
                &value.to_string(),
            );
        }
    }
    push_header(
        &mut out,
        "lahar_kernel_sym_cache_total",
        "Per-tick symbol-distribution cache lookups by result.",
        "counter",
    );
    for (label, snap) in &entries {
        for (result, value) in [
            ("hit", snap.sym_cache_hits),
            ("miss", snap.sym_cache_misses),
        ] {
            let labels = joined(label, &format!("result=\"{result}\""));
            push_sample(
                &mut out,
                "lahar_kernel_sym_cache_total",
                &labels,
                &value.to_string(),
            );
        }
    }
    push_header(
        &mut out,
        "lahar_kernel_automata_shared",
        "Distinct shared compiled automata backing the session's chains.",
        "gauge",
    );
    for (label, snap) in &entries {
        push_sample(
            &mut out,
            "lahar_kernel_automata_shared",
            label,
            &snap.automata_shared.to_string(),
        );
    }
    push_header(
        &mut out,
        "lahar_kernel_automata_attached_chains",
        "Chains attached to a shared compiled automaton.",
        "gauge",
    );
    for (label, snap) in &entries {
        push_sample(
            &mut out,
            "lahar_kernel_automata_attached_chains",
            label,
            &snap.automata_attached.to_string(),
        );
    }

    push_header(
        &mut out,
        "lahar_fallbacks_by_reason_total",
        "Fallbacks by reason (bounded cardinality; overflow in \"other\").",
        "counter",
    );
    for (label, snap) in &entries {
        for (reason, count) in &snap.fallback_reasons {
            let mut rest = String::from("reason=");
            push_label_value(&mut rest, reason);
            push_sample(
                &mut out,
                "lahar_fallbacks_by_reason_total",
                &joined(label, &rest),
                &count.to_string(),
            );
        }
    }

    push_header(
        &mut out,
        "lahar_tick_latency_seconds",
        "Wall-clock latency of whole session ticks.",
        "histogram",
    );
    for (label, snap) in &entries {
        push_histogram(
            &mut out,
            "lahar_tick_latency_seconds",
            label,
            &snap.tick_latency,
        );
    }

    push_header(
        &mut out,
        "lahar_wal_segments",
        "Live write-ahead log segments on disk (post-GC).",
        "gauge",
    );
    for (label, snap) in &entries {
        push_sample(
            &mut out,
            "lahar_wal_segments",
            label,
            &snap.wal_segments.to_string(),
        );
    }
    push_header(
        &mut out,
        "lahar_fsync_latency_seconds",
        "Wall-clock latency of durability fsyncs (WAL and checkpoints).",
        "histogram",
    );
    for (label, snap) in &entries {
        push_histogram(
            &mut out,
            "lahar_fsync_latency_seconds",
            label,
            &snap.fsync_latency,
        );
    }

    push_header(
        &mut out,
        "lahar_query_ticks_total",
        "Ticks closed per registered query.",
        "counter",
    );
    for (label, snap) in &entries {
        for q in &snap.per_query {
            let mut rest = String::from("query=");
            push_label_value(&mut rest, &q.name);
            write!(rest, ",id=\"{}\"", q.id).unwrap();
            push_sample(
                &mut out,
                "lahar_query_ticks_total",
                &joined(label, &rest),
                &q.ticks.to_string(),
            );
        }
    }
    push_header(
        &mut out,
        "lahar_query_chains",
        "Per-key chains the query grounds to.",
        "gauge",
    );
    for (label, snap) in &entries {
        for q in &snap.per_query {
            let mut rest = String::from("query=");
            push_label_value(&mut rest, &q.name);
            write!(rest, ",id=\"{}\"", q.id).unwrap();
            push_sample(
                &mut out,
                "lahar_query_chains",
                &joined(label, &rest),
                &q.chains.to_string(),
            );
        }
    }
    push_header(
        &mut out,
        "lahar_query_probability",
        "Probability of the query's most recent alert.",
        "gauge",
    );
    for (label, snap) in &entries {
        for q in &snap.per_query {
            let mut rest = String::from("query=");
            push_label_value(&mut rest, &q.name);
            write!(rest, ",id=\"{}\"", q.id).unwrap();
            let mut value = String::new();
            push_value(&mut value, q.last_probability);
            push_sample(
                &mut out,
                "lahar_query_probability",
                &joined(label, &rest),
                &value,
            );
        }
    }
    push_header(
        &mut out,
        "lahar_query_step_latency_seconds",
        "Wall-clock time a query's chains take per tick.",
        "histogram",
    );
    for (label, snap) in &entries {
        for q in &snap.per_query {
            let mut rest = String::from("query=");
            push_label_value(&mut rest, &q.name);
            write!(rest, ",id=\"{}\"", q.id).unwrap();
            push_histogram(
                &mut out,
                "lahar_query_step_latency_seconds",
                &joined(label, &rest),
                &q.step_latency,
            );
        }
    }

    // Process-wide shared-pool telemetry: one sample each regardless of
    // how many sessions share the pool (that is the point of sharing it).
    let (pool_threads, pool_tasks) = crate::pool::stats();
    push_header(
        &mut out,
        "lahar_pool_threads",
        "Threads in the process-shared worker pool (0 until first use).",
        "gauge",
    );
    push_sample(
        &mut out,
        "lahar_pool_threads",
        "",
        &pool_threads.to_string(),
    );
    push_header(
        &mut out,
        "lahar_pool_tasks_total",
        "Epoch jobs ever submitted to the process-shared worker pool.",
        "counter",
    );
    push_sample(
        &mut out,
        "lahar_pool_tasks_total",
        "",
        &pool_tasks.to_string(),
    );
    push_header(
        &mut out,
        "lahar_trace_dropped_spans_total",
        "Spans overwritten in full per-thread trace rings since the \
         tracer was last cleared (non-zero means /trace is truncated).",
        "counter",
    );
    push_sample(
        &mut out,
        "lahar_trace_dropped_spans_total",
        "",
        &crate::trace::dropped().to_string(),
    );
    out
}

/// Writes [`to_prometheus`] output for `snap` to `path` (the
/// dump-to-file exposition mode).
pub fn write_prometheus(
    path: impl AsRef<std::path::Path>,
    snap: &StatsSnapshot,
) -> std::io::Result<()> {
    std::fs::write(path, to_prometheus(snap))
}

/// Content type mandated for Prometheus text format v0.0.4.
const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// A live scrape endpoint for a session's [`EngineStats`].
///
/// Binds a [`TcpListener`] and answers `GET /metrics` (Prometheus text),
/// `GET /healthz` (a readiness verdict: 200 with a JSON body while
/// every session is serviceable, 503 naming the poisoned /
/// durability-poisoned / degraded sessions otherwise), and `GET /trace`
/// (the current
/// [`crate::trace::chrome_trace_json`] document) from one background
/// thread. Dropping the server shuts the thread down and releases the
/// port.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// What a [`MetricsServer`] renders on each `GET /metrics` scrape.
pub type MetricsRenderer = Arc<dyn Fn() -> String + Send + Sync>;

/// What a [`MetricsServer`] answers on each `GET /healthz` probe: the
/// readiness verdict (`true` → 200, `false` → 503) and the JSON body
/// served either way.
pub type HealthRenderer = Arc<dyn Fn() -> (bool, String) + Send + Sync>;

/// Builds the `/healthz` verdict for a set of named sessions. Ready
/// unless a session is poisoned or durability-poisoned (its WAL broke);
/// degraded sessions are reported in the body but do not fail
/// readiness — a degraded session still answers correctly, just on the
/// sequential path. The single-session endpoint reports its session
/// under the empty name.
pub fn health_report<'a>(
    sessions: impl IntoIterator<Item = (&'a str, &'a EngineStats)>,
) -> (bool, String) {
    let mut poisoned: Vec<&str> = Vec::new();
    let mut durability: Vec<&str> = Vec::new();
    let mut degraded: Vec<&str> = Vec::new();
    for (name, stats) in sessions {
        if stats.is_poisoned() {
            poisoned.push(name);
        }
        if stats.is_wal_broken() {
            durability.push(name);
        }
        if stats.is_degraded() {
            degraded.push(name);
        }
    }
    let ok = poisoned.is_empty() && durability.is_empty();
    let mut body = String::from("{\"ok\":");
    body.push_str(if ok { "true" } else { "false" });
    for (field, list) in [
        ("poisoned", &poisoned),
        ("durability", &durability),
        ("degraded", &degraded),
    ] {
        body.push_str(",\"");
        body.push_str(field);
        body.push_str("\":[");
        for (i, name) in list.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            crate::json::push_string(&mut body, name);
        }
        body.push(']');
    }
    body.push_str("}\n");
    (ok, body)
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// Binds `addr` (port 0 picks a free port — see
    /// [`MetricsServer::addr`] for the resolved one) and starts serving
    /// `stats`.
    pub fn start(addr: SocketAddr, stats: EngineStats) -> Result<Self, EngineError> {
        let health_stats = stats.clone();
        Self::start_with_renderers(
            addr,
            Arc::new(move || to_prometheus(&stats.snapshot())),
            Arc::new(move || health_report([("", &health_stats)])),
        )
    }

    /// Like [`MetricsServer::start`], but `GET /metrics` answers with
    /// whatever `render` produces at scrape time. The serving layer uses
    /// this to expose every hosted session (plus its own queue gauges)
    /// from one endpoint.
    pub fn start_with_renderer(
        addr: SocketAddr,
        render: MetricsRenderer,
    ) -> Result<Self, EngineError> {
        Self::start_with_renderers(
            addr,
            render,
            Arc::new(|| health_report(None::<(&str, &EngineStats)>)),
        )
    }

    /// Like [`MetricsServer::start_with_renderer`], but `GET /healthz`
    /// is answered by `health` instead of an unconditionally-ready
    /// default. The serving layer passes a renderer that walks every
    /// hosted session's health flags.
    pub fn start_with_renderers(
        addr: SocketAddr,
        render: MetricsRenderer,
        health: HealthRenderer,
    ) -> Result<Self, EngineError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| EngineError::MetricsUnavailable(format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| EngineError::MetricsUnavailable(format!("local_addr: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("lahar-metrics".to_owned())
            .spawn(move || serve(listener, render, health, flag))
            .map_err(|e| EngineError::MetricsUnavailable(format!("spawn: {e}")))?;
        Ok(Self {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve(
    listener: TcpListener,
    render: MetricsRenderer,
    health: HealthRenderer,
    shutdown: Arc<AtomicBool>,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // A stalled client must not wedge the (single-threaded) loop.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = handle_connection(stream, &render, &health);
    }
}

fn handle_connection(
    stream: TcpStream,
    render: &MetricsRenderer,
    health: &HealthRenderer,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers (bounded) so well-behaved clients see a clean close.
    for _ in 0..64 {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => ("200 OK", PROMETHEUS_CONTENT_TYPE, render()),
        ("GET", "/healthz") => {
            let (ok, body) = health();
            let status = if ok {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            (status, "application/json; charset=utf-8", body)
        }
        ("GET", "/trace") => (
            "200 OK",
            "application/json; charset=utf-8",
            crate::trace::chrome_trace_json(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_owned(),
        ),
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn sample_stats() -> EngineStats {
        let stats = EngineStats::new();
        stats.record_tick(Duration::from_micros(10), 4, true);
        stats.record_tick(Duration::from_micros(40), 4, false);
        stats.record_fallback("safe: no safe plan exists");
        stats.record_fallback("weird \"reason\"\\with\nescapes");
        stats.register_query(0, "coffee", 24);
        stats.record_query_tick(0, Some(1500), 0.25);
        stats.record_wal_append(96);
        stats.record_fsync(Duration::from_micros(120));
        stats.set_wal_segments(2);
        stats.record_wal_replayed(5);
        stats.record_checkpoint_quarantined(1);
        stats
    }

    /// Every non-comment line must be `name{labels} value` with a value
    /// Rust can parse back as a float (Prometheus floats are a superset).
    fn assert_well_formed(text: &str) {
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(
                series
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_'),
                "bad series start: {line}"
            );
            if series.contains('{') {
                assert!(series.ends_with('}'), "unterminated labels: {line}");
            }
            let value = match value {
                "+Inf" => f64::INFINITY,
                "-Inf" => f64::NEG_INFINITY,
                v => v
                    .parse::<f64>()
                    .unwrap_or_else(|_| panic!("bad value in: {line}")),
            };
            let _ = value;
        }
    }

    #[test]
    fn prometheus_text_contains_expected_series() {
        let text = to_prometheus(&sample_stats().snapshot());
        assert_well_formed(&text);
        assert!(text.contains("# TYPE lahar_ticks_total counter"));
        assert!(text.contains("lahar_ticks_total 2"));
        assert!(text.contains("lahar_parallel_ticks_total 1"));
        assert!(text.contains("# TYPE lahar_epochs_total counter"));
        assert!(text.contains("# TYPE lahar_epoch_ticks_total counter"));
        // Process-wide pool telemetry renders unlabelled even in
        // multi-session documents.
        assert!(text.contains("# TYPE lahar_pool_threads gauge"));
        assert!(text.contains("# TYPE lahar_pool_tasks_total counter"));
        assert!(text.contains("lahar_fallbacks_total 2"));
        // Durability telemetry: WAL counters, segment gauge, fsync
        // histogram.
        assert!(text.contains("# TYPE lahar_wal_appends_total counter"));
        assert!(text.contains("lahar_wal_appends_total 1"));
        assert!(text.contains("lahar_wal_bytes_total 96"));
        assert!(text.contains("# TYPE lahar_wal_segments gauge"));
        assert!(text.contains("lahar_wal_segments 2"));
        assert!(text.contains("lahar_wal_replayed_ticks_total 5"));
        assert!(text.contains("lahar_checkpoint_quarantined_total 1"));
        assert!(text.contains("# TYPE lahar_fsync_latency_seconds histogram"));
        assert!(text.contains("lahar_fsync_latency_seconds_count 1"));
        // Kernel telemetry is always present (zero-valued when the
        // session never ticked a compiled chain).
        assert!(text.contains("# TYPE lahar_kernel_steps_total counter"));
        assert!(text.contains("lahar_kernel_steps_total{path=\"fast\"}"));
        assert!(text.contains("lahar_kernel_steps_total{path=\"frozen\"}"));
        assert!(text.contains("lahar_kernel_steps_total{path=\"slow\"}"));
        assert!(text.contains("lahar_kernel_steps_total{path=\"scalar_soa\"}"));
        assert!(text.contains("lahar_kernel_steps_total{path=\"simd\"}"));
        assert!(text.contains("lahar_kernel_sym_cache_total{result=\"hit\"}"));
        assert!(text.contains("lahar_kernel_sym_cache_total{result=\"miss\"}"));
        assert!(text.contains("lahar_kernel_automata_shared "));
        assert!(text.contains("lahar_kernel_automata_attached_chains "));
        assert!(text
            .contains("lahar_fallbacks_by_reason_total{reason=\"safe: no safe plan exists\"} 1"));
        // Label escaping: backslash, quote, newline.
        assert!(text.contains("reason=\"weird \\\"reason\\\"\\\\with\\nescapes\""));
        // Cumulative global histogram with +Inf terminal bucket.
        assert!(text.contains("# TYPE lahar_tick_latency_seconds histogram"));
        assert!(text.contains("lahar_tick_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lahar_tick_latency_seconds_count 2"));
        // Per-query labeled series.
        assert!(text.contains("lahar_query_ticks_total{query=\"coffee\",id=\"0\"} 1"));
        assert!(text.contains("lahar_query_chains{query=\"coffee\",id=\"0\"} 24"));
        assert!(text.contains("lahar_query_probability{query=\"coffee\",id=\"0\"} 0.25"));
        assert!(
            text.contains("lahar_query_step_latency_seconds_bucket{query=\"coffee\",id=\"0\",le=")
        );
        assert!(
            text.contains("lahar_query_step_latency_seconds_count{query=\"coffee\",id=\"0\"} 1")
        );
    }

    /// Multi-session rendering: metadata once per metric, every sample
    /// carrying its session label (escaped like any label value).
    #[test]
    fn multi_session_rendering_labels_every_sample() {
        let a = sample_stats().snapshot();
        let b = EngineStats::new().snapshot();
        let text = to_prometheus_sessions(&[("alpha", &a), ("beta \"x\"", &b)]);
        assert_well_formed(&text);
        assert_eq!(text.matches("# TYPE lahar_ticks_total counter").count(), 1);
        assert!(text.contains("lahar_ticks_total{session=\"alpha\"} 2"));
        assert!(text.contains("lahar_ticks_total{session=\"beta \\\"x\\\"\"} 0"));
        assert!(text.contains("lahar_kernel_steps_total{session=\"alpha\",path=\"fast\"}"));
        assert!(
            text.contains("lahar_query_ticks_total{session=\"alpha\",query=\"coffee\",id=\"0\"} 1")
        );
        assert!(text.contains("lahar_tick_latency_seconds_bucket{session=\"alpha\",le=\"+Inf\"} 2"));
        assert!(text.contains("lahar_tick_latency_seconds_count{session=\"alpha\"} 2"));
    }

    #[test]
    fn empty_snapshot_encodes_cleanly() {
        let text = to_prometheus(&EngineStats::new().snapshot());
        assert_well_formed(&text);
        assert!(text.contains("lahar_ticks_total 0"));
        assert!(text.contains("lahar_tick_latency_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("lahar_tick_latency_seconds_sum 0.0"));
        // No per-query samples, but the metadata stays present.
        assert!(text.contains("# TYPE lahar_query_ticks_total counter"));
        assert!(!text.contains("lahar_query_ticks_total{"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let stats = EngineStats::new();
        // Three distinct power-of-two buckets: 1µs, 10µs, 100µs.
        for us in [1u64, 10, 100] {
            stats.record_tick(Duration::from_micros(us), 1, false);
        }
        let text = to_prometheus(&stats.snapshot());
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lahar_tick_latency_seconds_bucket"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert_eq!(counts, vec![1, 2, 3, 3]);
    }

    #[test]
    fn server_serves_metrics_healthz_trace_and_404() {
        let stats = sample_stats();
        let server = MetricsServer::start("127.0.0.1:0".parse().unwrap(), stats).unwrap();
        let addr = server.addr();

        let get = |path: &str| -> String {
            let mut conn = TcpStream::connect(addr).unwrap();
            write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut response = String::new();
            conn.read_to_string(&mut response).unwrap();
            response
        };

        let metrics = get("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("lahar_query_ticks_total{query=\"coffee\",id=\"0\"} 1"));

        let health = get("/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(health.contains("application/json"));
        assert!(
            health.ends_with("{\"ok\":true,\"poisoned\":[],\"durability\":[],\"degraded\":[]}\n")
        );

        let trace = get("/trace");
        assert!(trace.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(trace.contains("\"traceEvents\""));

        let missing = get("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        drop(server);
        // The port is released once drop returns (join completed).
        assert!(TcpListener::bind(addr).is_ok());
    }

    #[test]
    fn healthz_reports_poisoned_sessions_with_503() {
        let stats = EngineStats::new();
        let server = MetricsServer::start("127.0.0.1:0".parse().unwrap(), stats.clone()).unwrap();
        let addr = server.addr();
        let get = |path: &str| -> String {
            let mut conn = TcpStream::connect(addr).unwrap();
            write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut response = String::new();
            conn.read_to_string(&mut response).unwrap();
            response
        };

        stats.set_degraded(true);
        // Degraded is reported but does not fail readiness.
        let health = get("/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.contains("\"degraded\":[\"\"]"), "{health}");

        stats.set_poisoned(true);
        let health = get("/healthz");
        assert!(health.starts_with("HTTP/1.1 503"), "{health}");
        assert!(health.contains("\"ok\":false"), "{health}");
        assert!(health.contains("\"poisoned\":[\"\"]"), "{health}");

        stats.set_poisoned(false);
        stats.set_degraded(false);
        stats.set_wal_broken(true);
        let health = get("/healthz");
        assert!(health.starts_with("HTTP/1.1 503"), "{health}");
        assert!(health.contains("\"durability\":[\"\"]"), "{health}");
    }

    #[test]
    fn bind_failure_is_reported_not_panicked() {
        let stats = EngineStats::new();
        let holder = MetricsServer::start("127.0.0.1:0".parse().unwrap(), stats.clone()).unwrap();
        let err = MetricsServer::start(holder.addr(), stats).unwrap_err();
        assert!(matches!(err, EngineError::MetricsUnavailable(_)));
        assert!(err.to_string().contains("metrics endpoint unavailable"));
    }

    #[test]
    fn write_prometheus_dumps_to_file() {
        let path = std::env::temp_dir().join("lahar_expose_test.prom");
        write_prometheus(&path, &sample_stats().snapshot()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("lahar_ticks_total 2"));
        let _ = std::fs::remove_file(&path);
    }
}
