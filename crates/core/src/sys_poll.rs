//! Minimal `poll(2)` binding — the readiness primitive under the
//! connection reactor ([`crate::reactor`]).
//!
//! This is the workspace's **second and only other** `unsafe` island
//! (the first is [`crate::simd`]); both are pinned by
//! `scripts/unsafe_audit.sh`. The unsafe surface is exactly one
//! `extern "C"` declaration of the libc `poll` symbol (always linked by
//! std on unix — no `libc` crate needed) and the call through it. The
//! safe wrapper [`poll`] owns the invariants: the fd array pointer and
//! length come from one `&mut [PollFd]`, and `EINTR` is retried so
//! callers never observe spurious interrupts.
//!
//! On non-unix targets the wrapper degrades to a bounded sleep that
//! reports every fd ready — a *valid* (if inefficient) answer, because
//! every socket the reactor registers is non-blocking and readiness is
//! only ever a hint: a wrongly-"ready" fd just yields `WouldBlock` on
//! the next read and is re-armed.

use std::io;

/// Readable data (or a peer close, on most platforms) is available.
pub const POLLIN: i16 = 0x001;
/// Writing would not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (output only; always polled implicitly).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (output only; always polled implicitly).
pub const POLLHUP: i16 = 0x010;
/// Fd not open (output only; signals reactor bookkeeping bugs).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` fd set, layout-compatible with the C
/// `struct pollfd` on every supported unix.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch (a negative fd is ignored by the
    /// kernel — the standard way to leave a hole in the array).
    pub fd: i32,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// A watch for `fd` with the given interest set and no results yet.
    pub fn new(fd: i32, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }
}

#[cfg(all(unix, any(target_os = "linux", target_os = "android")))]
type NFds = std::os::raw::c_ulong;
#[cfg(all(unix, not(any(target_os = "linux", target_os = "android"))))]
type NFds = std::os::raw::c_uint;

#[cfg(unix)]
extern "C" {
    // The libc symbol; std already links libc on every unix target.
    fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
}

/// Blocks until at least one fd in `fds` has a requested (or error)
/// event, or `timeout_ms` elapses (`-1` blocks indefinitely, `0` polls).
/// Returns how many entries have a non-zero `revents`. `EINTR` is
/// retried internally.
#[cfg(unix)]
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a live, exclusively-borrowed slice of
        // `#[repr(C)]` pollfd-layout structs; the kernel writes only
        // within `fds.len()` entries and only to `revents`.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Non-unix fallback: sleep briefly, then report every watched fd
/// "ready". Spurious readiness is harmless on non-blocking sockets (the
/// read answers `WouldBlock`), so the reactor stays correct, merely
/// polling instead of blocking.
#[cfg(not(unix))]
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let nap = match timeout_ms {
        t if t < 0 => 10,
        t => t.min(10),
    };
    std::thread::sleep(std::time::Duration::from_millis(nap as u64));
    let mut n = 0;
    for f in fds.iter_mut() {
        if f.fd >= 0 && f.events != 0 {
            f.revents = f.events;
            n += 1;
        }
    }
    Ok(n)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn readiness_fires_on_pending_data_and_times_out_clean() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();

        // Nothing pending: a zero-timeout poll reports no fds ready.
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        assert_eq!(fds[0].revents & POLLIN, 0);

        // After a write, the receiving end is readable.
        tx.write_all(b"x").unwrap();
        tx.flush().unwrap();
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);

        // A connected socket with room in its send buffer is writable.
        let mut fds = [PollFd::new(tx.as_raw_fd(), POLLOUT)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLOUT, 0);

        // Negative fds are holes, not errors.
        let mut fds = [PollFd::new(-1, POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
    }

    #[test]
    fn peer_close_is_observable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        drop(tx);
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        // FIN shows up as POLLIN (read returns 0) and/or POLLHUP.
        assert_ne!(fds[0].revents & (POLLIN | POLLHUP), 0);
    }
}
