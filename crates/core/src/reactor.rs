//! The readiness-driven connection reactor behind [`crate::LaharServer`].
//!
//! One thread (`lahar-conn-reactor`) owns the listening socket and
//! every client connection, multiplexed with `poll(2)` through the
//! [`crate::sys_poll`] shim: a thousand idle clients cost a thousand
//! file descriptors and **zero** threads, and the only other threads in
//! the serve path are the `n_shards` session workers. This replaces the
//! earlier thread-per-connection model, whose per-client stacks were
//! the scaling ceiling.
//!
//! The wire behaviour is unchanged (`PROTOCOL.md` v1):
//!
//! * **Frame assembly** is incremental: bytes accumulate in a
//!   per-connection buffer and a command is parsed only when its
//!   newline arrives, so a frame split across arbitrarily delayed
//!   writes — the mid-frame-pause case the old reader preserved across
//!   read timeouts — reassembles exactly.
//! * **Responses flush in request order.** Each parsed command claims
//!   the next slot in its connection's output queue; inline answers
//!   (pings, protocol errors, backpressure rejections) fill their slot
//!   immediately, shard-executed commands fill it when the worker's
//!   [`Completion`] arrives. A client may pipeline freely and still
//!   observe answers in the order it asked.
//! * **Shutdown acks flush first.** `shutdown` marks its slot; the
//!   teardown starts only after that ack's last byte is written, so the
//!   client always holds the response before the server exits.
//!
//! Workers hand answers back through [`Shared::completions`] and wake
//! the reactor out of `poll` with one byte on a loopback socket pair —
//! the only cross-thread signalling in the serve path.
//!
//! Slow or dead peers cannot wedge the loop: every socket is
//! non-blocking, a connection with pending output that makes no write
//! progress for [`WRITE_STALL`] is dropped, and the shutdown drain is
//! bounded by [`DRAIN_DEADLINE`].

use crate::protocol::{encode_response_with_id, parse_request, Response};
use crate::server::{
    dispatch, elapsed_ns, initiate_shutdown, req_span, Dispatched, RequestOutcome, Shared,
};
use crate::sys_poll::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on one `poll` nap: the loop also has time-based duties
/// (write-stall detection, shutdown drain) that must run without a
/// readiness event.
const POLL_TIMEOUT_MS: i32 = 250;

/// A connection with pending output whose socket accepts no bytes for
/// this long is declared dead and dropped.
const WRITE_STALL: Duration = Duration::from_secs(10);

/// How long the shutdown drain waits for in-flight responses to flush
/// before the reactor exits anyway.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

#[cfg(unix)]
fn stream_fd(s: &TcpStream) -> i32 {
    use std::os::fd::AsRawFd;
    s.as_raw_fd()
}
#[cfg(unix)]
fn listener_fd(l: &TcpListener) -> i32 {
    use std::os::fd::AsRawFd;
    l.as_raw_fd()
}
// On non-unix targets `sys_poll` degrades to a timed nap that reports
// every watched entry ready, so any non-negative placeholder works.
#[cfg(not(unix))]
fn stream_fd(_: &TcpStream) -> i32 {
    0
}
#[cfg(not(unix))]
fn listener_fd(_: &TcpListener) -> i32 {
    0
}

/// One response slot in a connection's ordered output queue.
enum Slot {
    /// The command is executing on its shard; the worker's
    /// [`Completion`] addressed to this slot's `(conn_id, seq)` fills
    /// it. [`crate::server::Completion`]
    Pending {
        label: &'static str,
        id: Option<u64>,
        session: String,
    },
    /// The answer is encoded and flushing (possibly across several
    /// partial writes).
    Ready {
        bytes: Vec<u8>,
        written: usize,
        outcome: RequestOutcome,
        /// When the answer became flushable; last-byte-written minus
        /// this is the `respond` phase.
        ready_at: Instant,
        /// This is a `shutdown` ack: initiate the teardown once its
        /// last byte is out.
        shutdown_after: bool,
    },
}

/// One client connection's state.
struct Conn {
    stream: TcpStream,
    /// Partial NDJSON frame carried across reads: a command split
    /// across arbitrarily many writes (or an arbitrarily long pause)
    /// reassembles when its newline finally arrives.
    rbuf: Vec<u8>,
    /// How far `rbuf` has been scanned for a newline already.
    scanned: usize,
    /// Ordered response slots; the front flushes first.
    out: VecDeque<Slot>,
    /// Sequence number of `out.front()`; slot `seq` lives at index
    /// `seq - head_seq`.
    head_seq: u64,
    /// Sequence number the next parsed command claims.
    next_seq: u64,
    /// The peer half-closed its write side; the connection lingers
    /// only until its remaining output drains.
    eof: bool,
    /// Last time a flush made progress (or the queue was empty).
    last_progress: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            rbuf: Vec::new(),
            scanned: 0,
            out: VecDeque::new(),
            head_seq: 0,
            next_seq: 0,
            eof: false,
            last_progress: Instant::now(),
        }
    }

    /// Whether the front slot has bytes waiting for the socket.
    fn wants_write(&self) -> bool {
        matches!(self.out.front(), Some(Slot::Ready { .. }))
    }
}

/// Encodes `outcome` into a flushable [`Slot::Ready`].
fn ready_slot(outcome: RequestOutcome, shutdown_after: bool) -> Slot {
    let mut bytes = encode_response_with_id(&outcome.response, outcome.id).into_bytes();
    bytes.push(b'\n');
    Slot::Ready {
        bytes,
        written: 0,
        outcome,
        ready_at: Instant::now(),
        shutdown_after,
    }
}

/// The reactor loop. Runs until shutdown (a `shutdown` command, a
/// [`crate::LaharServer::shutdown`] call, or drop of the handle) has
/// been initiated *and* in-flight responses have drained (bounded by
/// [`DRAIN_DEADLINE`]).
pub(crate) fn run(listener: TcpListener, wake: TcpStream, shared: &Arc<Shared>) {
    if listener.set_nonblocking(true).is_err() {
        // Without a non-blocking listener the loop cannot multiplex;
        // flag the server down rather than serve wrongly.
        initiate_shutdown(shared);
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn_id: u64 = 0;
    let mut shutdown_since: Option<Instant> = None;

    loop {
        let shutting_down = shared.shutting_down.load(Ordering::SeqCst);
        if shutting_down && shutdown_since.is_none() {
            shutdown_since = Some(Instant::now());
        }
        if let Some(since) = shutdown_since {
            let drained = conns.values().all(|c| c.out.is_empty());
            if drained || since.elapsed() >= DRAIN_DEADLINE {
                return;
            }
        }

        // --- Build the fd set: wake pipe, listener, every connection.
        let mut fds = Vec::with_capacity(conns.len() + 2);
        let mut ids = Vec::with_capacity(conns.len());
        fds.push(PollFd::new(stream_fd(&wake), POLLIN));
        let listener_slot = if shutting_down {
            None
        } else {
            fds.push(PollFd::new(listener_fd(&listener), POLLIN));
            Some(fds.len() - 1)
        };
        for (&id, conn) in &conns {
            let mut events = 0;
            if !conn.eof {
                events |= POLLIN;
            }
            if conn.wants_write() {
                events |= POLLOUT;
            }
            // A fully-quiesced connection (half-closed, queue empty) is
            // removed below; until then always watch for errors, which
            // poll reports regardless of `events`.
            fds.push(PollFd::new(stream_fd(&conn.stream), events));
            ids.push(id);
        }
        if poll_fds(&mut fds, POLL_TIMEOUT_MS).is_err() {
            // Only pathological errors (EINVAL/ENOMEM) reach here —
            // EINTR is retried inside. Back off instead of spinning.
            std::thread::sleep(Duration::from_millis(10));
        }

        // --- Drain the wake pipe (level-triggered; empty it fully).
        if fds[0].revents & (POLLIN | POLLERR | POLLHUP) != 0 {
            let mut buf = [0u8; 64];
            loop {
                match (&wake).read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
        }

        // --- Fill slots from finished worker jobs.
        let completions = std::mem::take(&mut *shared.completions.lock().expect("completions"));
        for done in completions {
            let Some(conn) = conns.get_mut(&done.to.conn_id) else {
                continue; // the client is gone; nobody to answer
            };
            let idx = (done.to.seq - conn.head_seq) as usize;
            let Some(slot) = conn.out.get_mut(idx) else {
                continue;
            };
            let Slot::Pending { label, id, session } = slot else {
                continue;
            };
            let outcome = RequestOutcome {
                label,
                id: *id,
                session: Some(std::mem::take(session)),
                response: done.reply.response,
                queue_wait_ns: done.reply.queue_wait_ns,
                execute_ns: done.reply.execute_ns,
                wal_ns: done.reply.wal_ns,
            };
            *slot = ready_slot(outcome, false);
        }

        // --- Accept new connections.
        if let Some(slot) = listener_slot {
            if fds[slot].revents & POLLIN != 0 {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // One small flushed frame per response;
                            // without TCP_NODELAY Nagle can hold it for
                            // the peer's delayed ACK.
                            let _ = stream.set_nodelay(true);
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            conns.insert(next_conn_id, Conn::new(stream));
                            next_conn_id += 1;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => break, // transient (ECONNABORTED etc.)
                    }
                }
            }
        }

        // --- Read, parse, dispatch.
        let mut dead: Vec<u64> = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            let revents = fds[i + 1 + usize::from(listener_slot.is_some())].revents;
            if revents & POLLNVAL != 0 {
                dead.push(id);
                continue;
            }
            let conn = conns.get_mut(&id).expect("listed");
            if revents & (POLLIN | POLLERR | POLLHUP) != 0
                && !conn.eof
                && !read_and_dispatch(conn, id, shared)
            {
                dead.push(id);
                continue;
            }
            // Flush whatever is flushable, whether or not POLLOUT fired
            // — a completion may have landed while the socket was
            // already writable.
            if !flush_conn(conn, shared) {
                dead.push(id);
                continue;
            }
            if conn.eof && conn.out.is_empty() {
                dead.push(id); // quiesced half-close: nothing left to say
            } else if conn.wants_write() && conn.last_progress.elapsed() >= WRITE_STALL {
                dead.push(id); // dead peer with backed-up output
            }
        }
        for id in dead {
            conns.remove(&id);
        }
    }
}

/// Reads every available byte from `conn`, parses complete frames, and
/// dispatches them (claiming output slots in arrival order). Returns
/// `false` when the connection is broken and must be dropped.
fn read_and_dispatch(conn: &mut Conn, conn_id: u64, shared: &Arc<Shared>) -> bool {
    let mut buf = [0u8; 4096];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    // Parse every complete frame; the trailing partial (if any) stays
    // in `rbuf` for however long its remainder takes to arrive.
    while let Some(nl) = conn.rbuf[conn.scanned..].iter().position(|&b| b == b'\n') {
        let line_end = conn.scanned + nl;
        let frame: Vec<u8> = conn.rbuf.drain(..=line_end).collect();
        conn.scanned = 0;
        let text = String::from_utf8_lossy(&frame);
        if text.trim().is_empty() {
            continue;
        }
        let parsed = parse_request(text.trim_end());
        let span = req_span(
            "serve_request",
            parsed.as_ref().ok().and_then(|(_, id)| *id),
        );
        let seq = conn.next_seq;
        conn.next_seq += 1;
        match dispatch(shared, parsed, conn_id, seq) {
            Dispatched::Inline(outcome) => {
                let closing = matches!(outcome.response, Response::ShuttingDown);
                conn.out.push_back(ready_slot(outcome, closing));
            }
            Dispatched::Enqueued { label, id, session } => {
                conn.out.push_back(Slot::Pending { label, id, session });
            }
        }
        drop(span);
    }
    conn.scanned = conn.rbuf.len();
    true
}

/// Flushes the connection's front slots for as long as the socket
/// accepts bytes, recording request metrics (and the slow log) as each
/// response completes. Returns `false` when the connection is broken.
fn flush_conn(conn: &mut Conn, shared: &Arc<Shared>) -> bool {
    loop {
        let Some(Slot::Ready {
            bytes,
            written,
            outcome,
            ready_at,
            shutdown_after,
        }) = conn.out.front_mut()
        else {
            if conn.out.is_empty() {
                conn.last_progress = Instant::now();
            }
            return true; // nothing flushable (empty or waiting on a worker)
        };
        while *written < bytes.len() {
            match conn.stream.write(&bytes[*written..]) {
                Ok(0) => return false,
                Ok(n) => {
                    *written += n;
                    conn.last_progress = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        let respond_ns = elapsed_ns(*ready_at);
        shared.requests.record(
            outcome.label,
            [
                outcome.queue_wait_ns,
                outcome.execute_ns,
                outcome.wal_ns,
                respond_ns,
            ],
            outcome.code(),
        );
        if let Some(slow) = &shared.slow_log {
            slow.observe(outcome, respond_ns);
        }
        let closing = *shutdown_after;
        conn.out.pop_front();
        conn.head_seq += 1;
        if closing {
            // The ack is on the wire; now (and only now) start the
            // teardown, mirroring the flush-then-shutdown order the
            // threaded server guaranteed.
            initiate_shutdown(shared);
            return false; // close this connection; drain handles the rest
        }
    }
}
