//! Streaming evaluation of Extended Regular Queries (§3.2, Theorem 3.7).
//!
//! Shared variables that are syntactically independent (Def 3.4) are
//! grounded over every candidate key binding; the per-binding instances
//! use disjoint tuple sets, hence are independent, and combine as
//! `P[q] = 1 − Π_i (1 − p_i(t))` — `O(m)` state in the number of distinct
//! keys, each step `O(m)`.

use crate::chain::ChainEvaluator;
use crate::error::EngineError;
use crate::translate::{enumerate_bindings, substitute_items};
use lahar_model::Database;
use lahar_query::{is_extended_regular, shared_vars, Binding, NormalQuery, QueryError};

/// Default cap on the number of grounded per-key chains.
pub const DEFAULT_BINDING_CAP: usize = 1 << 20;

/// Exact streaming evaluator for an extended regular query: one regular
/// chain per candidate binding of the shared variables.
#[derive(Debug)]
pub struct ExtendedRegularEvaluator {
    chains: Vec<(Binding, ChainEvaluator)>,
    t: u32,
}

impl ExtendedRegularEvaluator {
    /// Builds an evaluator; fails unless the query is extended regular
    /// (Def 3.5).
    pub fn new(db: &Database, nq: &NormalQuery) -> Result<Self, EngineError> {
        if !is_extended_regular(db.catalog(), nq) {
            return Err(QueryError::NotInClass("extended regular".to_owned()).into());
        }
        let shared: Vec<_> = shared_vars(&nq.items).into_iter().collect();
        let bindings = enumerate_bindings(db, &nq.items, &shared, DEFAULT_BINDING_CAP)?;
        let mut chains = Vec::with_capacity(bindings.len());
        for binding in bindings {
            let items = substitute_items(&nq.items, &binding);
            chains.push((binding.clone(), ChainEvaluator::new(db, &items)?));
        }
        Ok(Self { chains, t: 0 })
    }

    /// Number of grounded per-key chains (the paper's `m`).
    pub fn n_chains(&self) -> usize {
        self.chains.len()
    }

    /// Decomposes into the per-binding chains, in canonical binding
    /// order (the session's sharded tick path owns chains directly and
    /// recombines with `1 − Π(1 − pᵢ)` in this same order).
    pub(crate) fn into_chains(self) -> Vec<(Binding, ChainEvaluator)> {
        self.chains
    }

    /// The timestep the next [`Self::step`] will consume.
    pub fn next_t(&self) -> u32 {
        self.t
    }

    /// Consumes one timestep; returns `μ(q@t) = 1 − Π(1 − p_i(t))`.
    pub fn step(&mut self, db: &Database) -> f64 {
        let mut none = 1.0;
        for (_, chain) in &mut self.chains {
            none *= 1.0 - chain.step(db);
        }
        self.t += 1;
        1.0 - none
    }

    /// Test/bench hook: pin every per-binding chain to the shared
    /// automaton's interpreter path (see
    /// [`ChainEvaluator::force_interpreter`]); answers are identical,
    /// only the transition-resolution speed differs.
    pub fn force_interpreter(&mut self, on: bool) {
        for (_, chain) in &mut self.chains {
            chain.force_interpreter(on);
        }
    }

    /// The grounded binding at index `i` of the canonical order (the
    /// order [`Self::step_detailed`] reports probabilities in).
    pub fn binding(&self, i: usize) -> &Binding {
        &self.chains[i].0
    }

    /// The grounded bindings in canonical order.
    pub fn bindings(&self) -> impl Iterator<Item = &Binding> {
        self.chains.iter().map(|(b, _)| b)
    }

    /// Consumes one timestep and additionally reports each binding's
    /// probability (for per-key alerting), indexed in canonical binding
    /// order — resolve an index to its key with [`Self::binding`]. No
    /// bindings are cloned per tick.
    pub fn step_detailed(&mut self, db: &Database) -> (f64, Vec<f64>) {
        let mut none = 1.0;
        let mut detail = Vec::with_capacity(self.chains.len());
        for (_, chain) in &mut self.chains {
            let p = chain.step(db);
            none *= 1.0 - p;
            detail.push(p);
        }
        self.t += 1;
        (1.0 - none, detail)
    }

    /// Evaluates `μ(q@t)` for every `t` in `0..horizon`.
    pub fn prob_series(mut self, db: &Database, horizon: u32) -> Vec<f64> {
        (0..horizon).map(|_| self.step(db)).collect()
    }

    /// Evaluates the series with chains partitioned across `n_threads`
    /// worker threads (each chain is an independent Markov computation, so
    /// this parallelizes embarrassingly — used by the throughput harness).
    ///
    /// A panicking worker surfaces as [`EngineError::WorkerPanicked`]
    /// rather than aborting the caller; the remaining workers still run
    /// to completion before the error is returned.
    pub fn prob_series_parallel(
        self,
        db: &Database,
        horizon: u32,
        n_threads: usize,
    ) -> Result<Vec<f64>, EngineError> {
        let chunk = self.chains.len().div_ceil(n_threads.max(1));
        let mut chains = self.chains;
        let partials: Vec<Result<Vec<f64>, EngineError>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for slice in chains.chunks_mut(chunk.max(1)) {
                handles.push(scope.spawn(move || {
                    let mut none = vec![1.0f64; horizon as usize];
                    for (_, chain) in slice.iter_mut() {
                        for slot in none.iter_mut().take(horizon as usize) {
                            *slot *= 1.0 - chain.step(db);
                        }
                    }
                    none
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().map_err(crate::error::worker_panic))
                .collect()
        });
        let mut out = vec![1.0f64; horizon as usize];
        for partial in partials {
            for (o, p) in out.iter_mut().zip(partial?) {
                *o *= p;
            }
        }
        Ok(out.iter().map(|p| 1.0 - p).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahar_model::{Database, StreamBuilder};
    use lahar_query::{parse_query, prob_series};

    fn db_two_people() -> Database {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        db.declare_relation("Hallway", 1).unwrap();
        db.declare_relation("Person", 1).unwrap();
        let i = db.interner().clone();
        db.insert_relation_tuple("Hallway", lahar_model::tuple([i.intern("h")]))
            .unwrap();
        for p in ["joe", "sue"] {
            db.insert_relation_tuple("Person", lahar_model::tuple([i.intern(p)]))
                .unwrap();
        }
        let b = StreamBuilder::new(&i, "At", &["joe"], &["a", "h", "c"]);
        let ms = vec![
            b.marginal(&[("a", 0.6), ("h", 0.3)]).unwrap(),
            b.marginal(&[("h", 0.5), ("c", 0.2)]).unwrap(),
            b.marginal(&[("c", 0.7)]).unwrap(),
        ];
        db.add_stream(b.independent(ms).unwrap()).unwrap();
        let b = StreamBuilder::new(&i, "At", &["sue"], &["a", "h", "c"]);
        let ms = vec![
            b.marginal(&[("a", 0.9)]).unwrap(),
            b.marginal(&[("h", 0.2), ("a", 0.4)]).unwrap(),
            b.marginal(&[("c", 0.5), ("h", 0.3)]).unwrap(),
        ];
        db.add_stream(b.independent(ms).unwrap()).unwrap();
        db
    }

    fn assert_matches_oracle(db: &Database, src: &str) {
        let q = parse_query(db.interner(), src).unwrap();
        let nq = lahar_query::NormalQuery::from_query(&q);
        let eval = ExtendedRegularEvaluator::new(db, &nq).unwrap();
        let got = eval.prob_series(db, db.horizon());
        let want = prob_series(db, &q).unwrap();
        for (t, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-9, "{src} at t={t}: {g} vs oracle {w}");
        }
    }

    #[test]
    fn shared_person_sequence_matches_oracle() {
        assert_matches_oracle(&db_two_people(), "At(p,'a') ; At(p,'c')");
    }

    #[test]
    fn qhall_shape_matches_oracle() {
        assert_matches_oracle(
            &db_two_people(),
            "sigma[Person(x)](At(x,'a') ; (At(x, l2))+{x | Hallway(l2)} ; At(x,'c'))",
        );
    }

    #[test]
    fn one_chain_per_key() {
        let db = db_two_people();
        let q = parse_query(db.interner(), "At(p,'a') ; At(p,'c')").unwrap();
        let nq = lahar_query::NormalQuery::from_query(&q);
        let eval = ExtendedRegularEvaluator::new(&db, &nq).unwrap();
        assert_eq!(eval.n_chains(), 2);
    }

    #[test]
    fn detailed_step_reports_per_binding() {
        let db = db_two_people();
        let q = parse_query(db.interner(), "At(p,'a') ; At(p,'c')").unwrap();
        let nq = lahar_query::NormalQuery::from_query(&q);
        let mut eval = ExtendedRegularEvaluator::new(&db, &nq).unwrap();
        eval.step(&db);
        eval.step(&db);
        let (total, detail) = eval.step_detailed(&db);
        assert_eq!(detail.len(), 2);
        // Indices align with the canonical binding order.
        assert_eq!(eval.bindings().count(), 2);
        assert_ne!(
            format!("{:?}", eval.binding(0)),
            format!("{:?}", eval.binding(1))
        );
        let none: f64 = detail.iter().map(|p| 1.0 - p).product();
        assert!((total - (1.0 - none)).abs() < 1e-12);
    }

    #[test]
    fn parallel_series_matches_sequential() {
        let db = db_two_people();
        let q = parse_query(db.interner(), "At(p,'a') ; At(p,'c')").unwrap();
        let nq = lahar_query::NormalQuery::from_query(&q);
        let seq = ExtendedRegularEvaluator::new(&db, &nq)
            .unwrap()
            .prob_series(&db, db.horizon());
        let par = ExtendedRegularEvaluator::new(&db, &nq)
            .unwrap()
            .prob_series_parallel(&db, db.horizon(), 2)
            .unwrap();
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_safe_but_not_extended_queries() {
        let mut db = db_two_people();
        db.declare_stream("Badge", &["person"], &["v"]).unwrap();
        let i = db.interner().clone();
        let b = StreamBuilder::new(&i, "Badge", &["joe"], &["x"]);
        db.add_stream(b.independent(vec![]).unwrap()).unwrap();
        // p shared but missing from the last subgoal: not extended regular.
        let q = parse_query(db.interner(), "At(p,'a') ; At(p,'h') ; Badge(r, _)").unwrap();
        let nq = lahar_query::NormalQuery::from_query(&q);
        assert!(ExtendedRegularEvaluator::new(&db, &nq).is_err());
    }

    #[test]
    fn markov_streams_per_key_match_oracle() {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        let i = db.interner().clone();
        for (p, stay) in [("joe", 0.8), ("sue", 0.4)] {
            let b = StreamBuilder::new(&i, "At", &[p], &["a", "c"]);
            let init = b.marginal(&[("a", 0.6), ("c", 0.1)]).unwrap();
            let cpt = b
                .cpt(&[("a", "a", stay), ("a", "c", 0.9 - stay), ("c", "c", 0.7)])
                .unwrap();
            db.add_stream(b.markov(init, vec![cpt.clone(), cpt]).unwrap())
                .unwrap();
        }
        assert_matches_oracle(&db, "At(p,'a') ; At(p,'c')");
    }
}
