//! The top-level Lahar engine: classify, compile, evaluate.
//!
//! [`Lahar::compile_with`] runs the static analysis (§3) and picks the cheapest
//! exact algorithm for the query's class — streaming Markov chains for
//! Regular queries, per-key chains for Extended Regular queries, the
//! interval algebra for Safe queries — and falls back to the (ε, δ) Monte
//! Carlo sampler for everything else (including the #P-hard queries of
//! §3.4 and the few safe shapes whose `seq` operator the exact algebra
//! does not cover; see DESIGN.md).

use crate::error::EngineError;
use crate::extended::ExtendedRegularEvaluator;
use crate::regular::RegularEvaluator;
use crate::safeplan::SafePlanExecutor;
use crate::sampler::{Sampler, SamplerConfig};
use crate::stats::EngineStats;
use lahar_model::Database;
use lahar_query::{
    classify, compile_safe_plan, parse_and_validate, NormalQuery, Query, QueryClass, QueryError,
};

/// Which algorithm a compiled query uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// §3.1 streaming Markov chain.
    Regular,
    /// §3.2 per-key independent chains.
    ExtendedRegular,
    /// §3.3 safe-plan interval algebra.
    SafePlan,
    /// §3.5 Monte Carlo sampling.
    Sampling,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Algorithm::Regular => "regular (streaming chain)",
            Algorithm::ExtendedRegular => "extended regular (per-key chains)",
            Algorithm::SafePlan => "safe plan (interval algebra)",
            Algorithm::Sampling => "monte carlo sampling",
        };
        f.write_str(s)
    }
}

/// A query compiled against a database snapshot.
pub enum CompiledQuery<'db> {
    /// Streaming regular evaluator.
    Regular {
        /// The database the evaluator runs over.
        db: &'db Database,
        /// The evaluator.
        eval: RegularEvaluator,
    },
    /// Streaming extended-regular evaluator.
    Extended {
        /// The database the evaluator runs over.
        db: &'db Database,
        /// The evaluator.
        eval: ExtendedRegularEvaluator,
    },
    /// Offline safe-plan executor.
    Safe {
        /// The executor.
        exec: SafePlanExecutor<'db>,
        /// Next timestep for the incremental [`CompiledQuery::step`] API.
        t: u32,
    },
    /// Monte Carlo sampler.
    Sampled {
        /// The database the sampler runs over.
        db: &'db Database,
        /// The sampler.
        eval: Sampler,
    },
}

impl CompiledQuery<'_> {
    /// The algorithm in use.
    pub fn algorithm(&self) -> Algorithm {
        match self {
            CompiledQuery::Regular { .. } => Algorithm::Regular,
            CompiledQuery::Extended { .. } => Algorithm::ExtendedRegular,
            CompiledQuery::Safe { .. } => Algorithm::SafePlan,
            CompiledQuery::Sampled { .. } => Algorithm::Sampling,
        }
    }

    /// Consumes the next timestep and returns `μ(q@t)` for it (safe plans
    /// compute the point probability directly).
    pub fn step(&mut self) -> Result<f64, EngineError> {
        match self {
            CompiledQuery::Regular { db, eval } => Ok(eval.step(db)),
            CompiledQuery::Extended { db, eval } => Ok(eval.step(db)),
            CompiledQuery::Safe { exec, t } => {
                let now = *t;
                *t += 1;
                exec.prob_at(now)
            }
            CompiledQuery::Sampled { db, eval } => Ok(eval.step(db)),
        }
    }

    /// The next `horizon` values of `μ(q@t)`, starting from the current
    /// cursor (`t = 0` for a freshly compiled query).
    pub fn prob_series(mut self, horizon: u32) -> Result<Vec<f64>, EngineError> {
        match &mut self {
            // The batch interval-algebra path is only equivalent from a
            // fresh cursor; a stepped executor must continue from `t`.
            CompiledQuery::Safe { exec, t: 0 } => exec.prob_series(horizon),
            _ => (0..horizon).map(|_| self.step()).collect(),
        }
    }
}

/// A query handed to [`Lahar::compile_with`]: either source text (parsed
/// and validated against the database) or an already-validated AST.
/// Usually built implicitly via `Into`:
///
/// ```ignore
/// Lahar::compile_with(&db, "At('joe','a')", CompileOptions::new())?;
/// Lahar::compile_with(&db, &ast, CompileOptions::new())?;
/// ```
pub enum QuerySource<'a> {
    /// Query source text, parsed and validated at compile time.
    Text(&'a str),
    /// An already-validated AST.
    Ast(&'a Query),
}

impl<'a> From<&'a str> for QuerySource<'a> {
    fn from(src: &'a str) -> Self {
        QuerySource::Text(src)
    }
}

impl<'a> From<&'a Query> for QuerySource<'a> {
    fn from(q: &'a Query) -> Self {
        QuerySource::Ast(q)
    }
}

/// Options for [`Lahar::compile_with`]. The default is equivalent to the
/// old zero-argument `compile`: default sampler configuration, no
/// instrumentation.
#[derive(Clone, Copy, Default)]
pub struct CompileOptions<'s> {
    sampler: SamplerConfig,
    stats: Option<&'s EngineStats>,
}

impl<'s> CompileOptions<'s> {
    /// Default options: default [`SamplerConfig`], no instrumentation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Uses `config` when compilation lands on (or falls back to) the
    /// Monte Carlo sampler.
    pub fn sampler_config(mut self, config: SamplerConfig) -> Self {
        self.sampler = config;
        self
    }

    /// Records sampler world counts and exact-path→sampler fallbacks
    /// (with their reasons) into `stats`.
    pub fn instrument(mut self, stats: &'s EngineStats) -> Self {
        self.stats = Some(stats);
        self
    }
}

/// The Lahar engine facade.
pub struct Lahar;

impl Lahar {
    /// Classifies and compiles a query — text or AST — under `options`.
    ///
    /// This is the single compilation entry point; the historical
    /// `compile` / `compile_query` / `compile_with_sampler_config` /
    /// `compile_instrumented` names forward here and are deprecated.
    pub fn compile_with<'db, 'a>(
        db: &'db Database,
        query: impl Into<QuerySource<'a>>,
        options: CompileOptions<'_>,
    ) -> Result<CompiledQuery<'db>, EngineError> {
        let parsed;
        let q = match query.into() {
            QuerySource::Text(src) => {
                parsed = parse_and_validate(db.catalog(), db.interner(), src)?;
                &parsed
            }
            QuerySource::Ast(q) => q,
        };
        Self::compile_inner(db, q, options.sampler, options.stats)
    }

    /// Parses, validates, classifies, and compiles a textual query.
    #[deprecated(
        since = "0.1.0",
        note = "use `Lahar::compile_with(db, src, CompileOptions::new())`"
    )]
    pub fn compile<'db>(db: &'db Database, src: &str) -> Result<CompiledQuery<'db>, EngineError> {
        Self::compile_with(db, src, CompileOptions::new())
    }

    /// Classifies and compiles an AST query.
    #[deprecated(
        since = "0.1.0",
        note = "use `Lahar::compile_with(db, query, CompileOptions::new())`"
    )]
    pub fn compile_query<'db>(
        db: &'db Database,
        q: &Query,
    ) -> Result<CompiledQuery<'db>, EngineError> {
        Self::compile_with(db, q, CompileOptions::new())
    }

    /// Full-control compilation.
    #[deprecated(
        since = "0.1.0",
        note = "use `Lahar::compile_with(db, query, CompileOptions::new().sampler_config(config))`"
    )]
    pub fn compile_with_sampler_config<'db>(
        db: &'db Database,
        q: &Query,
        sampler_config: SamplerConfig,
    ) -> Result<CompiledQuery<'db>, EngineError> {
        Self::compile_with(db, q, CompileOptions::new().sampler_config(sampler_config))
    }

    /// Compilation with sampler statistics recorded into `stats`.
    #[deprecated(
        since = "0.1.0",
        note = "use `Lahar::compile_with(db, query, CompileOptions::new().sampler_config(config).instrument(stats))`"
    )]
    pub fn compile_instrumented<'db>(
        db: &'db Database,
        q: &Query,
        sampler_config: SamplerConfig,
        stats: &EngineStats,
    ) -> Result<CompiledQuery<'db>, EngineError> {
        Self::compile_with(
            db,
            q,
            CompileOptions::new()
                .sampler_config(sampler_config)
                .instrument(stats),
        )
    }

    fn compile_inner<'db>(
        db: &'db Database,
        q: &Query,
        sampler_config: SamplerConfig,
        stats: Option<&EngineStats>,
    ) -> Result<CompiledQuery<'db>, EngineError> {
        let sample = |nq: &NormalQuery, fallback_reason: Option<&str>| {
            if let (Some(stats), Some(reason)) = (stats, fallback_reason) {
                stats.record_fallback(reason);
            }
            let eval = Sampler::with_config(db, nq, sampler_config)?;
            if let Some(stats) = stats {
                stats.record_sampler(eval.n_samples() as u64);
            }
            Ok(CompiledQuery::Sampled { db, eval })
        };
        let nq = NormalQuery::from_query(q);
        match classify(db.catalog(), &nq) {
            QueryClass::Regular => match RegularEvaluator::new(db, &nq) {
                Ok(eval) => Ok(CompiledQuery::Regular { db, eval }),
                // A regular query with a free key variable can make the
                // joint hidden chain exponential in the number of streams;
                // the sampler simulates the same product space world by
                // world instead.
                Err(e @ EngineError::StateSpaceTooLarge { .. }) => {
                    sample(&nq, Some(&format!("regular: {e}")))
                }
                Err(e) => Err(e),
            },
            QueryClass::ExtendedRegular => match ExtendedRegularEvaluator::new(db, &nq) {
                Ok(eval) => Ok(CompiledQuery::Extended { db, eval }),
                Err(e @ EngineError::StateSpaceTooLarge { .. }) => {
                    sample(&nq, Some(&format!("extended: {e}")))
                }
                Err(e) => Err(e),
            },
            QueryClass::Safe => {
                // A classified-safe query can still fall outside the exact
                // algebra (planner refusal or unsupported seq shape), which
                // the planner and executor report as `NotInClass`; only
                // those documented refusals fall back to the sampler.
                // Anything else (model errors, caps) is a real failure and
                // propagates.
                match compile_safe_plan(db.catalog(), &nq)
                    .map_err(EngineError::from)
                    .and_then(|plan| SafePlanExecutor::new(db, &plan))
                {
                    Ok(exec) => Ok(CompiledQuery::Safe { exec, t: 0 }),
                    Err(EngineError::Query(QueryError::NotInClass(reason))) => {
                        sample(&nq, Some(&reason))
                    }
                    Err(e) => Err(e),
                }
            }
            QueryClass::Unsafe => sample(&nq, None),
        }
    }

    /// One-shot: the full probability series of a textual query.
    pub fn prob_series(db: &Database, src: &str) -> Result<Vec<f64>, EngineError> {
        let horizon = db.horizon();
        Self::compile_with(db, src, CompileOptions::new())?.prob_series(horizon)
    }

    /// The class a textual query falls into (parse + classify only).
    pub fn classify(db: &Database, src: &str) -> Result<QueryClass, EngineError> {
        let q = parse_and_validate(db.catalog(), db.interner(), src)?;
        Ok(classify(db.catalog(), &NormalQuery::from_query(&q)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahar_model::StreamBuilder;
    use lahar_query::prob_series as oracle_series;

    fn db() -> Database {
        let mut db = Database::new();
        db.declare_stream("At", &["person"], &["loc"]).unwrap();
        db.declare_stream("Door", &["id"], &["state"]).unwrap();
        db.declare_relation("Hallway", 1).unwrap();
        let i = db.interner().clone();
        db.insert_relation_tuple("Hallway", lahar_model::tuple([i.intern("h")]))
            .unwrap();
        for (p, pa) in [("joe", 0.5), ("sue", 0.3)] {
            let b = StreamBuilder::new(&i, "At", &[p], &["a", "h", "c"]);
            let ms = vec![
                b.marginal(&[("a", pa)]).unwrap(),
                b.marginal(&[("h", 0.6)]).unwrap(),
                b.marginal(&[("c", 0.5), ("h", 0.1)]).unwrap(),
            ];
            db.add_stream(b.independent(ms).unwrap()).unwrap();
        }
        let b = StreamBuilder::new(&i, "Door", &["d1"], &["open", "closed"]);
        let ms = vec![
            b.marginal(&[("closed", 0.9)]).unwrap(),
            b.marginal(&[("open", 0.4)]).unwrap(),
            b.marginal(&[("open", 0.7)]).unwrap(),
        ];
        db.add_stream(b.independent(ms).unwrap()).unwrap();
        db
    }

    #[test]
    fn dispatch_matches_classification() {
        let db = db();
        let cases = [
            ("At('joe','a') ; At('joe','c')", Algorithm::Regular),
            ("At(p,'a') ; At(p,'c')", Algorithm::ExtendedRegular),
            ("At(p,'a') ; At(p,'h') ; Door('d1', s)", Algorithm::SafePlan),
            ("sigma[x = y](At(x,'a') ; At(y,'c'))", Algorithm::Sampling),
        ];
        for (src, algo) in cases {
            let c = Lahar::compile_with(&db, src, CompileOptions::new()).unwrap();
            assert_eq!(c.algorithm(), algo, "{src}");
        }
    }

    #[test]
    fn exact_paths_match_oracle_end_to_end() {
        let db = db();
        for src in [
            "At('joe','a') ; At('joe','c')",
            "At(p,'a') ; At(p,'c')",
            "At(p,'a') ; At(p,'h') ; Door('d1', s)",
        ] {
            let got = Lahar::prob_series(&db, src).unwrap();
            let q = lahar_query::parse_query(db.interner(), src).unwrap();
            let want = oracle_series(&db, &q).unwrap();
            for (t, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() < 1e-9, "{src} t={t}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn classification_facade() {
        let db = db();
        assert_eq!(
            Lahar::classify(&db, "At('joe','a')").unwrap(),
            QueryClass::Regular
        );
        assert_eq!(
            Lahar::classify(&db, "At(p,'a') ; At(p,'c')").unwrap(),
            QueryClass::ExtendedRegular
        );
    }

    #[test]
    fn invalid_queries_surface_errors() {
        let db = db();
        assert!(Lahar::compile_with(&db, "Nope(x)", CompileOptions::new()).is_err());
        assert!(Lahar::compile_with(&db, "At(x", CompileOptions::new()).is_err());
    }

    /// Instrumented compilation records sampler use, and distinguishes
    /// genuinely unsafe queries (no fallback — sampling is the plan)
    /// from exact-path refusals (fallback, with the documented reason).
    #[test]
    fn instrumented_compilation_records_fallbacks() {
        let mut db = db();
        let i = db.interner().clone();
        db.declare_relation("OpenState", 1).unwrap();
        db.insert_relation_tuple("OpenState", lahar_model::tuple([i.intern("open")]))
            .unwrap();

        let stats = EngineStats::new();
        let q = parse_and_validate(
            db.catalog(),
            db.interner(),
            "sigma[x = y](At(x,'a') ; At(y,'c'))",
        )
        .unwrap();
        let c = Lahar::compile_with(&db, &q, CompileOptions::new().instrument(&stats)).unwrap();
        assert_eq!(c.algorithm(), Algorithm::Sampling);
        let snap = stats.snapshot();
        assert_eq!(snap.fallbacks, 0, "unsafe is not a fallback");
        assert_eq!(snap.sampler_compilations, 1);
        assert!(snap.sampler_worlds > 0);

        // Classified safe, but the outer selection associates a predicate
        // with the seq-appended item, a shape the exact algebra does not
        // cover: falls back, and the reason lands in the snapshot.
        let stats = EngineStats::new();
        let src = "sigma[OpenState(s)](At(p,'a') ; At(p,'h') ; Door('d1', s))";
        let q = parse_and_validate(db.catalog(), db.interner(), src).unwrap();
        assert_eq!(
            classify(db.catalog(), &NormalQuery::from_query(&q)),
            QueryClass::Safe
        );
        let c = Lahar::compile_with(&db, &q, CompileOptions::new().instrument(&stats)).unwrap();
        assert_eq!(c.algorithm(), Algorithm::Sampling);
        let snap = stats.snapshot();
        assert_eq!(snap.fallbacks, 1);
        let (reason, count) = snap.fallback_reasons.iter().next().unwrap();
        assert_eq!(*count, 1);
        assert!(reason.contains("seq with associated predicate"), "{reason}");
    }
}
