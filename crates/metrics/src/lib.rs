//! # lahar-metrics — event-detection quality metrics
//!
//! Precision / recall / F1 with skew-tolerant matching, following the
//! paper's methodology (§4.2): probabilistic answers are thresholded at
//! `ρ`, consecutive satisfied timesteps form one detected *episode*, and a
//! detected episode counts as correct when it lies within `d` ticks of a
//! ground-truth episode (ground-truth annotations are themselves noisy, so
//! exact-timestamp matching would be meaningless).

#![warn(missing_docs)]

/// A detected or ground-truth event episode: a maximal run of consecutive
/// satisfied timesteps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Episode {
    /// First satisfied timestep.
    pub start: u32,
    /// Last satisfied timestep (inclusive).
    pub end: u32,
}

impl Episode {
    /// Temporal gap between two episodes (0 when they overlap).
    pub fn distance(&self, other: &Episode) -> u32 {
        if other.start > self.end {
            other.start - self.end
        } else {
            self.start.saturating_sub(other.end)
        }
    }
}

/// Collapses a boolean satisfaction series into episodes.
pub fn episodes(sat: &[bool]) -> Vec<Episode> {
    let mut out = Vec::new();
    let mut start: Option<u32> = None;
    for (t, &s) in sat.iter().enumerate() {
        match (s, start) {
            (true, None) => start = Some(t as u32),
            (false, Some(st)) => {
                out.push(Episode {
                    start: st,
                    end: t as u32 - 1,
                });
                start = None;
            }
            _ => {}
        }
    }
    if let Some(st) = start {
        out.push(Episode {
            start: st,
            end: sat.len() as u32 - 1,
        });
    }
    out
}

/// Thresholds a probability series at `rho`: satisfied when `p > rho`
/// (the paper's convention: "we only consider that the event occurred if
/// p > ρ").
pub fn threshold(probs: &[f64], rho: f64) -> Vec<bool> {
    probs.iter().map(|&p| p > rho).collect()
}

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// Fraction of detected episodes that correspond to real ones.
    pub precision: f64,
    /// Fraction of real episodes that were detected.
    pub recall: f64,
    /// Harmonic mean of the two.
    pub f1: f64,
}

impl Quality {
    /// Combines precision and recall (F1 = 0 when both are 0).
    pub fn new(precision: f64, recall: f64) -> Self {
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// Scores detected episodes against ground-truth episodes with skew
/// tolerance `d`: a detection is a true positive when within `d` of some
/// truth episode, and a truth episode is found when within `d` of some
/// detection. With no detections, precision is defined as 1 (nothing
/// claimed, nothing wrong); with no truth episodes, recall is 1.
pub fn score(detected: &[Episode], truth: &[Episode], d: u32) -> Quality {
    let precision = if detected.is_empty() {
        1.0
    } else {
        let tp = detected
            .iter()
            .filter(|e| truth.iter().any(|r| e.distance(r) <= d))
            .count();
        tp as f64 / detected.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        let found = truth
            .iter()
            .filter(|r| detected.iter().any(|e| e.distance(r) <= d))
            .count();
        found as f64 / truth.len() as f64
    };
    Quality::new(precision, recall)
}

/// Full pipeline for one probabilistic answer series: threshold at `rho`,
/// extract episodes, and score against truth episodes.
pub fn score_probabilistic(probs: &[f64], truth: &[Episode], rho: f64, d: u32) -> Quality {
    score(&episodes(&threshold(probs, rho)), truth, d)
}

/// Sweeps the threshold over `rhos`, returning one [`Quality`] per value —
/// the x-axis of the paper's Figs 9 and 10.
pub fn threshold_sweep(
    probs: &[f64],
    truth: &[Episode],
    rhos: &[f64],
    d: u32,
) -> Vec<(f64, Quality)> {
    rhos.iter()
        .map(|&rho| (rho, score_probabilistic(probs, truth, rho, d)))
        .collect()
}

/// Merges per-key episode sets (e.g. one detection series per person) into
/// one scored aggregate: episodes are matched within their own key only,
/// and the counts pool across keys.
pub fn score_per_key(pairs: &[(Vec<Episode>, Vec<Episode>)], d: u32) -> Quality {
    let mut detected_total = 0usize;
    let mut tp = 0usize;
    let mut truth_total = 0usize;
    let mut found = 0usize;
    for (detected, truth) in pairs {
        detected_total += detected.len();
        tp += detected
            .iter()
            .filter(|e| truth.iter().any(|r| e.distance(r) <= d))
            .count();
        truth_total += truth.len();
        found += truth
            .iter()
            .filter(|r| detected.iter().any(|e| e.distance(r) <= d))
            .count();
    }
    let precision = if detected_total == 0 {
        1.0
    } else {
        tp as f64 / detected_total as f64
    };
    let recall = if truth_total == 0 {
        1.0
    } else {
        found as f64 / truth_total as f64
    };
    Quality::new(precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_extraction() {
        let sat = [false, true, true, false, true, false, false, true];
        let eps = episodes(&sat);
        assert_eq!(
            eps,
            vec![
                Episode { start: 1, end: 2 },
                Episode { start: 4, end: 4 },
                Episode { start: 7, end: 7 },
            ]
        );
        assert!(episodes(&[]).is_empty());
        assert_eq!(episodes(&[true, true]), vec![Episode { start: 0, end: 1 }]);
    }

    #[test]
    fn episode_distance() {
        let a = Episode { start: 2, end: 4 };
        let b = Episode { start: 6, end: 8 };
        assert_eq!(a.distance(&b), 2);
        assert_eq!(b.distance(&a), 2);
        let c = Episode { start: 4, end: 5 };
        assert_eq!(a.distance(&c), 0);
        assert_eq!(a.distance(&a), 0);
    }

    #[test]
    fn thresholding_is_strict() {
        let probs = [0.1, 0.5, 0.50001, 0.9];
        assert_eq!(threshold(&probs, 0.5), vec![false, false, true, true]);
    }

    #[test]
    fn perfect_detection_scores_one() {
        let truth = vec![Episode { start: 3, end: 5 }];
        let q = score(&truth.clone(), &truth, 0);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1, 1.0);
    }

    #[test]
    fn skew_tolerance_rescues_near_misses() {
        let truth = vec![Episode { start: 10, end: 12 }];
        let detected = vec![Episode { start: 14, end: 15 }];
        assert_eq!(score(&detected, &truth, 1).precision, 0.0);
        assert_eq!(score(&detected, &truth, 2).precision, 1.0);
        assert_eq!(score(&detected, &truth, 2).recall, 1.0);
    }

    #[test]
    fn spurious_detections_hurt_precision_only() {
        let truth = vec![Episode { start: 10, end: 10 }];
        let detected = vec![
            Episode { start: 10, end: 10 },
            Episode { start: 50, end: 50 },
        ];
        let q = score(&detected, &truth, 2);
        assert_eq!(q.precision, 0.5);
        assert_eq!(q.recall, 1.0);
        assert!((q.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn missed_events_hurt_recall_only() {
        let truth = vec![
            Episode { start: 10, end: 10 },
            Episode { start: 50, end: 50 },
        ];
        let detected = vec![Episode { start: 10, end: 10 }];
        let q = score(&detected, &truth, 2);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 0.5);
    }

    #[test]
    fn empty_edge_cases() {
        let q = score(&[], &[], 2);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        let q = score(&[], &[Episode { start: 1, end: 1 }], 2);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1, 0.0);
    }

    #[test]
    fn sweep_finds_the_sweet_spot() {
        let probs = vec![0.0, 0.2, 0.9, 0.9, 0.1, 0.6, 0.0];
        let truth = vec![Episode { start: 2, end: 3 }];
        let sweep = threshold_sweep(&probs, &truth, &[0.1, 0.3, 0.5, 0.7], 1);
        // At ρ = 0.7 only the true spike remains.
        let last = sweep.last().unwrap().1;
        assert_eq!(last.precision, 1.0);
        assert_eq!(last.recall, 1.0);
        // At ρ = 0.1 the spurious 0.6 and 0.2 bumps hurt precision.
        let first = sweep[0].1;
        assert!(first.precision < 1.0);
    }

    #[test]
    fn per_key_pooling() {
        let pairs = vec![
            (
                vec![Episode { start: 1, end: 1 }],
                vec![Episode { start: 1, end: 1 }],
            ),
            (
                vec![Episode { start: 9, end: 9 }],
                vec![Episode { start: 1, end: 1 }],
            ),
        ];
        let q = score_per_key(&pairs, 0);
        assert_eq!(q.precision, 0.5);
        assert_eq!(q.recall, 0.5);
    }
}
