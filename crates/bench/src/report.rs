//! Machine-readable benchmark results.
//!
//! Benches append their headline numbers to `BENCH_streaming.json` at
//! the repository root so the perf trajectory is tracked across PRs.
//! The file is one JSON object keyed by section name (one section per
//! bench target); [`write_section`] does a read-modify-write, so the
//! throughput and resilience benches can each own a section without
//! clobbering the other's.
//!
//! Uses the workspace's dependency-free JSON support
//! ([`lahar_core::json`]) — parse the existing document, replace one
//! section, re-encode the whole tree with sorted keys and two-space
//! indentation (stable output → reviewable diffs).

use lahar_core::json::{self, JsonValue};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// `BENCH_streaming.json` at the repository root (resolved relative to
/// this crate's manifest, so it works from any working directory).
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_streaming.json")
}

/// A number value for [`write_section`] fields.
pub fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

/// A string value for [`write_section`] fields.
pub fn text(v: &str) -> JsonValue {
    JsonValue::String(v.to_owned())
}

/// Replaces section `name` of the report at `path` with `fields`
/// (read-modify-write; other sections survive). A missing or unreadable
/// document starts fresh. Returns the path written.
pub fn write_section_at(
    path: &Path,
    name: &str,
    fields: Vec<(&str, JsonValue)>,
) -> std::io::Result<()> {
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .and_then(|v| match v {
            JsonValue::Object(map) => Some(map),
            _ => None,
        })
        .unwrap_or_default();
    let section: BTreeMap<String, JsonValue> =
        fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
    doc.insert(name.to_owned(), JsonValue::Object(section));
    std::fs::write(path, render(&JsonValue::Object(doc)))
}

/// [`write_section_at`] against [`default_path`], logging (not failing)
/// on I/O errors so a read-only checkout never breaks a bench run.
pub fn write_section(name: &str, fields: Vec<(&str, JsonValue)>) {
    let path = default_path();
    match write_section_at(&path, name, fields) {
        Ok(()) => println!("\nwrote section '{name}' to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}

/// Renders a [`JsonValue`] tree with two-space indentation, sorted
/// object keys, and shortest-round-trip floats.
pub fn render(v: &JsonValue) -> String {
    let mut out = String::with_capacity(1024);
    render_into(&mut out, v, 0);
    out.push('\n');
    out
}

fn render_into(out: &mut String, v: &JsonValue, depth: usize) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(n) => json::push_f64(out, *n),
        JsonValue::String(s) => json::push_string(out, s),
        JsonValue::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, depth + 1);
                render_into(out, item, depth + 1);
            }
            newline_indent(out, depth);
            out.push(']');
        }
        JsonValue::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, depth + 1);
                json::push_string(out, k);
                out.push_str(": ");
                render_into(out, item, depth + 1);
            }
            newline_indent(out, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_survive_read_modify_write() {
        let path = std::env::temp_dir().join("lahar_bench_report_test.json");
        let _ = std::fs::remove_file(&path);
        write_section_at(
            &path,
            "throughput",
            vec![("ticks_per_sec", num(1234.5)), ("mode", text("quick"))],
        )
        .unwrap();
        write_section_at(&path, "resilience", vec![("checkpoint_ms", num(0.5))]).unwrap();
        // Overwriting a section replaces only that section.
        write_section_at(&path, "throughput", vec![("ticks_per_sec", num(2000.0))]).unwrap();
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("throughput")
                .unwrap()
                .get("ticks_per_sec")
                .unwrap()
                .as_f64(),
            Some(2000.0)
        );
        assert!(doc.get("throughput").unwrap().get("mode").is_none());
        assert_eq!(
            doc.get("resilience")
                .unwrap()
                .get("checkpoint_ms")
                .unwrap()
                .as_f64(),
            Some(0.5)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn render_round_trips() {
        let doc = JsonValue::Object(BTreeMap::from([
            ("a".to_owned(), num(0.1 + 0.2)),
            ("b".to_owned(), JsonValue::Array(vec![num(1.0), text("x")])),
            ("empty".to_owned(), JsonValue::Object(BTreeMap::new())),
        ]));
        let text = render(&doc);
        assert_eq!(json::parse(&text).unwrap(), doc);
    }
}
