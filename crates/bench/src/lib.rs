//! # lahar-bench — experiment harness
//!
//! Shared workload generators and reporting helpers for the benchmark
//! targets that regenerate every table and figure of the paper's
//! evaluation (§4). Each figure is a `[[bench]]` target with
//! `harness = false`; `cargo bench` runs them all and prints paper-style
//! rows. See `EXPERIMENTS.md` for the paper-vs-measured record.

#![warn(missing_docs)]

use lahar_model::Database;
use lahar_rfid::{Deployment, DeploymentConfig, MovementConfig};
use std::time::Instant;

pub mod report;

/// Returns true when `LAHAR_BENCH_QUICK` is set: benches shrink their
/// sweeps for smoke-testing.
pub fn quick_mode() -> bool {
    std::env::var_os("LAHAR_BENCH_QUICK").is_some()
}

/// The deployment used by the quality experiments (Figs 9/10): the
/// two-floor building with 8 people, mirroring Fig 8(a) at laptop scale.
pub fn quality_deployment(ticks: usize, seed: u64) -> Deployment {
    Deployment::simulate(DeploymentConfig {
        ticks,
        n_people: 8,
        n_objects: 0,
        seed,
        antenna_every: 1,
        sensing: lahar_rfid::SensingConfig {
            read_rate: 0.7,
            spill_rate: 0.15,
        },
        ..DeploymentConfig::default()
    })
}

/// The deployment used by the performance experiments (Figs 12/13): `n`
/// concurrently tracked tags moving for `ticks` ticks (the paper's
/// "simulate n objects moving simultaneously for 60 seconds").
pub fn perf_deployment(n_tags: usize, ticks: usize, seed: u64) -> Deployment {
    let n_people = n_tags.clamp(1, 20);
    let n_objects = n_tags - n_people;
    Deployment::simulate(DeploymentConfig {
        ticks,
        n_people,
        n_objects,
        seed,
        movement: MovementConfig {
            dwell_mean: 6.0,
            ..MovementConfig::default()
        },
        ..DeploymentConfig::default()
    })
}

/// The paper's representative coffee-room query, grounded to one person:
/// outside the coffee room for two consecutive steps, then inside.
pub fn coffee_query(person: &str) -> String {
    format!(
        "At('{person}', l1)[NotRoom(l1)] ; At('{person}', l2)[NotRoom(l2)] ; \
         At('{person}', l3)[CoffeeRoom(l3)]"
    )
}

/// Q1 of §4.3: a regular query — a selection on a single stream.
pub fn q1(tag: &str) -> String {
    format!("At('{tag}', l)[Hallway(l)]")
}

/// Q2 of §4.3: an extended regular query with a sequence operator.
pub fn q2() -> &'static str {
    "At(p, l1)[Hallway(l1)] ; At(p, l2)[CoffeeRoom(l2)]"
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Median of repeated timing runs, in place. Bench arms run on small
/// shared hosts where a single run is hostage to scheduler noise (one
/// preemption mid-window reads as a multi-ten-percent swing); the
/// median of three runs is stable where a mean or single shot is not.
pub fn median(runs: &mut [f64]) -> f64 {
    assert!(!runs.is_empty(), "median of no runs");
    runs.sort_by(f64::total_cmp);
    runs[runs.len() / 2]
}

/// Relational tuple throughput: the database's tuple count over elapsed
/// seconds (the paper's tuples/sec axis).
pub fn tuples_per_sec(db: &Database, secs: f64) -> f64 {
    db.relational_tuple_count() as f64 / secs.max(1e-9)
}

/// Effective objects-per-second (paper §4.3.1, archived discussion):
/// tags × timesteps over elapsed seconds.
pub fn effective_objects_per_sec(n_tags: usize, ticks: usize, secs: f64) -> f64 {
    (n_tags * ticks) as f64 / secs.max(1e-9)
}

/// Prints a fixed-width table header.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n=== {title} ===");
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", row.join(" "));
}

/// Prints a fixed-width table row of floats.
pub fn row(label: &str, values: &[f64]) {
    let cells: Vec<String> = values
        .iter()
        .map(|v| {
            if *v == 0.0 || (*v >= 0.001 && *v < 100_000.0) {
                format!("{v:>14.3}")
            } else {
                format!("{v:>14.3e}")
            }
        })
        .collect();
    println!("{label:>14} {}", cells.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_deployment_splits_tags() {
        let d = perf_deployment(30, 20, 1);
        assert_eq!(d.people.len() + d.objects.len(), 30);
        assert_eq!(d.truth.len(), 30);
    }

    #[test]
    fn queries_parse_against_deployment_catalog() {
        let d = perf_deployment(2, 10, 1);
        let db = d.filtered_database();
        for src in [coffee_query("person0"), q1("person0"), q2().to_owned()] {
            lahar_query::parse_and_validate(db.catalog(), db.interner(), &src)
                .unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn median_picks_middle_run() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [5.0]), 5.0);
        // One wild outlier (a preempted run) does not move the median.
        assert_eq!(median(&mut [2.0, 100.0, 1.0]), 2.0);
    }

    #[test]
    fn throughput_helpers() {
        let d = perf_deployment(1, 5, 1);
        let db = d.filtered_database();
        assert!(tuples_per_sec(&db, 1.0) > 0.0);
        assert_eq!(effective_objects_per_sec(10, 60, 2.0), 300.0);
    }
}
