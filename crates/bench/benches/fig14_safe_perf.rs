//! Fig 14 — safe-plan performance.
//!
//! (a) Throughput of a Safe-but-not-Extended-Regular query vs concurrent
//! tags, against naïve sampling. The paper's query is
//! `At(p,l1); At(p,l2); At(q,l3)`; its published `seq` operator, however,
//! assumes the appended base query draws from streams disjoint from the
//! prefix, which that query violates (the same `At` streams feed both
//! sides). We therefore run the equivalent-shape Fig 6 query
//! `R(x,_); S(x,_); T('w',y)` on synthetic per-tag `R`/`S` streams and a
//! shared witness stream `T` — the identical plan
//! `seq(π₋ₓ(reg⟨x⟩(R;S)), T)` — and record the substitution in
//! EXPERIMENTS.md.
//!
//! (b) Throughput vs trace length: each interval pass costs `O(T)` and
//! `O(T²)` passes exist, so the analytic worst case decays cubically —
//! but the lazy recurrence only materializes requested (start, end) pairs
//! and decays far more slowly (the paper's observation).

use lahar_bench::*;
use lahar_core::{SafePlanExecutor, Sampler, SamplerConfig};
use lahar_model::{Database, Marginal, StreamBuilder};
use lahar_query::{compile_safe_plan, NormalQuery};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const VALUES: [&str; 4] = ["v0", "v1", "v2", "v3"];

/// Synthetic database: per tag an R and an S stream, plus one shared
/// witness stream T with key 'w'.
fn safe_db(n_tags: usize, ticks: usize, seed: u64) -> Database {
    let mut db = Database::new();
    db.declare_stream("R", &["k"], &["v"]).unwrap();
    db.declare_stream("S", &["k"], &["v"]).unwrap();
    db.declare_stream("T", &["k"], &["v"]).unwrap();
    let i = db.interner().clone();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut random_marginals = |b: &StreamBuilder, density: f64| -> Vec<Marginal> {
        (0..ticks)
            .map(|_| {
                if rng.gen::<f64>() < density {
                    let v = VALUES[rng.gen_range(0..VALUES.len())];
                    b.marginal(&[(v, 0.3 + 0.6 * rng.gen::<f64>())]).unwrap()
                } else {
                    b.marginal(&[]).unwrap()
                }
            })
            .collect()
    };
    for tag in 0..n_tags {
        for st in ["R", "S"] {
            let b = StreamBuilder::new(&i, st, &[&format!("tag{tag}")], &VALUES);
            let ms = random_marginals(&b, 0.5);
            db.add_stream(b.independent(ms).unwrap()).unwrap();
        }
    }
    let b = StreamBuilder::new(&i, "T", &["w"], &VALUES);
    let ms = random_marginals(&b, 0.4);
    db.add_stream(b.independent(ms).unwrap()).unwrap();
    db
}

const QUERY: &str = "R(x, _) ; S(x, _) ; T('w', y)";

fn run_safe(db: &Database) -> Vec<f64> {
    let q = lahar_query::parse_and_validate(db.catalog(), db.interner(), QUERY).unwrap();
    let nq = NormalQuery::from_query(&q);
    let plan = compile_safe_plan(db.catalog(), &nq).unwrap();
    let mut exec = SafePlanExecutor::new(db, &plan).unwrap();
    exec.prob_series(db.horizon()).unwrap()
}

fn main() {
    let ticks = 60;
    let tag_counts: &[usize] = if quick_mode() {
        &[1, 10]
    } else {
        &[1, 10, 25, 50, 75, 100]
    };

    header(
        "Fig 14(a): safe query throughput vs tags",
        &["tags", "safe t/s", "sampling t/s", "ratio"],
    );
    for &n in tag_counts {
        let db = safe_db(n, ticks, 3);
        let (_, safe_secs) = timed(|| std::hint::black_box(run_safe(&db)));
        let (_, sampling_secs) = timed(|| {
            let q = lahar_query::parse_and_validate(db.catalog(), db.interner(), QUERY).unwrap();
            let nq = NormalQuery::from_query(&q);
            let s = Sampler::with_config(&db, &nq, SamplerConfig::default()).unwrap();
            std::hint::black_box(s.prob_series(&db, db.horizon()));
        });
        let safe_tps = tuples_per_sec(&db, safe_secs);
        let sampling_tps = tuples_per_sec(&db, sampling_secs);
        row(
            &n.to_string(),
            &[n as f64, safe_tps, sampling_tps, safe_tps / sampling_tps],
        );
    }

    header(
        "Fig 14(b): safe query throughput vs trace length (lazy evaluation)",
        &["ticks", "safe t/s", "secs", "cubic-pred t/s"],
    );
    let lengths: &[usize] = if quick_mode() {
        &[60, 120]
    } else {
        &[60, 120, 240, 480, 960, 1920]
    };
    let mut base: Option<(usize, f64)> = None;
    for &len in lengths {
        let db = safe_db(10, len, 3);
        let (_, secs) = timed(|| std::hint::black_box(run_safe(&db)));
        let tps = tuples_per_sec(&db, secs);
        // Analytic worst case: total work O(n^3) -> throughput ~ n^-2
        // relative to the first measured point.
        let cubic = match base {
            None => {
                base = Some((len, tps));
                tps
            }
            Some((l0, t0)) => t0 * ((l0 as f64 / len as f64).powi(2)),
        };
        row(&len.to_string(), &[len as f64, tps, secs, cubic]);
    }
    println!(
        "\nshape: measured throughput should decay much more slowly than the cubic \
         worst-case prediction (paper Fig 14(b), thanks to lazy interval evaluation)."
    );
}
