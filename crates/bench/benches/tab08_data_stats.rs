//! Table/Fig 8 — deployment and data statistics.
//!
//! The paper reports its real deployment (8 people, 52 objects, 352
//! locations, 38 antennas, ~72 min) and the resulting stream sizes
//! (filtered probabilities, smoothed probabilities, smoothed CPTs, Viterbi
//! paths). This target reports the same rows for our synthetic deployment;
//! absolute sizes differ (laptop-scale building and trace) but the
//! *relationships* the paper highlights must hold: smoothed CPTs dwarf the
//! marginal encodings (≈ |support| × larger) and Viterbi paths are tiny.

use lahar_bench::quick_mode;
use lahar_rfid::{Deployment, DeploymentConfig};

fn main() {
    let ticks = if quick_mode() { 120 } else { 600 };
    let config = DeploymentConfig {
        ticks,
        n_people: 8,
        n_objects: 12,
        ..DeploymentConfig::default()
    };
    let dep = Deployment::simulate(config);

    println!("=== Table 8(a): deployment ===");
    println!("{:<22} {:>12} {:>14}", "entity", "measured", "paper");
    let rows_a = [
        ("people", dep.people.len(), "8"),
        ("objects", dep.objects.len(), "52"),
        ("locations", dep.plan.n_locations(), "352"),
        ("antennas", dep.plan.antennas().len(), "38"),
        ("duration (ticks)", dep.config.ticks, "~4300 (71.8 min)"),
    ];
    for (label, measured, paper) in rows_a {
        println!("{label:<22} {measured:>12} {paper:>14}");
    }

    let filtered = dep.filtered_database();
    let smoothed = dep.smoothed_database();
    let smoothed_indep = dep.smoothed_independent_database();
    let viterbi_tuples = dep.viterbi_tuple_count();

    println!("\n=== Table 8(b): data streams (relational tuple counts) ===");
    println!("{:<22} {:>14} {:>18}", "data", "tuples", "paper");
    let rows_b = [
        (
            "filtered probs",
            filtered.relational_tuple_count(),
            "5.2M (190MB)",
        ),
        (
            "smoothed probs",
            smoothed_indep.relational_tuple_count(),
            "5.2M (190MB)",
        ),
        (
            "smoothed CPTs",
            smoothed.relational_tuple_count(),
            "509M (26G)",
        ),
        ("viterbi paths", viterbi_tuples, "75k (2MB)"),
    ];
    for (label, measured, paper) in rows_b {
        println!("{label:<22} {measured:>14} {paper:>18}");
    }

    let cpt_blowup =
        smoothed.relational_tuple_count() as f64 / smoothed_indep.relational_tuple_count() as f64;
    println!(
        "\nCPT/marginal blow-up: {cpt_blowup:.1}x (paper: 509M/5.2M ≈ 98x; \
         scales with the per-timestep support size)"
    );
    assert!(
        cpt_blowup > 3.0,
        "smoothed CPT encoding must dominate the marginal encoding"
    );
}
