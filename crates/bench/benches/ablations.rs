//! Ablations of our design choices (DESIGN.md §4):
//!
//! 1. **Markov-exact `seq`** — the paper's algebra assumes the appended
//!    base query's occurrences are independent across timesteps; our
//!    executor computes the exact joint `P[Tp = a ∧ Tw = b]` on Markovian
//!    witness streams. How much error does the independence shortcut
//!    introduce?
//! 2. **Bitvector sampler** — word-parallel world advancement vs the
//!    scalar one-world-at-a-time reference.
//! 3. **Independent-mode chain** — the paper's "smaller automaton" for
//!    the real-time scenario: the evaluator drops the hidden component
//!    entirely. We compare against the same data forced through the joint
//!    (hidden × automaton) representation.

use lahar_bench::*;
use lahar_core::{SafePlanExecutor, Sampler, SamplerConfig};
use lahar_model::{Cpt, Database, Marginal, Stream, StreamBuilder, StreamData, StreamKey};
use lahar_query::{compile_safe_plan, NormalQuery};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Ablation 1: exact vs independence-approximated seq on a Markov witness.
fn ablation_markov_seq() {
    let mut db = Database::new();
    db.declare_stream("R", &["k"], &["v"]).unwrap();
    db.declare_stream("S", &["k"], &["v"]).unwrap();
    db.declare_stream("T", &["k"], &["v"]).unwrap();
    let i = db.interner().clone();
    let mut rng = SmallRng::seed_from_u64(21);
    let ticks = 40;
    // Prefix streams R/S share key variable x, forcing the plan shape
    // seq(π₋ₓ(reg⟨x⟩(R; S)), T) — a genuine seq node above the leaf.
    for st in ["R", "S"] {
        for key in ["k1", "k2"] {
            let b = StreamBuilder::new(&i, st, &[key], &["x"]);
            let ms = (0..ticks)
                .map(|_| b.marginal(&[("x", rng.gen_range(0.0..0.5))]).unwrap())
                .collect();
            db.add_stream(b.independent(ms).unwrap()).unwrap();
        }
    }
    // Witness stream T: a sticky Markov chain (strong temporal correlation
    // is exactly where the independence shortcut should hurt).
    let b = StreamBuilder::new(&i, "T", &["w"], &["hit", "miss"]);
    let init = b.marginal(&[("hit", 0.1), ("miss", 0.9)]).unwrap();
    let cpt = b
        .cpt(&[
            ("hit", "hit", 0.9),
            ("hit", "miss", 0.1),
            ("miss", "miss", 0.95),
            ("miss", "hit", 0.05),
        ])
        .unwrap();
    db.add_stream(b.markov(init, vec![cpt; ticks - 1]).unwrap())
        .unwrap();

    let q = lahar_query::parse_and_validate(
        db.catalog(),
        db.interner(),
        "R(x, _) ; S(x, _) ; T('w', 'hit')",
    )
    .unwrap();
    let nq = NormalQuery::from_query(&q);
    let plan = compile_safe_plan(db.catalog(), &nq).unwrap();
    let exact = SafePlanExecutor::new(&db, &plan)
        .unwrap()
        .prob_series(db.horizon())
        .unwrap();
    let approx = SafePlanExecutor::new_with_independence_approx(&db, &plan)
        .unwrap()
        .prob_series(db.horizon())
        .unwrap();
    let max_err = exact
        .iter()
        .zip(&approx)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    let mean_err = exact
        .iter()
        .zip(&approx)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / exact.len() as f64;
    header(
        "Ablation 1: Markov-exact seq vs independence approximation",
        &["max |err|", "mean |err|"],
    );
    row("", &[max_err, mean_err]);
    assert!(
        max_err > 1e-3,
        "the approximation should differ measurably on sticky chains (got {max_err})"
    );
}

/// Ablation 2: bitvector vs scalar sampling throughput.
fn ablation_bitvector() {
    let n_tags = if quick_mode() { 5 } else { 25 };
    let dep = perf_deployment(n_tags, 60, 13);
    let db = dep.filtered_database();
    let q = lahar_query::parse_and_validate(db.catalog(), db.interner(), q2()).unwrap();
    let nq = NormalQuery::from_query(&q);
    let config = SamplerConfig::default();

    let (series_bits, bit_secs) = timed(|| {
        Sampler::with_config(&db, &nq, config)
            .unwrap()
            .prob_series(&db, db.horizon())
    });
    let (series_scalar, scalar_secs) = timed(|| {
        Sampler::with_config(&db, &nq, config)
            .unwrap()
            .prob_series_scalar(&db, db.horizon())
    });
    // Identical seeds: the two implementations simulate the same worlds.
    let max_diff = series_bits
        .iter()
        .zip(&series_scalar)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    header(
        "Ablation 2: bitvector vs scalar sampling",
        &["bitvec secs", "scalar secs", "speedup", "max diff"],
    );
    row(
        "",
        &[bit_secs, scalar_secs, scalar_secs / bit_secs, max_diff],
    );
    assert!(max_diff < 1e-12, "same seed must give identical estimates");
}

/// Ablation 3: independent fast path vs forced joint chain.
fn ablation_independent_fast_path() {
    let dep = perf_deployment(if quick_mode() { 2 } else { 10 }, 60, 17);
    let db = dep.filtered_database();

    // The same data re-encoded as (rank-1) Markov streams forces the
    // evaluator into the joint (hidden × automaton) representation.
    let mut joint_db = dep.base_database();
    for s in db.streams() {
        let marginals = s.all_marginals();
        let cpts: Vec<Cpt> = marginals[1..].iter().map(Cpt::independent).collect();
        let initial: Marginal = marginals[0].clone();
        joint_db
            .add_stream(
                Stream::markov(
                    StreamKey {
                        stream_type: s.id().stream_type,
                        key: s.id().key.clone(),
                    },
                    s.domain().clone(),
                    initial,
                    cpts,
                )
                .unwrap(),
            )
            .unwrap();
        assert!(matches!(
            joint_db.streams().last().unwrap().data(),
            StreamData::Markov { .. }
        ));
    }

    let run = |db: &Database| {
        let (out, secs) = timed(|| {
            let mut total = Vec::new();
            for tag in dep.tag_names() {
                let s = lahar_core::Lahar::prob_series(db, &q1(&tag)).unwrap();
                total.push(s);
            }
            total
        });
        (out, secs)
    };
    let (fast, fast_secs) = run(&db);
    let (joint, joint_secs) = run(&joint_db);
    let max_diff = fast
        .iter()
        .flatten()
        .zip(joint.iter().flatten())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    header(
        "Ablation 3: independent-mode chain vs forced joint chain",
        &["indep secs", "joint secs", "speedup", "max diff"],
    );
    row(
        "",
        &[fast_secs, joint_secs, joint_secs / fast_secs, max_diff],
    );
    assert!(max_diff < 1e-9, "the two representations must agree");
}

/// Ablation 4: the paper's CPT pruning (§4.3.2) — storage vs quality.
fn ablation_cpt_pruning() {
    let ticks = if quick_mode() { 120 } else { 400 };
    let dep = quality_deployment(ticks, 42);
    let smoothed = dep.smoothed_database();
    let query = coffee_query("person0");
    let reference = lahar_core::Lahar::prob_series(&smoothed, &query).unwrap();
    let full_tuples = smoothed.relational_tuple_count() as f64;

    header(
        "Ablation 4: CPT pruning (paper §4.3.2: 26GB -> ~1GB, no quality loss)",
        &["epsilon", "size ratio", "max |err|"],
    );
    for eps in [1e-4, 1e-3, 1e-2, 5e-2] {
        let mut pruned_db = dep.base_database();
        for s in smoothed.streams() {
            pruned_db.add_stream(s.pruned(eps)).unwrap();
        }
        let probs = lahar_core::Lahar::prob_series(&pruned_db, &query).unwrap();
        let max_err = probs
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let ratio = pruned_db.relational_tuple_count() as f64 / full_tuples;
        row(&format!("{eps:.0e}"), &[eps, ratio, max_err]);
    }
    println!("expected shape: large size reductions at small ε with negligible error.");
}

fn main() {
    ablation_markov_seq();
    ablation_bitvector();
    ablation_independent_fast_path();
    ablation_cpt_pruning();
    println!("\nall ablations complete.");
}
