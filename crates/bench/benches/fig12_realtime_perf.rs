//! Fig 12 — real-time throughput vs concurrent tags, for Q1 (regular
//! selection) and Q2 (extended regular with a sequence).
//!
//! Competitors: the MLE baseline (deterministic CEP on the argmax stream)
//! and naïve random sampling at the paper's ε = δ = 0.1.
//!
//! Paper shape to reproduce: MLE is less than ~2x faster than Lahar on
//! independent streams, while sampling is orders of magnitude slower and
//! degrades further on Q2.

use lahar_baselines::{mle_world, DeterministicCep};
use lahar_bench::*;
use lahar_core::{ExtendedRegularEvaluator, RegularEvaluator, Sampler, SamplerConfig};
use lahar_query::NormalQuery;

fn main() {
    let ticks = 60;
    let tag_counts: &[usize] = if quick_mode() {
        &[1, 10, 25]
    } else {
        &[1, 10, 25, 50, 75, 100]
    };

    for (qname, extended) in [
        ("Q1 (regular selection)", false),
        ("Q2 (ext. regular seq)", true),
    ] {
        header(
            &format!("Fig 12: real-time throughput, {qname}"),
            &["tags", "lahar t/s", "mle t/s", "sampling t/s", "lahar/mle"],
        );
        for &n in tag_counts {
            let dep = perf_deployment(n, ticks, 7);
            let db = dep.filtered_database();
            let tags = dep.tag_names();

            // Lahar.
            let (_, lahar_secs) = timed(|| {
                if extended {
                    let q =
                        lahar_query::parse_and_validate(db.catalog(), db.interner(), q2()).unwrap();
                    let nq = NormalQuery::from_query(&q);
                    let eval = ExtendedRegularEvaluator::new(&db, &nq).unwrap();
                    let s = eval.prob_series(&db, db.horizon());
                    std::hint::black_box(s);
                } else {
                    for tag in &tags {
                        let q =
                            lahar_query::parse_and_validate(db.catalog(), db.interner(), &q1(tag))
                                .unwrap();
                        let nq = NormalQuery::from_query(&q);
                        let eval = RegularEvaluator::new(&db, &nq).unwrap();
                        std::hint::black_box(eval.prob_series(&db, db.horizon()));
                    }
                }
            });

            // MLE baseline: determinize once, then deterministic CEP.
            let (_, mle_secs) = timed(|| {
                let world = mle_world(&db);
                if extended {
                    let q =
                        lahar_query::parse_and_validate(db.catalog(), db.interner(), q2()).unwrap();
                    let nq = NormalQuery::from_query(&q);
                    let cep = DeterministicCep::new(&db, &world, &nq).unwrap();
                    std::hint::black_box(cep.detect(&db, &world).unwrap());
                } else {
                    for tag in &tags {
                        let q =
                            lahar_query::parse_and_validate(db.catalog(), db.interner(), &q1(tag))
                                .unwrap();
                        let nq = NormalQuery::from_query(&q);
                        let cep = DeterministicCep::new(&db, &world, &nq).unwrap();
                        std::hint::black_box(cep.detect(&db, &world).unwrap());
                    }
                }
            });

            // Naïve random sampling (ε = δ = 0.1 → 192 sampled worlds).
            let (_, sampling_secs) = timed(|| {
                let config = SamplerConfig::default();
                if extended {
                    let q =
                        lahar_query::parse_and_validate(db.catalog(), db.interner(), q2()).unwrap();
                    let nq = NormalQuery::from_query(&q);
                    let s = Sampler::with_config(&db, &nq, config).unwrap();
                    std::hint::black_box(s.prob_series(&db, db.horizon()));
                } else {
                    for tag in &tags {
                        let q =
                            lahar_query::parse_and_validate(db.catalog(), db.interner(), &q1(tag))
                                .unwrap();
                        let nq = NormalQuery::from_query(&q);
                        let s = Sampler::with_config(&db, &nq, config).unwrap();
                        std::hint::black_box(s.prob_series(&db, db.horizon()));
                    }
                }
            });

            let lahar_tps = tuples_per_sec(&db, lahar_secs);
            let mle_tps = tuples_per_sec(&db, mle_secs);
            let sampling_tps = tuples_per_sec(&db, sampling_secs);
            row(
                &n.to_string(),
                &[
                    n as f64,
                    lahar_tps,
                    mle_tps,
                    sampling_tps,
                    lahar_tps / mle_tps,
                ],
            );
        }
    }
    println!(
        "\nshape: MLE within ~2x of Lahar; sampling orders of magnitude slower (paper Fig 12)."
    );
}
