//! Criterion micro-benchmarks of the engine's hot paths: NFA stepping,
//! chain evaluation in both modes, interval recurrences, the sampler, and
//! the deterministic CEP baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use lahar_bench::{perf_deployment, q1, q2};
use lahar_core::{ChainEvaluator, ExtendedRegularEvaluator, IntervalChain, Sampler, SamplerConfig};
use lahar_query::{parse_and_validate, NormalQuery};
use std::hint::black_box;

fn nq(db: &lahar_model::Database, src: &str) -> NormalQuery {
    let q = parse_and_validate(db.catalog(), db.interner(), src).unwrap();
    NormalQuery::from_query(&q)
}

fn bench_chain_step(c: &mut Criterion) {
    let dep = perf_deployment(1, 60, 3);
    let filtered = dep.filtered_database();
    let smoothed = dep.smoothed_database();
    let q = nq(&filtered, &q1("person0"));

    c.bench_function("chain_step_independent", |b| {
        b.iter_batched(
            || ChainEvaluator::new(&filtered, &q.items).unwrap(),
            |mut chain| {
                for _ in 0..60 {
                    black_box(chain.step(&filtered));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    let qm = nq(&smoothed, &q1("person0"));
    c.bench_function("chain_step_markov", |b| {
        b.iter_batched(
            || ChainEvaluator::new(&smoothed, &qm.items).unwrap(),
            |mut chain| {
                for _ in 0..60 {
                    black_box(chain.step(&smoothed));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_extended(c: &mut Criterion) {
    let dep = perf_deployment(20, 60, 3);
    let db = dep.filtered_database();
    let q = nq(&db, q2());
    c.bench_function("extended_regular_20_tags_60_ticks", |b| {
        b.iter_batched(
            || ExtendedRegularEvaluator::new(&db, &q).unwrap(),
            |eval| black_box(eval.prob_series(&db, db.horizon())),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_interval(c: &mut Criterion) {
    let dep = perf_deployment(1, 60, 3);
    let db = dep.smoothed_database();
    let q = nq(&db, &q1("person0"));
    c.bench_function("interval_chain_full_triangle_60", |b| {
        b.iter_batched(
            || IntervalChain::new(&db, &q.items).unwrap(),
            |mut ic| {
                for ts in (0..60).step_by(6) {
                    black_box(ic.prob(&db, ts, 59));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_sampler(c: &mut Criterion) {
    let dep = perf_deployment(1, 60, 3);
    let db = dep.filtered_database();
    let q = nq(&db, &q1("person0"));
    c.bench_function("sampler_192_worlds_60_ticks", |b| {
        b.iter(|| {
            let s = Sampler::with_config(&db, &q, SamplerConfig::default()).unwrap();
            black_box(s.prob_series(&db, db.horizon()))
        })
    });
}

fn bench_cep_baseline(c: &mut Criterion) {
    let dep = perf_deployment(1, 60, 3);
    let db = dep.filtered_database();
    let world = lahar_baselines::mle_world(&db);
    let q = nq(&db, &q1("person0"));
    c.bench_function("deterministic_cep_60_ticks", |b| {
        b.iter(|| {
            let cep = lahar_baselines::DeterministicCep::new(&db, &world, &q).unwrap();
            black_box(cep.detect(&db, &world).unwrap())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_chain_step, bench_extended, bench_interval, bench_sampler, bench_cep_baseline
}
criterion_main!(benches);
