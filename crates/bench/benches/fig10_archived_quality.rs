//! Fig 10 — archived quality: precision / recall / F1 vs ρ, Lahar on
//! Markovian (smoothed) streams vs the Viterbi MAP baseline, plus the
//! paper's ablation: the same smoothed marginals with correlations
//! *discarded* (treated as independent), which costs precision (§4.2.1
//! reports an 8-point drop).
//!
//! Paper shape to reproduce: the archived gains dwarf the real-time ones —
//! Viterbi's forced single path misses short or ambiguous events (the
//! paper reports a 47-point recall gap at ρ ≈ 0.12), and Lahar(Markov)
//! dominates Viterbi's F1 across the whole ρ range.

use lahar_baselines::detect_series;
use lahar_bench::{coffee_query, header, quality_deployment, quick_mode, row};
use lahar_core::Lahar;
use lahar_metrics::{episodes, score_per_key, threshold, Episode};

fn main() {
    let ticks = if quick_mode() { 200 } else { 800 };
    let dep = quality_deployment(ticks, 42);
    let base = dep.base_database();
    let truth_world = dep.truth_world(&base);
    let smoothed = dep.smoothed_database();
    let smoothed_indep = dep.smoothed_independent_database();
    let viterbi = dep.viterbi_world(&base);
    let d = 15;

    let mut markov_series = Vec::new();
    let mut indep_series = Vec::new();
    let mut truth_eps = Vec::new();
    let mut viterbi_eps = Vec::new();
    let mut total_truth = 0;
    for p in &dep.people {
        let q = coffee_query(&p.name);
        let t = episodes(&detect_series(&base, &truth_world, &q).unwrap());
        total_truth += t.len();
        truth_eps.push(t);
        markov_series.push(Lahar::prob_series(&smoothed, &q).unwrap());
        indep_series.push(Lahar::prob_series(&smoothed_indep, &q).unwrap());
        viterbi_eps.push(episodes(&detect_series(&base, &viterbi, &q).unwrap()));
    }
    println!(
        "{} ground-truth coffee events across {} people",
        total_truth,
        dep.people.len()
    );

    let vit_pairs: Vec<(Vec<Episode>, Vec<Episode>)> = viterbi_eps
        .iter()
        .cloned()
        .zip(truth_eps.iter().cloned())
        .collect();
    let vit_q = score_per_key(&vit_pairs, d);

    header(
        "Fig 10: archived quality vs ρ (baseline Viterbi is ρ-independent)",
        &[
            "rho",
            "P(markov)",
            "R(markov)",
            "F1(markov)",
            "P(indep)",
            "F1(vit)",
        ],
    );
    let rhos = [0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5];
    let mut best_f1 = (0.0f64, 0.0f64); // (markov, indep)
    for &rho in &rhos {
        let score_of = |series: &[Vec<f64>]| {
            let pairs: Vec<(Vec<Episode>, Vec<Episode>)> = series
                .iter()
                .map(|s| episodes(&threshold(s, rho)))
                .zip(truth_eps.iter().cloned())
                .collect();
            score_per_key(&pairs, d)
        };
        let qm = score_of(&markov_series);
        let qi = score_of(&indep_series);
        row(
            &format!("{rho:.2}"),
            &[rho, qm.precision, qm.recall, qm.f1, qi.precision, vit_q.f1],
        );
        best_f1.0 = best_f1.0.max(qm.f1);
        best_f1.1 = best_f1.1.max(qi.f1);
    }

    println!(
        "\nViterbi MAP: P = {:.3}, R = {:.3}, F1 = {:.3}",
        vit_q.precision, vit_q.recall, vit_q.f1
    );
    println!(
        "shape checks: Lahar(Markov) best F1 {:.3} vs Viterbi {:.3} (paper: large archived gains)",
        best_f1.0, vit_q.f1
    );
    assert!(
        best_f1.0 > vit_q.f1,
        "Lahar(Markov) must beat Viterbi at its operating point"
    );
    println!(
        "correlation ablation: best F1 markov {:.3} vs independent-marginals {:.3} (Δ {:+.3}).\n\
         Note: on this synthetic deployment precision is near-saturated, so the paper's\n\
         8-point precision gain from correlations does not reproduce at this scale; the\n\
         correlation benefit shows decisively in the Fig 11 occupancy experiment instead\n\
         (see EXPERIMENTS.md).",
        best_f1.0,
        best_f1.1,
        best_f1.0 - best_f1.1
    );
}
