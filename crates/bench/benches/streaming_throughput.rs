//! Streaming-session throughput: sequential vs sharded-parallel ticks.
//!
//! Builds a push-based [`RealTimeSession`] tracking ≥1k per-key chains
//! (several extended-regular queries over hundreds of keyed streams) and
//! measures end-to-end tick throughput on both tick paths. On a
//! multi-core host the parallel path should approach `min(workers,
//! shards)`-fold speedup, since per-key chains are embarrassingly
//! parallel (Thm 3.7); on a single core it quantifies the handoff
//! overhead instead. Also prints the session's own latency telemetry
//! (`EngineStats` snapshot) for the parallel run.

use lahar_bench::report::{self, num, text};
use lahar_bench::{header, median, quick_mode, row, timed};
use lahar_core::protocol::WireMarginal;
use lahar_core::{
    Durability, LaharClient, LaharServer, RealTimeSession, Sampler, SamplerConfig, ServerConfig,
    SessionConfig, TickMode,
};
use lahar_model::{Database, Marginal, StreamBuilder};
use lahar_query::NormalQuery;

const DOMAIN: [&str; 3] = ["a", "h", "c"];
/// Chains per person: the three registered extended queries below.
const QUERIES_PER_KEY: usize = 3;
/// Timing runs per arm; every recorded figure is the median run (see
/// [`median`]), so one preempted run cannot move a committed number.
const RUNS: usize = 3;

/// Untimed warm-up ticks before each timed window. Beyond one-off setup
/// (chain compilation, shard spawning, pool spawn), the first ~24 ticks
/// of this workload are the automaton discovery transient: mass
/// propagates into new states, each lane appends local ids, and the
/// batched path rebuilds its per-group layout snapshots and transition
/// columns. Kernel counters go flat once the reachable closure is
/// discovered — the steady state a long-running streaming session
/// spends its life in, which is what the timed window measures.
fn warmup_ticks(n_ticks: usize) -> usize {
    n_ticks.max(32)
}

fn build_session(n_people: usize, mode: TickMode) -> (RealTimeSession, Vec<Vec<Marginal>>) {
    let config = SessionConfig::builder().tick_mode(mode).build().unwrap();
    build_session_with(n_people, config)
}

fn build_session_with(
    n_people: usize,
    config: SessionConfig,
) -> (RealTimeSession, Vec<Vec<Marginal>>) {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    db.declare_relation("Hallway", 1).unwrap();
    let i = db.interner().clone();
    db.insert_relation_tuple("Hallway", lahar_model::tuple([i.intern("h")]))
        .unwrap();
    let mut ticks: Vec<Vec<Marginal>> = Vec::with_capacity(n_people);
    for p in 0..n_people {
        let b = StreamBuilder::new(&i, "At", &[&format!("p{p}")], &DOMAIN);
        // A small deterministic rotation of marginals, distinct per key.
        let phase = p % 3;
        ticks.push(vec![
            b.marginal(&[(DOMAIN[phase], 0.7), (DOMAIN[(phase + 1) % 3], 0.2)])
                .unwrap(),
            b.marginal(&[(DOMAIN[(phase + 1) % 3], 0.5)]).unwrap(),
            b.marginal(&[(DOMAIN[(phase + 2) % 3], 0.6), (DOMAIN[phase], 0.1)])
                .unwrap(),
        ]);
        db.add_stream(b.independent(vec![]).unwrap()).unwrap();
    }
    let mut session = RealTimeSession::with_config(db, config).unwrap();
    session.register("q_ac", "At(p,'a') ; At(p,'c')").unwrap();
    session.register("q_hc", "At(p,'h') ; At(p,'c')").unwrap();
    session
        .register(
            "q_hall",
            "At(p,'a') ; (At(p, l))+{p | Hallway(l)} ; At(p,'c')",
        )
        .unwrap();
    assert_eq!(session.n_chains(), n_people * QUERIES_PER_KEY);
    (session, ticks)
}

/// The schema/stream template [`LaharServer`] serves from: the same
/// keyed `At` streams as [`build_session`], without a session on top.
fn build_template(n_people: usize) -> Database {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    db.declare_relation("Hallway", 1).unwrap();
    let i = db.interner().clone();
    db.insert_relation_tuple("Hallway", lahar_model::tuple([i.intern("h")]))
        .unwrap();
    for p in 0..n_people {
        let b = StreamBuilder::new(&i, "At", &[&format!("p{p}")], &DOMAIN);
        db.add_stream(b.independent(vec![]).unwrap()).unwrap();
    }
    db
}

/// Three rotating wire frames for `n_people` keyed streams — the
/// loopback serve-path workload shared by the durability and
/// observability benches.
fn loopback_frames(n_people: usize) -> Vec<Vec<WireMarginal>> {
    (0..3)
        .map(|t| {
            (0..n_people)
                .map(|p| {
                    let phase = (p + t) % 3;
                    let mut probs = vec![0.0; DOMAIN.len() + 1];
                    probs[phase] = 0.7;
                    probs[(phase + 1) % 3] = 0.2;
                    let bot = 1.0 - probs.iter().sum::<f64>();
                    *probs.last_mut().unwrap() = bot;
                    WireMarginal {
                        stream_type: "At".to_owned(),
                        key: vec![format!("p{p}")],
                        probs,
                    }
                })
                .collect()
        })
        .collect()
}

/// Ticks/s over the real serve path (in-process server + loopback TCP,
/// one `stage`+`tick` round trip per tick) at each WAL fsync policy.
fn durability_bench(n_people: usize, n_ticks: usize) -> Vec<(&'static str, f64)> {
    let frames = loopback_frames(n_people);
    let mut out = Vec::new();
    for (name, level) in [
        ("none", Durability::None),
        ("batch", Durability::Batch),
        ("always", Durability::Always),
    ] {
        let dir = std::env::temp_dir().join(format!(
            "lahar-bench-durability-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = ServerConfig::builder()
            .checkpoint_dir(&dir)
            .session_config(SessionConfig::builder().durability(level).build().unwrap())
            .build()
            .unwrap();
        let server = LaharServer::start(config, build_template(n_people)).unwrap();
        let mut client = LaharClient::connect(server.addr(), "bench").unwrap();
        client.open().unwrap();
        client.register("q_ac", "At(p,'a') ; At(p,'c')").unwrap();
        for frame in &frames {
            client.stage_tick(frame).unwrap(); // warm-up, untimed
        }
        let mut runs: Vec<f64> = (0..RUNS)
            .map(|_| {
                timed(|| {
                    for t in 0..n_ticks {
                        std::hint::black_box(client.stage_tick(&frames[t % frames.len()]).unwrap());
                    }
                })
                .1
            })
            .collect();
        let secs = median(&mut runs);
        client.shutdown_server().unwrap();
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        out.push((name, n_ticks as f64 / secs));
    }
    out
}

/// Round-trips/s over the serve path with the request-observability
/// instrumentation in its three states: tracer off (the production
/// default — one relaxed atomic load per span site), tracer on
/// (per-thread ring recording with the request id threaded through),
/// and tracer on with a zero-threshold slow log (every request writes
/// a JSONL entry — the instrumentation worst case). Same workload and
/// durability level (`none`) as [`durability_bench`]'s baseline arm,
/// so the off column is directly comparable to `ticks_per_sec_none`.
fn serve_observability_bench(n_people: usize, n_ticks: usize) -> Vec<(&'static str, f64)> {
    let frames = loopback_frames(n_people);
    let mut out = Vec::new();
    for arm in ["off", "on", "on_slowlog"] {
        let dir = std::env::temp_dir().join(format!(
            "lahar-bench-observability-{}-{arm}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut builder = ServerConfig::builder().checkpoint_dir(&dir).session_config(
            SessionConfig::builder()
                .durability(Durability::None)
                .build()
                .unwrap(),
        );
        if arm != "off" {
            lahar_core::trace::enable();
        }
        if arm == "on_slowlog" {
            builder = builder.slow_request_ms(0).slow_log(dir.join("slow.jsonl"));
        }
        let server =
            LaharServer::start(builder.build().unwrap(), build_template(n_people)).unwrap();
        let mut client = LaharClient::connect(server.addr(), "bench").unwrap();
        client.open().unwrap();
        client.register("q_ac", "At(p,'a') ; At(p,'c')").unwrap();
        for frame in &frames {
            client.stage_tick(frame).unwrap(); // warm-up, untimed
        }
        let mut runs: Vec<f64> = (0..RUNS)
            .map(|_| {
                timed(|| {
                    for t in 0..n_ticks {
                        std::hint::black_box(client.stage_tick(&frames[t % frames.len()]).unwrap());
                    }
                })
                .1
            })
            .collect();
        let secs = median(&mut runs);
        client.shutdown_server().unwrap();
        server.join().unwrap();
        lahar_core::trace::disable();
        lahar_core::trace::clear();
        let _ = std::fs::remove_dir_all(&dir);
        out.push((arm, n_ticks as f64 / secs));
    }
    out
}

fn run_ticks(session: &mut RealTimeSession, ticks: &[Vec<Marginal>], n_ticks: usize) {
    for t in 0..n_ticks {
        let batch = ticks.iter().enumerate().map(|(idx, per_key)| {
            let id = session.database().stream_id_at(idx).unwrap();
            (id, per_key[t % per_key.len()].clone())
        });
        // Collected first: `stage_batch` borrows the session mutably
        // while `database()` borrows it shared.
        let batch: Vec<_> = batch.collect();
        session.stage_batch(batch).unwrap();
        std::hint::black_box(session.tick().unwrap());
    }
}

/// Same ticks, but staged `epoch` at a time through
/// [`RealTimeSession::tick_epoch`] (one worker join per epoch).
/// The R/S/T keyed-stream database the #P-hard queries h1..h4 run on
/// (same schema as the `unsafe_queries` bench, longer horizon — no
/// exact oracle is needed here, only throughput).
fn sampler_db(seed: u64, horizon: usize) -> Database {
    let mut db = Database::new();
    for st in ["R", "S", "T"] {
        db.declare_stream(st, &["k"], &["v"]).unwrap();
    }
    let i = db.interner().clone();
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    for st in ["R", "S", "T"] {
        for key in ["k1", "k2"] {
            let b = StreamBuilder::new(&i, st, &[key], &["x"]);
            let ms = (0..horizon)
                .map(|_| b.marginal(&[("x", rng.gen_range(0.2..0.8))]).unwrap())
                .collect();
            db.add_stream(b.independent(ms).unwrap()).unwrap();
        }
    }
    db
}

/// World-steps per second of the Monte Carlo sampler on the #P-hard
/// queries h1..h4 (§3.4), word-level vs scalar. The word path advances
/// 64 Bernoulli worlds per `u64` per transition (Prop 3.20); the scalar
/// path steps one world's NFA state set at a time. h2 binds a Kleene's
/// shared variable mid-sequence — the shape the grounded-NFA simulation
/// cannot express — so both its arms run the semantic fallback
/// (speedup ≈ 1) and it is excluded from the word-level speedup floor.
fn sampler_throughput_bench() {
    const HORIZON: usize = 12;
    let queries = [
        ("h1", "sigma[x = y](R(x, _) ; S(y, _))", false),
        ("h2", "R('k1', _) ; (S(x, _))+{x}", true),
        ("h3", "R('k1', _) ; S(x, _) ; T(x, _)", false),
        ("h4", "R(x, _) ; S('k1', _) ; T(x, _)", false),
    ];
    let db = sampler_db(5, HORIZON);
    let config = SamplerConfig {
        epsilon: 0.02,
        delta: 0.01,
        seed: 1234,
        ..Default::default()
    };
    let worlds = config.n_samples();
    println!();
    header(
        "Sampler throughput (word-level vs scalar, #P-hard queries)",
        &["query", "word worlds/s", "scalar worlds/s", "speedup"],
    );
    let mut fields = vec![
        (
            "mode".to_owned(),
            text(if quick_mode() { "quick" } else { "full" }),
        ),
        ("worlds".to_owned(), num(worlds as f64)),
        ("horizon".to_owned(), num(HORIZON as f64)),
    ];
    for (name, src, fallback) in queries {
        let q = lahar_query::parse_and_validate(db.catalog(), db.interner(), src).unwrap();
        let nq = NormalQuery::from_query(&q);
        // Construction (grounding enumeration, NFA compilation, and for
        // h2 the fallback's world evaluation) is identical across arms
        // and excluded: the section prices the per-tick world loop.
        let mut word_runs: Vec<f64> = (0..RUNS)
            .map(|_| {
                let s = Sampler::with_config(&db, &nq, config).unwrap();
                timed(|| s.prob_series(&db, HORIZON as u32)).1
            })
            .collect();
        let mut scalar_runs: Vec<f64> = (0..RUNS)
            .map(|_| {
                let s = Sampler::with_config(&db, &nq, config).unwrap();
                timed(|| s.prob_series_scalar(&db, HORIZON as u32)).1
            })
            .collect();
        let world_steps = (worlds * HORIZON) as f64;
        let word_wps = world_steps / median(&mut word_runs);
        let scalar_wps = world_steps / median(&mut scalar_runs);
        let speedup = word_wps / scalar_wps;
        row(name, &[word_wps, scalar_wps, speedup]);
        if !fallback {
            assert!(
                speedup >= 10.0,
                "{name}: word-level sampler only {speedup:.1}x the scalar sampler \
                 ({word_wps:.0} vs {scalar_wps:.0} worlds/s)"
            );
        }
        fields.push((format!("{name}_word_worlds_per_sec"), num(word_wps)));
        fields.push((format!("{name}_scalar_worlds_per_sec"), num(scalar_wps)));
        fields.push((format!("{name}_speedup"), num(speedup)));
        if fallback {
            fields.push((format!("{name}_semantic_fallback"), num(1.0)));
        }
    }
    let borrowed: Vec<(&str, lahar_core::json::JsonValue)> = fields
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    report::write_section("sampler_throughput", borrowed);
}

fn run_epochs(
    session: &mut RealTimeSession,
    ticks: &[Vec<Marginal>],
    n_ticks: usize,
    epoch: usize,
) {
    let mut t = 0;
    while t < n_ticks {
        let k = epoch.min(n_ticks - t);
        let batch: Vec<Vec<_>> = (t..t + k)
            .map(|tt| {
                ticks
                    .iter()
                    .enumerate()
                    .map(|(idx, per_key)| {
                        let id = session.database().stream_id_at(idx).unwrap();
                        (id, per_key[tt % per_key.len()].clone())
                    })
                    .collect()
            })
            .collect();
        std::hint::black_box(session.tick_epoch(batch).unwrap());
        t += k;
    }
}

fn main() {
    let (people_counts, n_ticks): (&[usize], usize) = if quick_mode() {
        // 40 ticks, not 10: with the one-off costs moved to the untimed
        // warm-up, the measured window still has to be long enough that
        // per-tick jitter doesn't dominate the quick-mode numbers.
        (&[40, 350], 40)
    } else {
        (&[40, 120, 350, 700], 25)
    };
    header(
        "Streaming session throughput (sequential vs parallel ticks)",
        &[
            "chains",
            "seq ticks/s",
            "par ticks/s",
            "speedup",
            "par p50 ms",
        ],
    );
    // Headline numbers for BENCH_streaming.json, taken at the largest
    // workload of the sweep.
    let mut headline: Option<(usize, f64, f64, f64, f64)> = None;
    for &n_people in people_counts {
        // Each arm runs `RUNS` times on a fresh session, warmed to
        // steady state (see [`warmup_ticks`]), and records the median
        // run; the telemetry below is read from the last run (counter
        // totals are identical across runs).
        let warmup = warmup_ticks(n_ticks);
        let mut seq_runs = Vec::new();
        let mut seq_last = None;
        for _ in 0..RUNS {
            let (mut seq, ticks) = build_session(n_people, TickMode::Sequential);
            run_ticks(&mut seq, &ticks, warmup);
            seq_runs.push(timed(|| run_ticks(&mut seq, &ticks, n_ticks)).1);
            seq_last = Some(seq);
        }
        let seq_secs = median(&mut seq_runs);
        let seq = seq_last.expect("RUNS >= 1");

        let mut par_runs = Vec::new();
        let mut par_last = None;
        for _ in 0..RUNS {
            let (mut par, ticks) = build_session(n_people, TickMode::Parallel);
            run_ticks(&mut par, &ticks, warmup);
            par_runs.push(timed(|| run_ticks(&mut par, &ticks, n_ticks)).1);
            par_last = Some(par);
        }
        let par_secs = median(&mut par_runs);
        let par = par_last.expect("RUNS >= 1");

        let snap = par.stats().snapshot();
        assert_eq!(snap.parallel_ticks, (n_ticks + warmup) as u64);
        // Both paths answered every query: spot-check agreement via the
        // latency histogram being fully populated.
        assert_eq!(snap.tick_latency.count, (n_ticks + warmup) as u64);
        let n_chains = n_people * QUERIES_PER_KEY;
        let seq_snap = seq.stats().snapshot();
        let kernel_total =
            seq_snap.kernel_fast_steps + seq_snap.kernel_frozen_steps + seq_snap.kernel_slow_steps;
        let hit_rate = if kernel_total > 0 {
            (seq_snap.kernel_fast_steps + seq_snap.kernel_frozen_steps) as f64 / kernel_total as f64
        } else {
            0.0
        };
        headline = Some((
            n_chains,
            n_ticks as f64 / seq_secs,
            n_ticks as f64 / par_secs,
            seq_secs * 1e9 / (n_ticks * n_chains) as f64,
            hit_rate,
        ));
        row(
            &format!("{n_chains}"),
            &[
                n_ticks as f64 / seq_secs,
                n_ticks as f64 / par_secs,
                seq_secs / par_secs,
                snap.tick_latency.p50_ns as f64 / 1e6,
            ],
        );
    }

    // Compiled kernels vs the interpreter, single-threaded, on the
    // largest workload: force_interpreter(true) pins every chain to the
    // mutex interpreter path (answers are bit-identical either way).
    let n_people = *people_counts.last().unwrap();
    header(
        "Kernel vs interpreter (sequential ticks)",
        &[
            "chains",
            "kern ticks/s",
            "intp ticks/s",
            "speedup",
            "hit rate",
        ],
    );
    let mut kern_runs = Vec::new();
    let mut kern_last = None;
    for _ in 0..RUNS {
        let (mut kern, ticks) = build_session(n_people, TickMode::Sequential);
        run_ticks(&mut kern, &ticks, warmup_ticks(n_ticks));
        kern_runs.push(timed(|| run_ticks(&mut kern, &ticks, n_ticks)).1);
        kern_last = Some(kern);
    }
    let kern_secs = median(&mut kern_runs);
    let kern = kern_last.expect("RUNS >= 1");
    let ksnap = kern.stats().snapshot();
    let ktotal = ksnap.kernel_fast_steps + ksnap.kernel_frozen_steps + ksnap.kernel_slow_steps;
    let kernel_hit_rate = if ktotal > 0 {
        (ksnap.kernel_fast_steps + ksnap.kernel_frozen_steps) as f64 / ktotal as f64
    } else {
        0.0
    };
    let mut intp_runs = Vec::new();
    for _ in 0..RUNS {
        let (mut intp, ticks) = build_session(n_people, TickMode::Sequential);
        intp.force_interpreter(true);
        // Same warm-up for a fair A/B; the forced interpreter memoizes
        // nothing, so only the kernel arm actually benefits.
        run_ticks(&mut intp, &ticks, warmup_ticks(n_ticks));
        intp_runs.push(timed(|| run_ticks(&mut intp, &ticks, n_ticks)).1);
    }
    let intp_secs = median(&mut intp_runs);
    row(
        &format!("{}", n_people * QUERIES_PER_KEY),
        &[
            n_ticks as f64 / kern_secs,
            n_ticks as f64 / intp_secs,
            intp_secs / kern_secs,
            kernel_hit_rate,
        ],
    );

    let (chains, seq_tps, par_tps, ns_per_chain_step, hit_rate) =
        headline.expect("at least one workload ran");
    report::write_section(
        "streaming_throughput",
        vec![
            ("mode", text(if quick_mode() { "quick" } else { "full" })),
            ("chains", num(chains as f64)),
            ("ticks", num(n_ticks as f64)),
            ("seq_ticks_per_sec", num(seq_tps)),
            ("par_ticks_per_sec", num(par_tps)),
            ("ns_per_chain_step", num(ns_per_chain_step)),
            ("kernel_hit_rate", num(hit_rate)),
            ("interpreter_ticks_per_sec", num(n_ticks as f64 / intp_secs)),
            ("kernel_speedup_vs_interpreter", num(intp_secs / kern_secs)),
        ],
    );
    // Per-worker-count scaling at the 1050-chain workload: epoch-batched
    // parallel ticks (8 staged ticks per tick_epoch call, one pool join
    // per epoch) against the per-tick sequential baseline. Recorded to
    // BENCH_streaming.json so parallel-path regressions show up in the
    // perf trajectory; on a host with ≥ 4 cores, losing to sequential at
    // 4 workers fails the run outright.
    const MATRIX_PEOPLE: usize = 350; // × 3 queries = 1050 chains
    const MATRIX_WORKERS: [usize; 3] = [1, 2, 4];
    const MATRIX_EPOCH: usize = 8;
    println!();
    header(
        "Worker scaling (epoch-batched parallel, 1050 chains)",
        &["workers", "ticks/s", "speedup vs seq"],
    );
    let mut mseq_runs = Vec::new();
    for _ in 0..RUNS {
        let (mut mseq, ticks) = build_session(MATRIX_PEOPLE, TickMode::Sequential);
        run_ticks(&mut mseq, &ticks, warmup_ticks(n_ticks));
        mseq_runs.push(timed(|| run_ticks(&mut mseq, &ticks, n_ticks)).1);
    }
    let mseq_secs = median(&mut mseq_runs);
    let mseq_tps = n_ticks as f64 / mseq_secs;
    row("seq", &[mseq_tps, 1.0]);
    let mut matrix_fields = vec![
        ("mode", text(if quick_mode() { "quick" } else { "full" })),
        ("chains", num((MATRIX_PEOPLE * QUERIES_PER_KEY) as f64)),
        ("ticks", num(n_ticks as f64)),
        ("epoch_ticks", num(MATRIX_EPOCH as f64)),
        ("seq_ticks_per_sec", num(mseq_tps)),
    ];
    let mut par4_tps = None;
    for workers in MATRIX_WORKERS {
        let config = SessionConfig::builder()
            .tick_mode(TickMode::Parallel)
            .n_workers(workers)
            .build()
            .unwrap();
        let mut par_runs = Vec::new();
        for _ in 0..RUNS {
            let (mut par, ticks) = build_session_with(MATRIX_PEOPLE, config);
            run_epochs(&mut par, &ticks, warmup_ticks(n_ticks), MATRIX_EPOCH);
            par_runs.push(timed(|| run_epochs(&mut par, &ticks, n_ticks, MATRIX_EPOCH)).1);
        }
        let par_secs = median(&mut par_runs);
        let tps = n_ticks as f64 / par_secs;
        row(&format!("par {workers}w"), &[tps, mseq_secs / par_secs]);
        let key = match workers {
            1 => "par_ticks_per_sec_w1",
            2 => "par_ticks_per_sec_w2",
            _ => "par_ticks_per_sec_w4",
        };
        matrix_fields.push((key, num(tps)));
        if workers >= 4 {
            par4_tps = Some(tps);
        }
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    matrix_fields.push(("host_cores", num(cores as f64)));
    report::write_section("streaming_worker_matrix", matrix_fields);
    if cores >= 4 {
        let par4 = par4_tps.expect("4-worker arm ran");
        assert!(
            par4 >= mseq_tps,
            "parallel path lost on a {cores}-core host: 4 workers {par4:.1} ticks/s \
             vs sequential {mseq_tps:.1} ticks/s"
        );
    }

    // Span-recording overhead: the identical parallel run with the
    // tracer off (the default — one relaxed atomic load per span site)
    // and on (per-thread ring-buffer recording). The *off* column is
    // the deployment-relevant number and must stay in the noise; the
    // *on* column prices chain-level tracing for when it is needed.
    let n_people = *people_counts.last().unwrap();
    println!();
    header(
        "Span recording overhead (parallel ticks)",
        &["chains", "off ticks/s", "on ticks/s", "overhead %"],
    );
    let mut off_runs = Vec::new();
    for _ in 0..RUNS {
        let (mut off, ticks) = build_session(n_people, TickMode::Parallel);
        run_ticks(&mut off, &ticks, 1);
        off_runs.push(timed(|| run_ticks(&mut off, &ticks, n_ticks)).1);
    }
    let off_secs = median(&mut off_runs);
    lahar_core::trace::enable();
    let mut on_runs = Vec::new();
    for _ in 0..RUNS {
        let (mut on, ticks) = build_session(n_people, TickMode::Parallel);
        run_ticks(&mut on, &ticks, 1);
        on_runs.push(timed(|| run_ticks(&mut on, &ticks, n_ticks)).1);
    }
    let on_secs = median(&mut on_runs);
    lahar_core::trace::disable();
    lahar_core::trace::clear();
    row(
        &format!("{}", n_people * QUERIES_PER_KEY),
        &[
            n_ticks as f64 / off_secs,
            n_ticks as f64 / on_secs,
            (on_secs / off_secs - 1.0) * 100.0,
        ],
    );

    // WAL overhead on the serve path: `none` prices the TCP round trip
    // itself, `batch` adds one write(2) per acknowledged tick, `always`
    // adds an fsync per tick. Recorded to BENCH_streaming.json so WAL
    // regressions show up in the perf trajectory.
    let dur_people = 40;
    let dur_ticks = if quick_mode() { 60 } else { 200 };
    println!();
    header(
        "Durability overhead (serve path, per-tick acks)",
        &["level", "ticks/s", "overhead %"],
    );
    let dur_results = durability_bench(dur_people, dur_ticks);
    let dur_base = dur_results[0].1;
    let mut dur_fields = vec![
        ("mode", text(if quick_mode() { "quick" } else { "full" })),
        ("keyed_streams", num(dur_people as f64)),
        ("ticks", num(dur_ticks as f64)),
    ];
    for (level, tps) in &dur_results {
        row(level, &[*tps, (dur_base / tps - 1.0) * 100.0]);
        let (tps_key, overhead_key) = match *level {
            "none" => ("ticks_per_sec_none", None),
            "batch" => ("ticks_per_sec_batch", Some("overhead_batch_pct")),
            _ => ("ticks_per_sec_always", Some("overhead_always_pct")),
        };
        dur_fields.push((tps_key, num(*tps)));
        if let Some(key) = overhead_key {
            dur_fields.push((key, num((dur_base / tps - 1.0) * 100.0)));
        }
    }
    report::write_section("durability_overhead", dur_fields);

    // Request-observability overhead on the same serve-path workload:
    // the tracing-off arm is the deployment configuration and must stay
    // within noise of the durability `none` baseline above; the other
    // arms price turning the diagnostics on.
    println!();
    header(
        "Request observability overhead (serve path, per-tick acks)",
        &["tracing", "rt/s", "overhead %"],
    );
    let obs_results = serve_observability_bench(dur_people, dur_ticks);
    let obs_base = obs_results[0].1;
    let mut obs_fields = vec![
        ("mode", text(if quick_mode() { "quick" } else { "full" })),
        ("keyed_streams", num(dur_people as f64)),
        ("ticks", num(dur_ticks as f64)),
        ("durability_none_baseline_rt_per_sec", num(dur_base)),
    ];
    for (arm, tps) in &obs_results {
        row(arm, &[*tps, (obs_base / tps - 1.0) * 100.0]);
        let (tps_key, overhead_key) = match *arm {
            "off" => ("rt_per_sec_off", Some("off_vs_durability_none_pct")),
            "on" => ("rt_per_sec_on", Some("overhead_on_pct")),
            _ => ("rt_per_sec_on_slowlog", Some("overhead_on_slowlog_pct")),
        };
        obs_fields.push((tps_key, num(*tps)));
        let overhead = match *arm {
            // The off arm is measured against the durability bench's
            // identically-configured `none` arm — the PR-over-PR
            // regression hook (the acceptance bound is < 3%).
            "off" => (dur_base / tps - 1.0) * 100.0,
            _ => (obs_base / tps - 1.0) * 100.0,
        };
        if let Some(key) = overhead_key {
            obs_fields.push((key, num(overhead)));
        }
    }
    report::write_section("serve_observability", obs_fields);

    sampler_throughput_bench();

    // The telemetry snapshot itself, as the deployment-facing JSON.
    let (mut par, ticks) = build_session(people_counts[0], TickMode::Parallel);
    run_ticks(&mut par, &ticks, 3);
    println!(
        "\nsample EngineStats snapshot:\n{}",
        par.stats().snapshot().to_json()
    );
}
