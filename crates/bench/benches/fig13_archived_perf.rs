//! Fig 13 — archived throughput vs concurrent tags on Markovian
//! (smoothed + CPT) streams, for Q1 and Q2.
//!
//! Competitors: the Viterbi MAP baseline and naïve sampling over the
//! correlated streams.
//!
//! Paper shape to reproduce: Viterbi and Lahar(Markov) have comparable raw
//! tuple throughput (the CPT streams simply carry ~|support|x more tuples),
//! sampling is orders of magnitude slower, and the *effective objects per
//! second* of the Markovian pipeline trails the real-time pipeline by
//! roughly an order of magnitude (the paper reports 9–10x).

use lahar_baselines::DeterministicCep;
use lahar_bench::*;
use lahar_core::{ExtendedRegularEvaluator, RegularEvaluator, Sampler, SamplerConfig};
use lahar_query::NormalQuery;

fn main() {
    let ticks = 60;
    let tag_counts: &[usize] = if quick_mode() {
        &[1, 10, 25]
    } else {
        &[1, 10, 25, 50, 75, 100]
    };

    let mut rt_eff_sample = 0.0f64;
    let mut ar_eff_sample = 0.0f64;

    for (qname, extended) in [
        ("Q1 (regular selection)", false),
        ("Q2 (ext. regular seq)", true),
    ] {
        header(
            &format!("Fig 13: archived throughput, {qname}"),
            &[
                "tags",
                "lahar t/s",
                "viterbi t/s",
                "sampling t/s",
                "eff obj/s",
            ],
        );
        for &n in tag_counts {
            let dep = perf_deployment(n, ticks, 7);
            let db = dep.smoothed_database();
            let base = dep.base_database();
            let tags = dep.tag_names();

            let (_, lahar_secs) = timed(|| {
                if extended {
                    let q =
                        lahar_query::parse_and_validate(db.catalog(), db.interner(), q2()).unwrap();
                    let nq = NormalQuery::from_query(&q);
                    let eval = ExtendedRegularEvaluator::new(&db, &nq).unwrap();
                    std::hint::black_box(eval.prob_series(&db, db.horizon()));
                } else {
                    for tag in &tags {
                        let q =
                            lahar_query::parse_and_validate(db.catalog(), db.interner(), &q1(tag))
                                .unwrap();
                        let nq = NormalQuery::from_query(&q);
                        let eval = RegularEvaluator::new(&db, &nq).unwrap();
                        std::hint::black_box(eval.prob_series(&db, db.horizon()));
                    }
                }
            });

            // Viterbi baseline: decode MAP paths, then deterministic CEP.
            let (_, viterbi_secs) = timed(|| {
                let world = dep.viterbi_world(&base);
                if extended {
                    let q = lahar_query::parse_and_validate(base.catalog(), base.interner(), q2())
                        .unwrap();
                    let nq = NormalQuery::from_query(&q);
                    let cep = DeterministicCep::new(&base, &world, &nq).unwrap();
                    std::hint::black_box(cep.detect(&base, &world).unwrap());
                } else {
                    for tag in &tags {
                        let q = lahar_query::parse_and_validate(
                            base.catalog(),
                            base.interner(),
                            &q1(tag),
                        )
                        .unwrap();
                        let nq = NormalQuery::from_query(&q);
                        let cep = DeterministicCep::new(&base, &world, &nq).unwrap();
                        std::hint::black_box(cep.detect(&base, &world).unwrap());
                    }
                }
            });

            let (_, sampling_secs) = timed(|| {
                let config = SamplerConfig::default();
                if extended {
                    let q =
                        lahar_query::parse_and_validate(db.catalog(), db.interner(), q2()).unwrap();
                    let nq = NormalQuery::from_query(&q);
                    let s = Sampler::with_config(&db, &nq, config).unwrap();
                    std::hint::black_box(s.prob_series(&db, db.horizon()));
                } else {
                    for tag in &tags {
                        let q =
                            lahar_query::parse_and_validate(db.catalog(), db.interner(), &q1(tag))
                                .unwrap();
                        let nq = NormalQuery::from_query(&q);
                        let s = Sampler::with_config(&db, &nq, config).unwrap();
                        std::hint::black_box(s.prob_series(&db, db.horizon()));
                    }
                }
            });

            let eff = effective_objects_per_sec(n, ticks, lahar_secs);
            row(
                &n.to_string(),
                &[
                    n as f64,
                    tuples_per_sec(&db, lahar_secs),
                    tuples_per_sec(&db, viterbi_secs),
                    tuples_per_sec(&db, sampling_secs),
                    eff,
                ],
            );
            if !extended && n == *tag_counts.last().unwrap() {
                ar_eff_sample = eff;
                // Matching real-time effective rate for the comparison.
                let rt_db = dep.filtered_database();
                let (_, rt_secs) = timed(|| {
                    for tag in &tags {
                        let q = lahar_query::parse_and_validate(
                            rt_db.catalog(),
                            rt_db.interner(),
                            &q1(tag),
                        )
                        .unwrap();
                        let nq = NormalQuery::from_query(&q);
                        let eval = RegularEvaluator::new(&rt_db, &nq).unwrap();
                        std::hint::black_box(eval.prob_series(&rt_db, rt_db.horizon()));
                    }
                });
                rt_eff_sample = effective_objects_per_sec(n, ticks, rt_secs);
            }
        }
    }

    println!(
        "\neffective objects/sec: real-time {rt_eff_sample:.0} vs archived {ar_eff_sample:.0} \
         ({:.1}x slowdown; paper reports 9-10x, driven by the CPT tuple blow-up)",
        rt_eff_sample / ar_eff_sample.max(1e-9)
    );
}
