//! Session resilience costs: checkpoint capture, JSON encode/decode,
//! cold restore, and auto-checkpointing tick overhead, across session
//! scales. With `--features failpoints` it also times the full
//! poison-then-recover path after an injected mid-tick worker panic.
//!
//! These are deployment-tuning numbers: `SessionConfig::checkpoint_interval`
//! trades the steady-state overhead column against the recovery replay
//! bound (at most `interval` ticks re-stepped per lost chain).

use lahar_bench::report::{self, num, text};
use lahar_bench::{header, quick_mode, row, timed};
use lahar_core::{Checkpoint, RealTimeSession, SessionConfig};
use lahar_model::{Database, Marginal, StreamBuilder};

const DOMAIN: [&str; 3] = ["a", "h", "c"];
/// Chains per person: the two registered extended queries below.
const QUERIES_PER_KEY: usize = 2;

fn schema_db(n_people: usize) -> Database {
    let mut db = Database::new();
    db.declare_stream("At", &["person"], &["loc"]).unwrap();
    let i = db.interner().clone();
    for p in 0..n_people {
        let b = StreamBuilder::new(&i, "At", &[&format!("p{p}")], &DOMAIN);
        db.add_stream(b.independent(vec![]).unwrap()).unwrap();
    }
    db
}

fn build_session(n_people: usize, config: SessionConfig) -> (RealTimeSession, Vec<Vec<Marginal>>) {
    let db = schema_db(n_people);
    let i = db.interner().clone();
    let mut ticks: Vec<Vec<Marginal>> = Vec::with_capacity(n_people);
    for p in 0..n_people {
        let b = StreamBuilder::new(&i, "At", &[&format!("p{p}")], &DOMAIN);
        let phase = p % 3;
        ticks.push(vec![
            b.marginal(&[(DOMAIN[phase], 0.7), (DOMAIN[(phase + 1) % 3], 0.2)])
                .unwrap(),
            b.marginal(&[(DOMAIN[(phase + 1) % 3], 0.5)]).unwrap(),
            b.marginal(&[(DOMAIN[(phase + 2) % 3], 0.6), (DOMAIN[phase], 0.1)])
                .unwrap(),
        ]);
    }
    let mut session = RealTimeSession::with_config(db, config).unwrap();
    session.register("q_ac", "At(p,'a') ; At(p,'c')").unwrap();
    session.register("q_hc", "At(p,'h') ; At(p,'c')").unwrap();
    assert_eq!(session.n_chains(), n_people * QUERIES_PER_KEY);
    (session, ticks)
}

fn run_ticks(session: &mut RealTimeSession, ticks: &[Vec<Marginal>], n_ticks: usize) {
    for t in 0..n_ticks {
        let batch: Vec<_> = ticks
            .iter()
            .enumerate()
            .map(|(idx, per_key)| {
                let id = session.database().stream_id_at(idx).unwrap();
                (id, per_key[t % per_key.len()].clone())
            })
            .collect();
        session.stage_batch(batch).unwrap();
        std::hint::black_box(session.tick().unwrap());
    }
}

fn main() {
    let (people_counts, n_ticks): (&[usize], usize) = if quick_mode() {
        (&[40, 350], 8)
    } else {
        (&[40, 120, 350, 700], 20)
    };

    header(
        "Checkpoint lifecycle (capture → encode → decode → restore)",
        &["chains", "capture ms", "json KB", "decode ms", "restore ms"],
    );
    let mut headline: Option<(usize, f64, f64)> = None;
    for &n_people in people_counts {
        let (mut session, ticks) = build_session(n_people, SessionConfig::default());
        run_ticks(&mut session, &ticks, n_ticks);
        let (ckpt, capture_secs) = timed(|| session.checkpoint().unwrap());
        let json = ckpt.to_json();
        let (parsed, decode_secs) = timed(|| Checkpoint::from_json(&json).unwrap());
        let (restored, restore_secs) =
            timed(|| RealTimeSession::restore(schema_db(n_people), &parsed).unwrap());
        assert_eq!(restored.now(), session.now());
        headline = Some((
            n_people * QUERIES_PER_KEY,
            capture_secs * 1e3,
            restore_secs * 1e3,
        ));
        row(
            &format!("{}", n_people * QUERIES_PER_KEY),
            &[
                capture_secs * 1e3,
                json.len() as f64 / 1024.0,
                decode_secs * 1e3,
                restore_secs * 1e3,
            ],
        );
    }

    header(
        "Auto-checkpointing tick overhead (interval 4 vs off)",
        &["chains", "plain ticks/s", "ckpt ticks/s", "overhead x"],
    );
    for &n_people in people_counts {
        let (mut plain, ticks) = build_session(n_people, SessionConfig::default());
        let (_, plain_secs) = timed(|| run_ticks(&mut plain, &ticks, n_ticks));
        let (mut ckpt, ticks) = build_session(
            n_people,
            SessionConfig::builder()
                .checkpoint_interval(4)
                .build()
                .unwrap(),
        );
        let (_, ckpt_secs) = timed(|| run_ticks(&mut ckpt, &ticks, n_ticks));
        assert!(ckpt.last_checkpoint().is_some());
        row(
            &format!("{}", n_people * QUERIES_PER_KEY),
            &[
                n_ticks as f64 / plain_secs,
                n_ticks as f64 / ckpt_secs,
                ckpt_secs / plain_secs,
            ],
        );
    }

    let (chains, capture_ms, restore_ms) = headline.expect("at least one workload ran");
    report::write_section(
        "resilience",
        vec![
            ("mode", text(if quick_mode() { "quick" } else { "full" })),
            ("chains", num(chains as f64)),
            ("checkpoint_capture_ms", num(capture_ms)),
            ("restore_ms", num(restore_ms)),
        ],
    );

    #[cfg(feature = "failpoints")]
    recovery_bench(people_counts, n_ticks);
    #[cfg(not(feature = "failpoints"))]
    println!("\n(recovery path: rerun with --features failpoints to time recover())");
}

/// Times recover() after an injected worker panic: the dominant cost is
/// replaying the lost shard's chains from the last checkpoint.
#[cfg(feature = "failpoints")]
fn recovery_bench(people_counts: &[usize], n_ticks: usize) {
    use lahar_core::failpoint::{self, FailAction, Schedule};
    use lahar_core::TickMode;

    header(
        "Recovery after injected worker panic",
        &["chains", "recover ms", "replayed ticks"],
    );
    for &n_people in people_counts {
        let (mut session, ticks) = build_session(
            n_people,
            SessionConfig::builder()
                .tick_mode(TickMode::Parallel)
                .checkpoint_interval(4)
                .build()
                .unwrap(),
        );
        run_ticks(&mut session, &ticks, n_ticks);
        failpoint::configure("worker_step", FailAction::Panic, Schedule::Once { at: 0 });
        for (idx, per_key) in ticks.iter().enumerate() {
            let id = session.database().stream_id_at(idx).unwrap();
            session
                .stage(id, per_key[n_ticks % per_key.len()].clone())
                .unwrap();
        }
        session.tick().unwrap_err();
        failpoint::clear_all();
        let replayed = (session.now() + 1) - session.last_checkpoint().map_or(0, |ckpt| ckpt.t());
        let (alerts, recover_secs) = timed(|| session.recover().unwrap());
        assert_eq!(alerts.len(), 2);
        row(
            &format!("{}", n_people * QUERIES_PER_KEY),
            &[recover_secs * 1e3, replayed as f64],
        );
    }
}
