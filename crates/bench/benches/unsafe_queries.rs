//! §3.4 — the hardness frontier: the queries h1–h4 are #P-hard, so the
//! exact algorithms must refuse them and the sampler must still produce
//! calibrated estimates.
//!
//! For each query we report: the classification, that the safe-plan
//! compiler rejects it, the sampler's running time, and (on a tiny
//! instance) the sampler's error against the exact possible-world oracle.

use lahar_bench::{header, row, timed};
use lahar_core::{Sampler, SamplerConfig};
use lahar_model::{Database, StreamBuilder};
use lahar_query::{classify, compile_safe_plan, prob_series, NormalQuery, QueryClass};

fn tiny_db(seed: u64) -> Database {
    let mut db = Database::new();
    for st in ["R", "S", "T"] {
        db.declare_stream(st, &["k"], &["v"]).unwrap();
    }
    let i = db.interner().clone();
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    for st in ["R", "S", "T"] {
        for key in ["k1", "k2"] {
            let b = StreamBuilder::new(&i, st, &[key], &["x"]);
            // Three ticks keep the exact oracle's world enumeration at
            // (2^3)^6 ≈ 262k worlds.
            let ms = (0..3)
                .map(|_| b.marginal(&[("x", rng.gen_range(0.2..0.8))]).unwrap())
                .collect();
            db.add_stream(b.independent(ms).unwrap()).unwrap();
        }
    }
    db
}

fn main() {
    let db = tiny_db(5);
    let queries = [
        ("h1", "sigma[x = y](R(x, _) ; S(y, _))"),
        ("h2", "R('k1', _) ; (S(x, _))+{x}"),
        ("h3", "R('k1', _) ; S(x, _) ; T(x, _)"),
        ("h4", "R(x, _) ; S('k1', _) ; T(x, _)"),
    ];

    header(
        "Unsafe queries (Props 3.18/3.19): sampler vs exact oracle",
        &["planner", "max |err|", "secs", "n samples"],
    );
    for (name, src) in queries {
        let q = lahar_query::parse_and_validate(db.catalog(), db.interner(), src).unwrap();
        let nq = NormalQuery::from_query(&q);
        assert_eq!(
            classify(db.catalog(), &nq),
            QueryClass::Unsafe,
            "{name} must classify as unsafe"
        );
        let rejected = compile_safe_plan(db.catalog(), &nq).is_err();
        assert!(rejected, "{name} must be rejected by Algorithm 1");

        let config = SamplerConfig {
            epsilon: 0.03,
            delta: 0.02,
            seed: 1234,
            ..Default::default()
        };
        let n = config.n_samples();
        let (est, secs) = timed(|| {
            Sampler::with_config(&db, &nq, config)
                .unwrap()
                .prob_series(&db, db.horizon())
        });
        let exact = prob_series(&db, &q).unwrap();
        let max_err = est
            .iter()
            .zip(&exact)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        println!("{name}: {src}");
        row("", &[1.0, max_err, secs, n as f64]);
        assert!(
            max_err < 3.0 * config.epsilon,
            "{name}: sampler error {max_err} out of tolerance"
        );
    }
    println!("\nall four hard queries: rejected by the planner, estimated within tolerance.");
}
