//! Fig 9 — real-time quality: precision / recall / F1 as a function of the
//! threshold ρ, Lahar on independent (particle-filtered) streams vs the
//! MLE baseline.
//!
//! Paper shape to reproduce: for ρ ∈ [0.1, 0.5] Lahar beats MLE on *both*
//! precision and recall (paper: +16 points precision, +11 recall at the
//! best spots); below ρ ≈ 0.1 Lahar's precision dips under MLE's because
//! particle churn sparks spurious low-probability events (§4.2.1).

use lahar_baselines::{detect_series, mle_world};
use lahar_bench::{coffee_query, header, quality_deployment, quick_mode, row};
use lahar_core::Lahar;
use lahar_metrics::{episodes, score_per_key, threshold, Episode};

fn main() {
    let ticks = if quick_mode() { 200 } else { 800 };
    let dep = quality_deployment(ticks, 42);
    let base = dep.base_database();
    let truth_world = dep.truth_world(&base);
    let filtered = dep.filtered_database();
    let mle = mle_world(&filtered);
    let d = 15;

    // Per-person probabilistic series, truth episodes, and MLE detections.
    let mut lahar_series = Vec::new();
    let mut truth_eps = Vec::new();
    let mut mle_eps = Vec::new();
    let mut total_truth = 0;
    for p in &dep.people {
        let q = coffee_query(&p.name);
        let t = episodes(&detect_series(&base, &truth_world, &q).unwrap());
        total_truth += t.len();
        truth_eps.push(t);
        lahar_series.push(Lahar::prob_series(&filtered, &q).unwrap());
        mle_eps.push(episodes(&detect_series(&base, &mle, &q).unwrap()));
    }
    println!(
        "{} ground-truth coffee events across {} people",
        total_truth,
        dep.people.len()
    );

    let mle_pairs: Vec<(Vec<Episode>, Vec<Episode>)> = mle_eps
        .iter()
        .cloned()
        .zip(truth_eps.iter().cloned())
        .collect();
    let mle_q = score_per_key(&mle_pairs, d);

    header(
        "Fig 9: real-time quality vs ρ (baseline MLE is ρ-independent)",
        &[
            "rho",
            "P(lahar)",
            "R(lahar)",
            "F1(lahar)",
            "P(mle)",
            "R(mle)",
            "F1(mle)",
        ],
    );
    let rhos = [0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5];
    let mut beats_both_somewhere = false;
    let mut low_rho_precision_dips = false;
    for &rho in &rhos {
        let pairs: Vec<(Vec<Episode>, Vec<Episode>)> = lahar_series
            .iter()
            .map(|s| episodes(&threshold(s, rho)))
            .zip(truth_eps.iter().cloned())
            .collect();
        let q = score_per_key(&pairs, d);
        row(
            &format!("{rho:.2}"),
            &[
                rho,
                q.precision,
                q.recall,
                q.f1,
                mle_q.precision,
                mle_q.recall,
                mle_q.f1,
            ],
        );
        if (0.1..=0.5).contains(&rho) && q.precision >= mle_q.precision && q.recall >= mle_q.recall
        {
            beats_both_somewhere = true;
        }
        if rho < 0.1 && q.precision < mle_q.precision {
            low_rho_precision_dips = true;
        }
    }

    println!(
        "\nshape checks: Lahar beats MLE on both P and R somewhere in ρ∈[0.1,0.5]: {beats_both_somewhere}"
    );
    println!("              low-ρ precision dip (particle churn): {low_rho_precision_dips}");
}
