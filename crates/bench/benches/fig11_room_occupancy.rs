//! Fig 11 — the room-occupancy microbenchmark.
//!
//! (a) A person walks down the hall and settles in a room with no sensor
//! coverage. The query "were you in the room for k consecutive seconds?"
//! accrues probability much faster under Markovian (smoothed) semantics
//! than under independence — the paper's point: with ~6 candidate rooms
//! the marginal sits near 0.15, but the smoothed conditional
//! stay-probability is ~0.6, so consecutive-occupancy compounds ~4x faster
//! per step. Viterbi commits to a single (often wrong) room and scores 0.
//!
//! (b) The qualitative MLE-vs-MAP failure: resampling makes the MLE
//! estimate hop between rooms while MAP sticks to one.

use lahar_baselines::{detect_series, mle_world};
use lahar_core::IntervalChain;
use lahar_hmm::ParticleFilter;
use lahar_model::{Database, Marginal, Stream, StreamKey};
use lahar_rfid::{build_location_hmm, Deployment, DeploymentConfig, FloorPlan, RoomKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// "in room R for 3 consecutive ticks": the outer selections force every
/// intermediate event to stay in R (successor competition over all
/// locations), unlike constant patterns which would only require three
/// increasing room sightings.
fn occupancy_query(person: &str, room: &str) -> String {
    format!(
        "sigma[l2 = '{room}' AND l3 = '{room}']\
         (At('{person}', '{room}') ; At('{person}', l2) ; At('{person}', l3))"
    )
}

fn main() {
    // Scripted trace on the small one-floor plan: walk the hallway, then
    // enter office f0-office1a and stay.
    let config = DeploymentConfig {
        floors: 1,
        hall_len: 3,
        antenna_every: 1,
        n_people: 1,
        n_objects: 0,
        ticks: 40,
        ..DeploymentConfig::default()
    };
    let plan = FloorPlan::office_building(1, 3, 1);
    let h = |name: &str| plan.location_id(name).unwrap();
    let mut traj = vec![h("f0-h0"), h("f0-h1")];
    let room = "f0-office1a";
    traj.extend(vec![h(room); config.ticks - 2]);

    // Deployment scaffolding with the scripted trajectory substituted in.
    let mut dep = Deployment::simulate(config.clone());
    dep.truth = vec![traj.clone()];
    let mut rng = SmallRng::seed_from_u64(7);
    dep.observations = vec![lahar_rfid::observe(
        &dep.plan,
        &config.sensing,
        &traj,
        &mut rng,
    )];

    let smoothed = dep.smoothed_database();
    let smoothed_indep = dep.smoothed_independent_database();
    let base = dep.base_database();
    let viterbi = dep.viterbi_world(&base);

    let q = occupancy_query("person0", room);
    // The paper's chart is the per-timestep acceptance probability: the
    // occupancy run "accrues" probability because the query re-fires at
    // each timestep of the stay, with probability 0.15·0.6^(k-1)-style
    // under correlations vs 0.15^k-style under independence. We also show
    // the cumulative interval probability P[q[0, t]] for completeness.
    let point = |db: &Database, src: &str| lahar_core::Lahar::prob_series(db, src).unwrap();
    let cumulative = |db: &Database, src: &str| -> Vec<f64> {
        let query = lahar_query::parse_and_validate(db.catalog(), db.interner(), src).unwrap();
        let nq = lahar_query::NormalQuery::from_query(&query);
        let mut ic = IntervalChain::new(db, &nq.items).unwrap();
        (0..db.horizon()).map(|t| ic.prob(db, 0, t)).collect()
    };
    let markov = point(&smoothed, &q);
    let indep = point(&smoothed_indep, &q);
    let markov_cum = cumulative(&smoothed, &q);
    let vit = detect_series(&base, &viterbi, &q).unwrap();

    println!("=== Fig 11(a): acceptance probability at each timestep ===");
    println!(
        "{:>5} {:>10} {:>12} {:>9} {:>12}",
        "t", "markov", "independent", "viterbi", "markov[0,t]"
    );
    for t in (2..dep.config.ticks).step_by(2) {
        println!(
            "{t:>5} {:>10.4} {:>12.4} {:>9} {:>12.4}",
            markov[t],
            indep[t],
            if vit[t] { 1 } else { 0 },
            markov_cum[t],
        );
    }
    let peak_m = markov.iter().cloned().fold(0.0, f64::max);
    let peak_i = indep.iter().cloned().fold(0.0, f64::max);
    println!(
        "\npeak per-step acceptance: markov {peak_m:.4} vs independent {peak_i:.4} \
         (ratio {:.1}x; paper reports ~4x per extra consecutive step — the smoothed \
         stay-probability ~0.6 vs the ~0.15 marginal)",
        peak_m / peak_i.max(1e-12)
    );
    assert!(
        peak_m > 2.0 * peak_i,
        "Markovian occupancy must accrue much faster than independent"
    );
    println!(
        "viterbi ever accepts: {} (paper: never — MAP picks a single, often wrong, room)",
        vit.iter().any(|&b| b)
    );

    // (b) MLE hops, MAP sticks: count room switches during the stay.
    let hmm = build_location_hmm(&dep.plan, &dep.config);
    let mut pf = ParticleFilter::new(hmm.clone(), 100);
    let mut rng = SmallRng::seed_from_u64(99);
    let marginals = pf.run(&dep.observations[0], &mut rng).unwrap();
    // Build an ad-hoc independent database to extract the MLE path.
    let mut db = Database::new();
    db.declare_stream("At", &["tag"], &["loc"]).unwrap();
    let interner = db.interner().clone();
    let tuples: Vec<lahar_model::Tuple> = dep
        .plan
        .locations()
        .iter()
        .map(|l| lahar_model::tuple([interner.intern(&l.name)]))
        .collect();
    let domain = lahar_model::Domain::new(1, tuples).unwrap();
    let ms: Vec<Marginal> = marginals
        .iter()
        .map(|m| {
            let mut v = m.clone();
            v.push(0.0);
            Marginal::new(&domain, v).unwrap()
        })
        .collect();
    db.add_stream(
        Stream::independent(
            StreamKey {
                stream_type: interner.intern("At"),
                key: lahar_model::tuple([interner.intern("person0")]),
            },
            domain,
            ms,
        )
        .unwrap(),
    )
    .unwrap();
    let mle = mle_world(&db);
    let map_path = dep.hmm.viterbi(&dep.observations[0]).unwrap();

    let stay_range = 6..dep.config.ticks; // well inside the stay
    let mle_locs: Vec<String> = stay_range
        .clone()
        .filter_map(|t| {
            mle.events_at(t as u32).next().map(|e| match e.values[0] {
                lahar_model::Value::Str(s) => interner.resolve(s).unwrap(),
                _ => unreachable!(),
            })
        })
        .collect();
    let mle_switches = mle_locs.windows(2).filter(|w| w[0] != w[1]).count();
    let map_switches = stay_range
        .clone()
        .collect::<Vec<_>>()
        .windows(2)
        .filter(|w| map_path[w[0]] != map_path[w[1]])
        .count();
    println!("\n=== Fig 11(b): room switches while the person sits still ===");
    println!("MLE estimate switches rooms {mle_switches} times (particle churn)");
    println!("MAP (Viterbi) switches rooms {map_switches} times (commits to one path)");
    // Rooms in the vicinity: the paper notes ~6 plausible rooms each near
    // p ≈ 0.15 marginal while the smoothed stay-probability is much higher.
    let t_probe = dep.config.ticks - 5;
    let sm_stream = &smoothed.streams()[0];
    let marg = sm_stream.marginal_at(t_probe as u32);
    let room_kinds: Vec<f64> = dep
        .plan
        .locations()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.kind.is_room() || l.kind == RoomKind::Hallway)
        .map(|(i, _)| marg.prob(i))
        .filter(|&p| p > 0.02)
        .collect();
    println!(
        "\nplausible locations at t={t_probe}: {} with mass > 0.02 (max {:.3})",
        room_kinds.len(),
        room_kinds.iter().cloned().fold(0.0, f64::max)
    );
}
