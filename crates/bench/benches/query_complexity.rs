//! §4.3.2 — query-complexity experiment: throughput as the number of
//! subgoals grows, at a fixed 50 concurrent tags.
//!
//! Paper shape to reproduce: real-time (independent) processing keeps up
//! with the trace for up to ~5 subgoals; Markovian processing, which
//! carries more state, stays viable to ~3 subgoals — acceptable because
//! Markovian queries run offline.

use lahar_bench::*;
use lahar_core::ExtendedRegularEvaluator;
use lahar_query::NormalQuery;

/// An n-subgoal extended-regular chain through hallways ending in coffee.
fn chain_query(n_subgoals: usize) -> String {
    let mut parts = Vec::new();
    for i in 0..n_subgoals - 1 {
        parts.push(format!("At(p, l{i})[Hallway(l{i})]"));
    }
    parts.push(format!(
        "At(p, l{})[CoffeeRoom(l{})]",
        n_subgoals - 1,
        n_subgoals - 1
    ));
    parts.join(" ; ")
}

fn main() {
    let n_tags = if quick_mode() { 10 } else { 50 };
    let ticks = 60;
    let dep = perf_deployment(n_tags, ticks, 11);
    let filtered = dep.filtered_database();
    let smoothed = dep.smoothed_database();

    header(
        &format!("Query complexity at {n_tags} tags (throughput in tuples/s)"),
        &[
            "subgoals",
            "realtime t/s",
            "markov t/s",
            "rt secs",
            "mk secs",
        ],
    );
    // n = 1 has no shared variable (it is plain Q1 territory, Fig 12);
    // the sweep starts where the join machinery kicks in.
    let max_subgoals = if quick_mode() { 3 } else { 5 };
    for n in 2..=max_subgoals {
        let src = chain_query(n);
        let run = |db: &lahar_model::Database| {
            let q = lahar_query::parse_and_validate(db.catalog(), db.interner(), &src).unwrap();
            let nq = NormalQuery::from_query(&q);
            let (_, secs) = timed(|| {
                let eval = ExtendedRegularEvaluator::new(db, &nq).unwrap();
                std::hint::black_box(eval.prob_series(db, db.horizon()));
            });
            secs
        };
        let rt = run(&filtered);
        let mk = run(&smoothed);
        row(
            &n.to_string(),
            &[
                n as f64,
                tuples_per_sec(&filtered, rt),
                tuples_per_sec(&smoothed, mk),
                rt,
                mk,
            ],
        );
    }
    println!(
        "\nviability criterion (paper): processing time below the {ticks}-tick trace duration."
    );
}
