//! # lahar-hmm — discrete hidden Markov model inference
//!
//! The inference substrate that produces Lahar's probabilistic streams
//! (paper §2.4):
//!
//! * [`Hmm::filter`] — forward filtering: per-timestep marginals for the
//!   *real-time* scenario (independent streams).
//! * [`Hmm::smooth`] — forward–backward smoothing: smoothed marginals
//!   **plus** the per-step conditional probability tables
//!   `P[X_{t+1} | X_t, o_{1:T}]` that become Markovian stream CPTs for the
//!   *archived* scenario.
//! * [`Hmm::viterbi`] — the maximum a-posteriori path (the paper's MAP
//!   competitor, Fig 10/11).
//! * [`ParticleFilter`] — SIR particle filtering (predict / weight /
//!   resample), the paper's actual real-time inference engine, complete
//!   with the *particle churn* artifact discussed in §4.2.1.
//! * [`baum_welch`] — EM parameter estimation, so deployments can learn
//!   the model the paper assumes given.
//!
//! The crate is self-contained (no dependency on the rest of the
//! workspace); `lahar-rfid` glues its output into `lahar-model` streams.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // numeric kernels index flat matrices

mod model;
mod particle;
mod train;

pub use model::{Hmm, HmmError, Smoothed};
pub use particle::ParticleFilter;
pub use train::{baum_welch, log_likelihood, TrainOptions, Trained};
