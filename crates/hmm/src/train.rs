//! Baum–Welch (EM) parameter estimation.
//!
//! The paper takes its location HMM as given; a deployed system has to
//! *learn* it — transition stickiness and antenna detection rates drift
//! with the building. [`baum_welch`] re-estimates initial, transition, and
//! emission parameters from raw observation sequences, so the
//! `lahar-rfid` pipeline can be run with a learned model instead of the
//! hand-specified prior (quantified in the workspace tests).

use crate::model::{Hmm, HmmError};

/// Options for [`baum_welch`].
#[derive(Debug, Clone, Copy)]
pub struct TrainOptions {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Stop when the total log-likelihood improves by less than this.
    pub tol: f64,
    /// Additive smoothing applied to every re-estimated count (keeps
    /// probabilities strictly positive so sparse data cannot zero out a
    /// transition forever).
    pub smoothing: f64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            max_iters: 50,
            tol: 1e-6,
            smoothing: 1e-6,
        }
    }
}

/// The result of an EM run.
#[derive(Debug, Clone)]
pub struct Trained {
    /// The re-estimated model.
    pub hmm: Hmm,
    /// Total log-likelihood of the data under the final model.
    pub log_likelihood: f64,
    /// Iterations actually run.
    pub iterations: usize,
}

/// Scaled forward/backward pass returning (alphas, betas, scales).
#[allow(clippy::type_complexity)]
fn forward_backward_scaled(hmm: &Hmm, obs: &[usize]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<f64>) {
    let n = hmm.n_states();
    let len = obs.len();
    let mut alphas = vec![vec![0.0; n]; len];
    let mut scales = vec![0.0; len];
    for t in 0..len {
        for j in 0..n {
            let prior = if t == 0 {
                hmm.initial()[j]
            } else {
                (0..n).map(|i| alphas[t - 1][i] * hmm.trans(i, j)).sum()
            };
            alphas[t][j] = prior * hmm.emit(j, obs[t]);
        }
        let scale: f64 = alphas[t].iter().sum();
        let scale = if scale > 0.0 { scale } else { 1.0 };
        scales[t] = scale;
        for a in alphas[t].iter_mut() {
            *a /= scale;
        }
    }
    let mut betas = vec![vec![1.0; n]; len];
    for t in (0..len - 1).rev() {
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += hmm.trans(i, j) * hmm.emit(j, obs[t + 1]) * betas[t + 1][j];
            }
            betas[t][i] = acc / scales[t + 1];
        }
    }
    (alphas, betas, scales)
}

/// Runs Baum–Welch over one or more observation sequences, starting from
/// `initial_model`.
pub fn baum_welch(
    initial_model: &Hmm,
    sequences: &[Vec<usize>],
    options: TrainOptions,
) -> Result<Trained, HmmError> {
    if sequences.is_empty() || sequences.iter().any(Vec::is_empty) {
        return Err(HmmError::EmptySequence);
    }
    let n = initial_model.n_states();
    let m = initial_model.n_obs();
    for seq in sequences {
        for &o in seq {
            if o >= m {
                return Err(HmmError::BadObservation { obs: o, n_obs: m });
            }
        }
    }

    let mut hmm = initial_model.clone();
    let mut prev_ll = f64::NEG_INFINITY;
    let mut iterations = 0;
    let mut log_likelihood = prev_ll;

    for iter in 0..options.max_iters {
        let mut init_acc = vec![options.smoothing; n];
        let mut trans_acc = vec![options.smoothing; n * n];
        let mut emit_acc = vec![options.smoothing; n * m];
        let mut ll = 0.0;

        for obs in sequences {
            let len = obs.len();
            let (alphas, betas, scales) = forward_backward_scaled(&hmm, obs);
            ll += scales.iter().map(|s| s.ln()).sum::<f64>();

            // State posteriors γ_t(i) ∝ α_t(i) β_t(i).
            for t in 0..len {
                let mut gamma: Vec<f64> = (0..n).map(|i| alphas[t][i] * betas[t][i]).collect();
                let z: f64 = gamma.iter().sum();
                if z > 0.0 {
                    for g in gamma.iter_mut() {
                        *g /= z;
                    }
                }
                for i in 0..n {
                    emit_acc[i * m + obs[t]] += gamma[i];
                    if t == 0 {
                        init_acc[i] += gamma[i];
                    }
                }
            }
            // Pair posteriors ξ_t(i,j).
            for t in 0..len - 1 {
                let mut z = 0.0;
                let mut xi = vec![0.0; n * n];
                for i in 0..n {
                    if alphas[t][i] == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        let v = alphas[t][i]
                            * hmm.trans(i, j)
                            * hmm.emit(j, obs[t + 1])
                            * betas[t + 1][j];
                        xi[i * n + j] = v;
                        z += v;
                    }
                }
                if z > 0.0 {
                    for (slot, &v) in trans_acc.iter_mut().zip(&xi) {
                        *slot += v / z;
                    }
                }
            }
        }

        // M step: normalize the accumulators.
        let normalize_rows = |acc: &mut [f64], rows: usize, cols: usize| {
            for r in 0..rows {
                let sum: f64 = acc[r * cols..(r + 1) * cols].iter().sum();
                if sum > 0.0 {
                    for v in acc[r * cols..(r + 1) * cols].iter_mut() {
                        *v /= sum;
                    }
                }
            }
        };
        normalize_rows(&mut init_acc, 1, n);
        normalize_rows(&mut trans_acc, n, n);
        normalize_rows(&mut emit_acc, n, m);
        hmm = Hmm::new(init_acc, trans_acc, emit_acc, m)?;

        iterations = iter + 1;
        log_likelihood = ll;
        if (ll - prev_ll).abs() < options.tol {
            break;
        }
        prev_ll = ll;
    }

    Ok(Trained {
        hmm,
        log_likelihood,
        iterations,
    })
}

/// Total scaled-forward log-likelihood of sequences under a model
/// (useful for comparing models on held-out data).
pub fn log_likelihood(hmm: &Hmm, sequences: &[Vec<usize>]) -> Result<f64, HmmError> {
    if sequences.is_empty() || sequences.iter().any(Vec::is_empty) {
        return Err(HmmError::EmptySequence);
    }
    let mut total = 0.0;
    for obs in sequences {
        for &o in obs {
            if o >= hmm.n_obs() {
                return Err(HmmError::BadObservation {
                    obs: o,
                    n_obs: hmm.n_obs(),
                });
            }
        }
        let (_, _, scales) = forward_backward_scaled(hmm, obs);
        total += scales.iter().map(|s| s.ln()).sum::<f64>();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn true_model() -> Hmm {
        Hmm::new(
            vec![0.7, 0.3],
            vec![0.85, 0.15, 0.25, 0.75],
            vec![0.9, 0.1, 0.2, 0.8],
            2,
        )
        .unwrap()
    }

    fn perturbed() -> Hmm {
        Hmm::new(
            vec![0.5, 0.5],
            vec![0.6, 0.4, 0.4, 0.6],
            vec![0.7, 0.3, 0.4, 0.6],
            2,
        )
        .unwrap()
    }

    fn training_data(n_seqs: usize, len: usize) -> Vec<Vec<usize>> {
        let model = true_model();
        let mut rng = SmallRng::seed_from_u64(77);
        (0..n_seqs).map(|_| model.sample(len, &mut rng).1).collect()
    }

    #[test]
    fn em_monotonically_improves_likelihood() {
        let data = training_data(10, 80);
        let start = perturbed();
        let mut lls = Vec::new();
        let mut model = start.clone();
        for _ in 0..8 {
            let step = baum_welch(
                &model,
                &data,
                TrainOptions {
                    max_iters: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            model = step.hmm;
            lls.push(log_likelihood(&model, &data).unwrap());
        }
        for w in lls.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "EM decreased the likelihood: {lls:?}");
        }
    }

    #[test]
    fn training_beats_the_perturbed_start() {
        let data = training_data(20, 100);
        let start = perturbed();
        let before = log_likelihood(&start, &data).unwrap();
        let trained = baum_welch(&start, &data, TrainOptions::default()).unwrap();
        assert!(trained.log_likelihood > before + 1.0);
        assert!(trained.iterations >= 2);
        // Held-out generalization.
        let held_out = training_data(5, 100);
        let lo_before = log_likelihood(&start, &held_out).unwrap();
        let lo_after = log_likelihood(&trained.hmm, &held_out).unwrap();
        assert!(lo_after > lo_before, "{lo_after} vs {lo_before}");
    }

    #[test]
    fn recovers_emission_structure() {
        let data = training_data(30, 120);
        let trained = baum_welch(&perturbed(), &data, TrainOptions::default()).unwrap();
        // Up to state relabeling, one state should strongly emit symbol 0
        // and the other symbol 1 (as in the true model: 0.9 / 0.8).
        let e00 = trained.hmm.emit(0, 0);
        let e11 = trained.hmm.emit(1, 1);
        let e01 = trained.hmm.emit(0, 1);
        let e10 = trained.hmm.emit(1, 0);
        let aligned = e00.max(e01) > 0.75 && e11.max(e10) > 0.65;
        assert!(aligned, "emissions not recovered: {trained:?}");
    }

    #[test]
    fn rejects_bad_input() {
        let m = true_model();
        assert!(baum_welch(&m, &[], TrainOptions::default()).is_err());
        assert!(baum_welch(&m, &[vec![]], TrainOptions::default()).is_err());
        assert!(baum_welch(&m, &[vec![5]], TrainOptions::default()).is_err());
        assert!(log_likelihood(&m, &[vec![9]]).is_err());
    }

    #[test]
    fn trained_model_parameters_are_stochastic() {
        let data = training_data(5, 40);
        let trained = baum_welch(&perturbed(), &data, TrainOptions::default()).unwrap();
        let n = trained.hmm.n_states();
        for i in 0..n {
            let t_sum: f64 = (0..n).map(|j| trained.hmm.trans(i, j)).sum();
            assert!((t_sum - 1.0).abs() < 1e-9);
            let e_sum: f64 = (0..trained.hmm.n_obs())
                .map(|o| trained.hmm.emit(i, o))
                .sum();
            assert!((e_sum - 1.0).abs() < 1e-9);
        }
    }
}
