//! Discrete hidden Markov models.
//!
//! A model over `n` hidden states and `m` observation symbols, defined by
//! an initial distribution, a row-stochastic transition matrix
//! `A[i][j] = P[X_{t+1} = j | X_t = i]`, and an emission matrix
//! `B[i][o] = P[O_t = o | X_t = i]`. In the Lahar pipeline, hidden states
//! are locations and observations are antenna readings (with a dedicated
//! "no reading" symbol).

use rand::Rng;
use std::fmt;

/// Errors raised while constructing or running an HMM.
#[derive(Debug, Clone, PartialEq)]
pub enum HmmError {
    /// A matrix or vector has the wrong dimension.
    Dimension {
        /// What was being validated.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// A row does not sum to 1.
    NotStochastic {
        /// What was being validated.
        what: &'static str,
        /// The row index.
        row: usize,
        /// The row sum.
        sum: f64,
    },
    /// An observation symbol is out of range.
    BadObservation {
        /// The symbol.
        obs: usize,
        /// The alphabet size.
        n_obs: usize,
    },
    /// The observation sequence is empty.
    EmptySequence,
}

impl fmt::Display for HmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmmError::Dimension {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected length {expected}, got {got}"),
            HmmError::NotStochastic { what, row, sum } => {
                write!(f, "{what} row {row} sums to {sum}, expected 1")
            }
            HmmError::BadObservation { obs, n_obs } => {
                write!(f, "observation {obs} outside alphabet of size {n_obs}")
            }
            HmmError::EmptySequence => write!(f, "empty observation sequence"),
        }
    }
}

impl std::error::Error for HmmError {}

const EPS: f64 = 1e-6;

fn check_stochastic(
    what: &'static str,
    rows: usize,
    cols: usize,
    data: &[f64],
) -> Result<(), HmmError> {
    if data.len() != rows * cols {
        return Err(HmmError::Dimension {
            what,
            expected: rows * cols,
            got: data.len(),
        });
    }
    for r in 0..rows {
        let sum: f64 = data[r * cols..(r + 1) * cols].iter().sum();
        if (sum - 1.0).abs() > EPS {
            return Err(HmmError::NotStochastic { what, row: r, sum });
        }
    }
    Ok(())
}

/// A discrete HMM.
#[derive(Debug, Clone)]
pub struct Hmm {
    n_states: usize,
    n_obs: usize,
    initial: Vec<f64>,
    /// Row-major `n_states × n_states`.
    trans: Vec<f64>,
    /// Row-major `n_states × n_obs`.
    emit: Vec<f64>,
}

impl Hmm {
    /// Validates and builds a model.
    pub fn new(
        initial: Vec<f64>,
        trans: Vec<f64>,
        emit: Vec<f64>,
        n_obs: usize,
    ) -> Result<Self, HmmError> {
        let n = initial.len();
        check_stochastic("initial", 1, n, &initial)?;
        check_stochastic("transition", n, n, &trans)?;
        check_stochastic("emission", n, n_obs, &emit)?;
        Ok(Self {
            n_states: n,
            n_obs,
            initial,
            trans,
            emit,
        })
    }

    /// Number of hidden states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Observation alphabet size.
    pub fn n_obs(&self) -> usize {
        self.n_obs
    }

    /// The initial distribution.
    pub fn initial(&self) -> &[f64] {
        &self.initial
    }

    /// `P[X_{t+1} = j | X_t = i]`.
    #[inline]
    pub fn trans(&self, i: usize, j: usize) -> f64 {
        self.trans[i * self.n_states + j]
    }

    /// `P[O = o | X = i]`.
    #[inline]
    pub fn emit(&self, i: usize, o: usize) -> f64 {
        self.emit[i * self.n_obs + o]
    }

    /// Samples a hidden trajectory and its observations.
    pub fn sample<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> (Vec<usize>, Vec<usize>) {
        let mut states = Vec::with_capacity(len);
        let mut obs = Vec::with_capacity(len);
        let mut cur = sample_index(&self.initial, rng);
        for t in 0..len {
            if t > 0 {
                let row = &self.trans[cur * self.n_states..(cur + 1) * self.n_states];
                cur = sample_index(row, rng);
            }
            states.push(cur);
            let row = &self.emit[cur * self.n_obs..(cur + 1) * self.n_obs];
            obs.push(sample_index(row, rng));
        }
        (states, obs)
    }

    fn validate_obs(&self, obs: &[usize]) -> Result<(), HmmError> {
        if obs.is_empty() {
            return Err(HmmError::EmptySequence);
        }
        for &o in obs {
            if o >= self.n_obs {
                return Err(HmmError::BadObservation {
                    obs: o,
                    n_obs: self.n_obs,
                });
            }
        }
        Ok(())
    }

    /// Forward (filtering) pass: `P[X_t | o_{1..t}]` for every `t`.
    ///
    /// This is the *real-time* inference producing independent marginals
    /// (paper §2.4). Scaled to avoid underflow.
    pub fn filter(&self, obs: &[usize]) -> Result<Vec<Vec<f64>>, HmmError> {
        self.validate_obs(obs)?;
        let n = self.n_states;
        let mut out = Vec::with_capacity(obs.len());
        let mut alpha = vec![0.0; n];
        for (t, &o) in obs.iter().enumerate() {
            let mut next = vec![0.0; n];
            if t == 0 {
                for j in 0..n {
                    next[j] = self.initial[j] * self.emit(j, o);
                }
            } else {
                for i in 0..n {
                    if alpha[i] == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        next[j] += alpha[i] * self.trans(i, j);
                    }
                }
                for (j, slot) in next.iter_mut().enumerate() {
                    *slot *= self.emit(j, o);
                }
            }
            normalize(&mut next);
            out.push(next.clone());
            alpha = next;
        }
        Ok(out)
    }

    /// Forward–backward (smoothing) pass, producing smoothed marginals and
    /// the smoothed conditional probability tables that Lahar consumes as
    /// Markovian stream CPTs (paper §2.4, archived scenario).
    pub fn smooth(&self, obs: &[usize]) -> Result<Smoothed, HmmError> {
        self.validate_obs(obs)?;
        let n = self.n_states;
        let len = obs.len();

        // Scaled forward pass, keeping every alpha.
        let mut alphas = Vec::with_capacity(len);
        {
            let mut alpha = vec![0.0; n];
            for (t, &o) in obs.iter().enumerate() {
                let mut next = vec![0.0; n];
                if t == 0 {
                    for j in 0..n {
                        next[j] = self.initial[j] * self.emit(j, o);
                    }
                } else {
                    for i in 0..n {
                        if alpha[i] == 0.0 {
                            continue;
                        }
                        for j in 0..n {
                            next[j] += alpha[i] * self.trans(i, j);
                        }
                    }
                    for (j, slot) in next.iter_mut().enumerate() {
                        *slot *= self.emit(j, o);
                    }
                }
                normalize(&mut next);
                alphas.push(next.clone());
                alpha = next;
            }
        }

        // Scaled backward pass.
        let mut betas = vec![vec![1.0; n]; len];
        for t in (0..len - 1).rev() {
            let o_next = obs[t + 1];
            let mut beta = vec![0.0; n];
            for i in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += self.trans(i, j) * self.emit(j, o_next) * betas[t + 1][j];
                }
                beta[i] = acc;
            }
            normalize(&mut beta);
            betas[t] = beta;
        }

        // Smoothed marginals γ_t ∝ α_t · β_t.
        let mut marginals = Vec::with_capacity(len);
        for t in 0..len {
            let mut g: Vec<f64> = (0..n).map(|i| alphas[t][i] * betas[t][i]).collect();
            normalize(&mut g);
            marginals.push(g);
        }

        // Smoothed CPTs: P[X_{t+1} = j | X_t = i, o_{1:T}]
        //   ∝ A[i][j] · B[j][o_{t+1}] · β_{t+1}(j).
        // Rows with unreachable i (γ_t(i) = 0) fall back to the prior row.
        let mut cpts = Vec::with_capacity(len - 1);
        for t in 0..len - 1 {
            let o_next = obs[t + 1];
            let mut cpt = vec![0.0; n * n];
            for i in 0..n {
                let row = &mut cpt[i * n..(i + 1) * n];
                let mut sum = 0.0;
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot = self.trans(i, j) * self.emit(j, o_next) * betas[t + 1][j];
                    sum += *slot;
                }
                if sum > 0.0 {
                    for slot in row.iter_mut() {
                        *slot /= sum;
                    }
                } else {
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot = self.trans(i, j);
                    }
                }
            }
            cpts.push(cpt);
        }

        Ok(Smoothed {
            n_states: n,
            marginals,
            cpts,
        })
    }

    /// Viterbi decoding: the maximum a-posteriori hidden path (paper §4.1,
    /// the MAP competitor).
    pub fn viterbi(&self, obs: &[usize]) -> Result<Vec<usize>, HmmError> {
        self.validate_obs(obs)?;
        let n = self.n_states;
        let len = obs.len();
        // Log-space to avoid underflow; -inf encodes impossibility.
        let log = |p: f64| if p > 0.0 { p.ln() } else { f64::NEG_INFINITY };
        let mut delta: Vec<f64> = (0..n)
            .map(|j| log(self.initial[j]) + log(self.emit(j, obs[0])))
            .collect();
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(len);
        back.push(vec![0; n]);
        for &o in &obs[1..] {
            let mut next = vec![f64::NEG_INFINITY; n];
            let mut arg = vec![0; n];
            for j in 0..n {
                let e = log(self.emit(j, o));
                if e == f64::NEG_INFINITY {
                    continue;
                }
                for i in 0..n {
                    let cand = delta[i] + log(self.trans(i, j));
                    if cand > next[j] {
                        next[j] = cand;
                        arg[j] = i;
                    }
                }
                next[j] += e;
            }
            back.push(arg);
            delta = next;
        }
        let mut best = 0;
        for j in 1..n {
            if delta[j] > delta[best] {
                best = j;
            }
        }
        let mut path = vec![best; len];
        for t in (1..len).rev() {
            path[t - 1] = back[t][path[t]];
        }
        Ok(path)
    }

    /// Joint probability of a full (states, observations) assignment.
    /// Brute-force helper used by tests.
    pub fn joint_prob(&self, states: &[usize], obs: &[usize]) -> f64 {
        assert_eq!(states.len(), obs.len());
        let mut p = 1.0;
        for t in 0..states.len() {
            p *= if t == 0 {
                self.initial[states[0]]
            } else {
                self.trans(states[t - 1], states[t])
            };
            p *= self.emit(states[t], obs[t]);
        }
        p
    }
}

/// Output of the smoothing pass.
#[derive(Debug, Clone)]
pub struct Smoothed {
    n_states: usize,
    /// `marginals[t][i] = P[X_t = i | o_{1:T}]`.
    pub marginals: Vec<Vec<f64>>,
    /// `cpts[t][i * n + j] = P[X_{t+1} = j | X_t = i, o_{1:T}]`
    /// (row-stochastic `n × n`, one per transition).
    pub cpts: Vec<Vec<f64>>,
}

impl Smoothed {
    /// Number of hidden states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.marginals.len()
    }

    /// True when no timesteps were smoothed.
    pub fn is_empty(&self) -> bool {
        self.marginals.is_empty()
    }
}

pub(crate) fn normalize(v: &mut [f64]) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    } else {
        let n = v.len() as f64;
        for x in v.iter_mut() {
            *x = 1.0 / n;
        }
    }
}

pub(crate) fn sample_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Two states, two observations; a classic umbrella-world model.
    fn tiny() -> Hmm {
        Hmm::new(
            vec![0.6, 0.4],
            vec![0.7, 0.3, 0.4, 0.6],
            vec![0.9, 0.1, 0.2, 0.8],
            2,
        )
        .unwrap()
    }

    /// Enumerates all hidden paths for brute-force posterior computation.
    fn enumerate_paths(n: usize, len: usize) -> Vec<Vec<usize>> {
        let mut out = vec![vec![]];
        for _ in 0..len {
            let mut next = Vec::new();
            for p in &out {
                for s in 0..n {
                    let mut q = p.clone();
                    q.push(s);
                    next.push(q);
                }
            }
            out = next;
        }
        out
    }

    #[test]
    fn construction_validates() {
        assert!(Hmm::new(vec![0.5, 0.4], vec![1.0, 0.0, 0.0, 1.0], vec![1.0, 1.0], 1).is_err());
        assert!(Hmm::new(vec![0.5, 0.5], vec![0.9, 0.0, 0.0, 1.0], vec![1.0, 1.0], 1).is_err());
        assert!(Hmm::new(vec![1.0], vec![1.0], vec![0.5, 0.6], 2).is_err());
        assert!(tiny().filter(&[]).is_err());
        assert!(tiny().filter(&[5]).is_err());
    }

    #[test]
    fn filter_matches_brute_force_posterior() {
        let hmm = tiny();
        let obs = vec![0, 1, 0, 0];
        let filtered = hmm.filter(&obs).unwrap();
        for t in 0..obs.len() {
            // Brute force over prefixes of length t+1.
            let paths = enumerate_paths(2, t + 1);
            let mut post = [0.0; 2];
            let mut total = 0.0;
            for p in &paths {
                let pr = hmm.joint_prob(p, &obs[..=t]);
                post[p[t]] += pr;
                total += pr;
            }
            for i in 0..2 {
                assert!(
                    (filtered[t][i] - post[i] / total).abs() < 1e-9,
                    "t={t} i={i}"
                );
            }
        }
    }

    #[test]
    fn smoothed_marginals_match_brute_force() {
        let hmm = tiny();
        let obs = vec![0, 1, 1, 0];
        let sm = hmm.smooth(&obs).unwrap();
        let paths = enumerate_paths(2, obs.len());
        let mut total = 0.0;
        let mut post = vec![vec![0.0; 2]; obs.len()];
        for p in &paths {
            let pr = hmm.joint_prob(p, &obs);
            total += pr;
            for (t, &s) in p.iter().enumerate() {
                post[t][s] += pr;
            }
        }
        for t in 0..obs.len() {
            for i in 0..2 {
                assert!(
                    (sm.marginals[t][i] - post[t][i] / total).abs() < 1e-9,
                    "t={t} i={i}: {} vs {}",
                    sm.marginals[t][i],
                    post[t][i] / total
                );
            }
        }
    }

    #[test]
    fn smoothed_cpts_match_brute_force_conditionals() {
        let hmm = tiny();
        let obs = vec![0, 1, 0];
        let sm = hmm.smooth(&obs).unwrap();
        let paths = enumerate_paths(2, obs.len());
        for t in 0..obs.len() - 1 {
            for i in 0..2 {
                let mut joint = [0.0; 2];
                let mut marg = 0.0;
                for p in &paths {
                    if p[t] != i {
                        continue;
                    }
                    let pr = hmm.joint_prob(p, &obs);
                    joint[p[t + 1]] += pr;
                    marg += pr;
                }
                if marg == 0.0 {
                    continue;
                }
                for j in 0..2 {
                    let want = joint[j] / marg;
                    let got = sm.cpts[t][i * 2 + j];
                    assert!(
                        (got - want).abs() < 1e-9,
                        "t={t} i={i} j={j}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn smoothed_cpts_are_row_stochastic_and_consistent_with_marginals() {
        let hmm = tiny();
        let obs = vec![0, 0, 1, 1, 0, 1];
        let sm = hmm.smooth(&obs).unwrap();
        let n = sm.n_states();
        for cpt in &sm.cpts {
            for i in 0..n {
                let sum: f64 = cpt[i * n..(i + 1) * n].iter().sum();
                assert!((sum - 1.0).abs() < 1e-9);
            }
        }
        // Chaining marginal_t through cpt_t must give marginal_{t+1}.
        for t in 0..sm.cpts.len() {
            for j in 0..n {
                let chained: f64 = (0..n)
                    .map(|i| sm.marginals[t][i] * sm.cpts[t][i * n + j])
                    .sum();
                assert!(
                    (chained - sm.marginals[t + 1][j]).abs() < 1e-9,
                    "t={t} j={j}"
                );
            }
        }
    }

    #[test]
    fn viterbi_matches_brute_force_argmax() {
        let hmm = tiny();
        for obs in [vec![0, 1, 0], vec![1, 1, 1, 0], vec![0, 0, 1, 1, 0]] {
            let got = hmm.viterbi(&obs).unwrap();
            let best = enumerate_paths(2, obs.len())
                .into_iter()
                .max_by(|a, b| {
                    hmm.joint_prob(a, &obs)
                        .partial_cmp(&hmm.joint_prob(b, &obs))
                        .unwrap()
                })
                .unwrap();
            assert!(
                (hmm.joint_prob(&got, &obs) - hmm.joint_prob(&best, &obs)).abs() < 1e-12,
                "obs {obs:?}: viterbi {got:?} vs best {best:?}"
            );
        }
    }

    #[test]
    fn sampling_statistics_match_model() {
        let hmm = tiny();
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 40_000;
        let mut first_state = [0usize; 2];
        for _ in 0..n {
            let (states, obs) = hmm.sample(3, &mut rng);
            assert_eq!(states.len(), 3);
            assert_eq!(obs.len(), 3);
            first_state[states[0]] += 1;
        }
        let freq = first_state[0] as f64 / n as f64;
        assert!((freq - 0.6).abs() < 0.01, "{freq}");
    }
}
