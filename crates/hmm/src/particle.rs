//! Sequential importance resampling (SIR) particle filtering.
//!
//! The paper's real-time pipeline (§2.4) estimates per-timestep location
//! marginals with a particle filter: each particle is a guess about the
//! hidden state; particles are propagated through the transition model,
//! weighted by the emission likelihood of the current observation, and
//! resampled. Marginals are particle counts divided by the population —
//! which is also the source of the paper's *particle churn* artifact
//! (§4.2.1): in low-information stretches the population drifts between
//! plausible states, sparking spurious low-probability events.

use crate::model::{sample_index, Hmm, HmmError};
use rand::Rng;

/// A SIR particle filter over a discrete HMM.
#[derive(Debug, Clone)]
pub struct ParticleFilter {
    hmm: Hmm,
    particles: Vec<usize>,
    started: bool,
}

impl ParticleFilter {
    /// Creates a filter with `n_particles` particles.
    pub fn new(hmm: Hmm, n_particles: usize) -> Self {
        assert!(n_particles > 0, "need at least one particle");
        Self {
            hmm,
            particles: vec![0; n_particles],
            started: false,
        }
    }

    /// The underlying model.
    pub fn hmm(&self) -> &Hmm {
        &self.hmm
    }

    /// Number of particles.
    pub fn n_particles(&self) -> usize {
        self.particles.len()
    }

    /// Advances one timestep on `obs`, returning the estimated marginal
    /// `P[X_t | o_{1..t}]` as particle frequencies.
    pub fn step<R: Rng + ?Sized>(&mut self, obs: usize, rng: &mut R) -> Result<Vec<f64>, HmmError> {
        if obs >= self.hmm.n_obs() {
            return Err(HmmError::BadObservation {
                obs,
                n_obs: self.hmm.n_obs(),
            });
        }
        let n = self.hmm.n_states();
        // Predict.
        if !self.started {
            for p in self.particles.iter_mut() {
                *p = sample_index(self.hmm.initial(), rng);
            }
            self.started = true;
        } else {
            let mut row = vec![0.0; n];
            for p in self.particles.iter_mut() {
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot = self.hmm.trans(*p, j);
                }
                *p = sample_index(&row, rng);
            }
        }
        // Weight.
        let weights: Vec<f64> = self
            .particles
            .iter()
            .map(|&p| self.hmm.emit(p, obs))
            .collect();
        let total: f64 = weights.iter().sum();
        if total == 0.0 {
            // Degenerate observation: reinitialize uniformly (standard
            // particle-filter rescue; rare with a "no reading" symbol).
            for p in self.particles.iter_mut() {
                *p = rng.gen_range(0..n);
            }
        } else {
            self.resample_systematic(&weights, total, rng);
        }
        // Marginal from counts.
        let mut counts = vec![0.0; n];
        for &p in &self.particles {
            counts[p] += 1.0;
        }
        let m = self.particles.len() as f64;
        for c in counts.iter_mut() {
            *c /= m;
        }
        Ok(counts)
    }

    /// Runs the filter over a whole observation sequence.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        obs: &[usize],
        rng: &mut R,
    ) -> Result<Vec<Vec<f64>>, HmmError> {
        obs.iter().map(|&o| self.step(o, rng)).collect()
    }

    /// Systematic (low-variance) resampling.
    fn resample_systematic<R: Rng + ?Sized>(&mut self, weights: &[f64], total: f64, rng: &mut R) {
        let m = self.particles.len();
        let step = total / m as f64;
        let mut u = rng.gen::<f64>() * step;
        let mut acc = 0.0;
        let mut i = 0;
        let mut new = Vec::with_capacity(m);
        for (p, &w) in self.particles.iter().zip(weights) {
            acc += w;
            while i < m && u <= acc {
                new.push(*p);
                u += step;
                i += 1;
            }
        }
        while new.len() < m {
            new.push(*self.particles.last().expect("non-empty"));
        }
        self.particles = new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny() -> Hmm {
        Hmm::new(
            vec![0.6, 0.4],
            vec![0.7, 0.3, 0.4, 0.6],
            vec![0.9, 0.1, 0.2, 0.8],
            2,
        )
        .unwrap()
    }

    #[test]
    fn converges_to_exact_filter() {
        let hmm = tiny();
        let obs = vec![0, 1, 0, 0, 1];
        let exact = hmm.filter(&obs).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        // Average several runs of a large filter.
        let runs = 20;
        let mut acc = vec![vec![0.0; 2]; obs.len()];
        for _ in 0..runs {
            let mut pf = ParticleFilter::new(hmm.clone(), 5_000);
            let est = pf.run(&obs, &mut rng).unwrap();
            for (a, e) in acc.iter_mut().zip(est) {
                for (x, y) in a.iter_mut().zip(e) {
                    *x += y;
                }
            }
        }
        for t in 0..obs.len() {
            for i in 0..2 {
                let est = acc[t][i] / runs as f64;
                assert!(
                    (est - exact[t][i]).abs() < 0.02,
                    "t={t} i={i}: {est} vs {}",
                    exact[t][i]
                );
            }
        }
    }

    #[test]
    fn marginals_are_distributions() {
        let hmm = tiny();
        let mut pf = ParticleFilter::new(hmm, 100);
        let mut rng = SmallRng::seed_from_u64(3);
        for o in [0, 1, 1, 0, 1, 0, 0] {
            let m = pf.step(o, &mut rng).unwrap();
            let sum: f64 = m.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(m.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn rejects_bad_observations() {
        let hmm = tiny();
        let mut pf = ParticleFilter::new(hmm, 10);
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(pf.step(9, &mut rng).is_err());
    }

    #[test]
    fn particle_churn_exists_under_uninformative_observations() {
        // A model where observation 0 is uninformative ("no reading"):
        // repeated no-readings leave the population drifting, so the
        // estimated marginal fluctuates between steps — the phenomenon the
        // paper blames for low-threshold precision loss (§4.2.1).
        let hmm = Hmm::new(vec![0.5, 0.5], vec![0.5, 0.5, 0.5, 0.5], vec![1.0, 1.0], 1).unwrap();
        let mut pf = ParticleFilter::new(hmm, 50);
        let mut rng = SmallRng::seed_from_u64(5);
        let series: Vec<f64> = (0..40).map(|_| pf.step(0, &mut rng).unwrap()[0]).collect();
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let var = series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / series.len() as f64;
        assert!(var > 1e-4, "expected churn, got variance {var}");
    }
}
