//! The symbolic alphabet of Lahar's translated queries.
//!
//! The paper (§3.1.1) translates a query with subgoals `g1 … gn` into a
//! regular expression over `Σ = P(L_q)` where
//! `L_q = {m1 … mn, a1 … an}`: at each timestep the input is the *set* of
//! match/accept symbols produced by that timestep's events. We represent an
//! element of `Σ` as a bitmask ([`SymbolSet`]) and edge labels as set
//! predicates ([`Pred`]): either "input ⊇ S" or "input ∩ S = ∅".

use std::fmt;

/// A subset of the query's symbol universe `L_q`, packed into a `u64`.
///
/// Lahar assigns bit `2i` to the *match* symbol `m_i` and bit `2i + 1` to
/// the *accept* symbol `a_i` of subgoal `i` (a convention, not a
/// requirement of this crate). A `u64` bounds queries at 32 subgoals — far
/// beyond the ≤5 the paper finds practical (§4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SymbolSet(pub u64);

impl SymbolSet {
    /// The empty set.
    pub const EMPTY: SymbolSet = SymbolSet(0);

    /// A singleton set of the given symbol index.
    pub fn singleton(bit: u32) -> Self {
        SymbolSet(1u64 << bit)
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: SymbolSet) -> Self {
        SymbolSet(self.0 | other.0)
    }

    /// Inserts a symbol index in place.
    pub fn insert(&mut self, bit: u32) {
        self.0 |= 1u64 << bit;
    }

    /// True if the symbol index is present.
    pub fn contains(self, bit: u32) -> bool {
        self.0 & (1u64 << bit) != 0
    }

    /// True if `self ⊇ other`.
    pub fn is_superset(self, other: SymbolSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if `self ∩ other = ∅`.
    pub fn is_disjoint(self, other: SymbolSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Number of symbols in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True for the empty set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SymbolSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for bit in 0..64 {
            if self.contains(bit) {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{bit}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

/// An atomic predicate over [`SymbolSet`] inputs — the edge labels of
/// Lahar's automata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Matches inputs that contain every symbol of the set (`σ ⊇ S`).
    Superset(SymbolSet),
    /// Matches inputs disjoint from the set (`σ ∩ S = ∅`). `Disjoint(∅)` is
    /// the wildcard.
    Disjoint(SymbolSet),
}

impl Pred {
    /// The wildcard predicate (matches every input).
    pub fn any() -> Self {
        Pred::Disjoint(SymbolSet::EMPTY)
    }

    /// Evaluates the predicate on an input symbol set.
    #[inline]
    pub fn matches(self, input: SymbolSet) -> bool {
        match self {
            Pred::Superset(s) => input.is_superset(s),
            Pred::Disjoint(s) => input.is_disjoint(s),
        }
    }

    /// True for the wildcard.
    pub fn is_any(self) -> bool {
        matches!(self, Pred::Disjoint(s) | Pred::Superset(s) if s.is_empty())
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Superset(s) if s.is_empty() => write!(f, "."),
            Pred::Disjoint(s) if s.is_empty() => write!(f, "."),
            Pred::Superset(s) => write!(f, "{s}"),
            Pred::Disjoint(s) => write!(f, "¬{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_operations() {
        let mut s = SymbolSet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(10);
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        let t = SymbolSet::singleton(3);
        assert!(s.is_superset(t));
        assert!(!t.is_superset(s));
        assert!(t.is_disjoint(SymbolSet::singleton(4)));
        assert_eq!(s.union(SymbolSet::singleton(4)).len(), 3);
    }

    #[test]
    fn superset_predicate() {
        let p = Pred::Superset(SymbolSet::singleton(1).union(SymbolSet::singleton(2)));
        let mut input = SymbolSet::singleton(1);
        assert!(!p.matches(input));
        input.insert(2);
        assert!(p.matches(input));
        input.insert(5);
        assert!(p.matches(input));
    }

    #[test]
    fn disjoint_predicate() {
        let p = Pred::Disjoint(SymbolSet::singleton(0));
        assert!(p.matches(SymbolSet::EMPTY));
        assert!(p.matches(SymbolSet::singleton(1)));
        assert!(!p.matches(SymbolSet::singleton(0)));
    }

    #[test]
    fn wildcard_matches_everything() {
        let p = Pred::any();
        assert!(p.is_any());
        assert!(p.matches(SymbolSet::EMPTY));
        assert!(p.matches(SymbolSet(u64::MAX)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Pred::any().to_string(), ".");
        assert_eq!(Pred::Superset(SymbolSet::singleton(2)).to_string(), "{2}");
        assert_eq!(Pred::Disjoint(SymbolSet::singleton(1)).to_string(), "¬{1}");
    }
}
