//! A small growable bitset used for NFA state sets.
//!
//! Query automata have tens of states at most, so state sets are one or two
//! `u64` words; the set is still fully general. Operations the evaluator hot
//! loop needs (clear, union, iterate) avoid allocation.

/// A fixed-capacity bitset over `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set with room for `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// True when no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place union with `other` (capacities must match).
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// True if the two sets share any element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 4);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iter_in_order_across_words() {
        let mut s = BitSet::new(200);
        for i in [3usize, 64, 65, 150] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![3, 64, 65, 150]);
    }

    #[test]
    fn union_and_intersects() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        b.insert(69);
        assert!(!a.intersects(&b));
        a.union_with(&b);
        assert!(a.contains(69));
        assert!(a.intersects(&b));
    }

    #[test]
    fn clear_and_empty() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(5);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }
}
