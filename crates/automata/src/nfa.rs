//! Thompson construction and ε-free NFA stepping.
//!
//! Lahar compiles the translated regular expression to an NFA once per
//! query, then *simulates* it: the evaluator carries a set of active states
//! ([`BitSet`]) per hidden chain value and advances all of them on each
//! timestep's symbol set. Epsilon edges are eliminated at build time so the
//! per-step transition touches only labeled edges.

use crate::bitset::BitSet;
use crate::pred::{Pred, SymbolSet};
use crate::regex::Regex;

/// An ε-free nondeterministic finite automaton over [`SymbolSet`] inputs.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Per-state labeled edges; targets are pre-closed under ε.
    edges: Vec<Vec<(Pred, usize)>>,
    /// ε-closure of each state, used to close edge targets during stepping.
    closures: Vec<BitSet>,
    /// Accepting states (of the underlying Thompson automaton).
    accepting: BitSet,
    /// ε-closure of the start state.
    initial: BitSet,
}

/// Thompson fragment: entry and exit state of a sub-automaton.
struct Frag {
    start: usize,
    end: usize,
}

/// Mutable automaton under construction (with ε edges).
#[derive(Default)]
struct Builder {
    eps: Vec<Vec<usize>>,
    trans: Vec<Vec<(Pred, usize)>>,
}

impl Builder {
    fn state(&mut self) -> usize {
        self.eps.push(Vec::new());
        self.trans.push(Vec::new());
        self.eps.len() - 1
    }

    fn compile(&mut self, re: &Regex) -> Frag {
        match re {
            Regex::Epsilon => {
                let s = self.state();
                Frag { start: s, end: s }
            }
            Regex::Pred(p) => {
                let start = self.state();
                let end = self.state();
                self.trans[start].push((*p, end));
                Frag { start, end }
            }
            Regex::Concat(xs) => {
                let mut frag: Option<Frag> = None;
                for x in xs {
                    let next = self.compile(x);
                    frag = Some(match frag {
                        None => next,
                        Some(prev) => {
                            self.eps[prev.end].push(next.start);
                            Frag {
                                start: prev.start,
                                end: next.end,
                            }
                        }
                    });
                }
                frag.unwrap_or_else(|| {
                    let s = self.state();
                    Frag { start: s, end: s }
                })
            }
            Regex::Alt(xs) => {
                let start = self.state();
                let end = self.state();
                for x in xs {
                    let f = self.compile(x);
                    self.eps[start].push(f.start);
                    self.eps[f.end].push(end);
                }
                Frag { start, end }
            }
            Regex::Plus(x) => {
                let f = self.compile(x);
                let end = self.state();
                self.eps[f.end].push(f.start);
                self.eps[f.end].push(end);
                Frag {
                    start: f.start,
                    end,
                }
            }
            Regex::Star(x) => {
                let start = self.state();
                let f = self.compile(x);
                let end = self.state();
                self.eps[start].push(f.start);
                self.eps[start].push(end);
                self.eps[f.end].push(f.start);
                self.eps[f.end].push(end);
                Frag { start, end }
            }
        }
    }

    fn closure_of(&self, s: usize) -> BitSet {
        let n = self.eps.len();
        let mut set = BitSet::new(n);
        let mut stack = vec![s];
        set.insert(s);
        while let Some(u) = stack.pop() {
            for &v in &self.eps[u] {
                if !set.contains(v) {
                    set.insert(v);
                    stack.push(v);
                }
            }
        }
        set
    }
}

impl Nfa {
    /// Compiles a regular expression.
    pub fn compile(re: &Regex) -> Self {
        let mut b = Builder::default();
        let frag = b.compile(re);
        let n = b.eps.len();
        let closures: Vec<BitSet> = (0..n).map(|s| b.closure_of(s)).collect();

        // Flatten: from any state s, the labeled edges available are those of
        // every state in closure(s). Precomputing this keeps `step` a pure
        // scan over the edges of active states.
        let mut edges: Vec<Vec<(Pred, usize)>> = vec![Vec::new(); n];
        for s in 0..n {
            let mut out: Vec<(Pred, usize)> = Vec::new();
            for u in closures[s].iter() {
                for &(p, t) in &b.trans[u] {
                    if !out.contains(&(p, t)) {
                        out.push((p, t));
                    }
                }
            }
            edges[s] = out;
        }

        let mut accepting = BitSet::new(n);
        accepting.insert(frag.end);
        let initial = closures[frag.start].clone();
        Self {
            edges,
            closures,
            accepting,
            initial,
        }
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.edges.len()
    }

    /// The initial state set (ε-closure of the start state).
    pub fn initial(&self) -> &BitSet {
        &self.initial
    }

    /// True if the state set contains an accepting state.
    ///
    /// State sets produced by [`Nfa::initial`] / [`Nfa::step_into`] are
    /// always ε-closed, so a direct intersection test suffices.
    pub fn is_accepting(&self, states: &BitSet) -> bool {
        states.intersects(&self.accepting)
    }

    /// Advances `from` on input `input`, writing the (ε-closed) successor
    /// set into `out`. `out` is cleared first; no allocation happens when
    /// `out` has the right capacity.
    pub fn step_into(&self, from: &BitSet, input: SymbolSet, out: &mut BitSet) {
        out.clear();
        for s in from.iter() {
            for &(p, t) in &self.edges[s] {
                if p.matches(input) {
                    out.union_with(&self.closures[t]);
                }
            }
        }
    }

    /// Convenience allocating form of [`Nfa::step_into`].
    pub fn step(&self, from: &BitSet, input: SymbolSet) -> BitSet {
        let mut out = BitSet::new(self.n_states());
        self.step_into(from, input, &mut out);
        out
    }

    /// The labeled edges out of state `s` (targets not ε-closed; pair with
    /// [`Nfa::closure`]). Used by bulk simulators such as the bitvector
    /// sampler.
    pub fn edges(&self, s: usize) -> &[(Pred, usize)] {
        &self.edges[s]
    }

    /// All distinct edge predicates in the automaton.
    pub fn distinct_preds(&self) -> Vec<Pred> {
        let mut out: Vec<Pred> = Vec::new();
        for es in &self.edges {
            for &(p, _) in es {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// The ε-closure of state `s`.
    pub fn closure(&self, s: usize) -> &BitSet {
        &self.closures[s]
    }

    /// The accepting states of the underlying Thompson automaton.
    pub fn accepting_states(&self) -> &BitSet {
        &self.accepting
    }

    /// Runs the automaton over a whole word from the initial set.
    pub fn accepts(&self, word: &[SymbolSet]) -> bool {
        let mut cur = self.initial.clone();
        let mut next = BitSet::new(self.n_states());
        for &sym in word {
            self.step_into(&cur, sym, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        self.is_accepting(&cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::SymbolSet as S;

    fn sets(bits: &[&[u32]]) -> Vec<S> {
        bits.iter()
            .map(|b| {
                let mut s = S::EMPTY;
                for &x in *b {
                    s.insert(x);
                }
                s
            })
            .collect()
    }

    #[test]
    fn single_atom() {
        let nfa = Nfa::compile(&Regex::superset(S::singleton(0)));
        assert!(nfa.accepts(&sets(&[&[0]])));
        assert!(nfa.accepts(&sets(&[&[0, 5]])));
        assert!(!nfa.accepts(&sets(&[&[1]])));
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&sets(&[&[0], &[0]])));
    }

    #[test]
    fn epsilon_and_empty_concat() {
        let nfa = Nfa::compile(&Regex::Epsilon);
        assert!(nfa.accepts(&[]));
        assert!(!nfa.accepts(&sets(&[&[0]])));
        let nfa = Nfa::compile(&Regex::Concat(vec![]));
        assert!(nfa.accepts(&[]));
    }

    #[test]
    fn paper_example_3_12() {
        // .* {a1} ¬{m2,a2}* {a2}  with bits m1=0,a1=1,m2=2,a2=3.
        let e = Regex::any_star()
            .then(Regex::superset(S::singleton(1)))
            .then(Regex::disjoint(S::singleton(2).union(S::singleton(3))).star())
            .then(Regex::superset(S::singleton(3)));
        let nfa = Nfa::compile(&e);
        // q_f on input R(a) R(c) R(b): accepted.
        assert!(nfa.accepts(&sets(&[&[0, 1], &[], &[2, 3]])));
        // q_s on the same input: middle symbol {m2} kills both edges.
        assert!(!nfa.accepts(&sets(&[&[0, 1, 2], &[2], &[2, 3]])));
    }

    #[test]
    fn plus_requires_one() {
        let e = Regex::superset(S::singleton(0)).plus();
        let nfa = Nfa::compile(&e);
        assert!(!nfa.accepts(&[]));
        assert!(nfa.accepts(&sets(&[&[0]])));
        assert!(nfa.accepts(&sets(&[&[0], &[0], &[0]])));
        assert!(!nfa.accepts(&sets(&[&[0], &[1]])));
    }

    #[test]
    fn alternation() {
        let e = Regex::Alt(vec![
            Regex::superset(S::singleton(0)),
            Regex::superset(S::singleton(1)),
        ]);
        let nfa = Nfa::compile(&e);
        assert!(nfa.accepts(&sets(&[&[0]])));
        assert!(nfa.accepts(&sets(&[&[1]])));
        assert!(!nfa.accepts(&sets(&[&[2]])));
    }

    #[test]
    fn step_is_incremental() {
        let e = Regex::any_star().then(Regex::superset(S::singleton(1)));
        let nfa = Nfa::compile(&e);
        let mut cur = nfa.initial().clone();
        assert!(!nfa.is_accepting(&cur));
        cur = nfa.step(&cur, S::singleton(0));
        assert!(!nfa.is_accepting(&cur));
        cur = nfa.step(&cur, S::singleton(1));
        assert!(nfa.is_accepting(&cur));
        // Accepting is not sticky: the query must re-fire to accept again.
        cur = nfa.step(&cur, S::singleton(0));
        assert!(!nfa.is_accepting(&cur));
    }

    #[test]
    fn dead_state_set_stays_dead() {
        let e = Regex::superset(S::singleton(0)).then(Regex::superset(S::singleton(1)));
        let nfa = Nfa::compile(&e);
        let cur = nfa.step(nfa.initial(), S::singleton(5));
        assert!(cur.is_empty());
        let cur = nfa.step(&cur, S::singleton(0));
        assert!(cur.is_empty());
    }
}
