//! Symbolic regular expressions.
//!
//! The paper's translated query grammar (§3.1.1) is
//! `E = P | (E, E) | E+ | E*` where `P` is a set predicate. We add
//! alternation and ε for generality; they fall out of Thompson construction
//! for free and make the crate reusable.

use crate::pred::{Pred, SymbolSet};
use std::fmt;

/// A regular expression over [`SymbolSet`] inputs with [`Pred`] atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// The empty word ε.
    Epsilon,
    /// An atomic predicate consuming exactly one input symbol set.
    Pred(Pred),
    /// Concatenation, in order.
    Concat(Vec<Regex>),
    /// Alternation (union).
    Alt(Vec<Regex>),
    /// One or more repetitions.
    Plus(Box<Regex>),
    /// Zero or more repetitions.
    Star(Box<Regex>),
}

impl Regex {
    /// The wildcard atom `.`.
    pub fn any() -> Self {
        Regex::Pred(Pred::any())
    }

    /// `.*` — matches any word, used to anchor queries at any start time.
    pub fn any_star() -> Self {
        Regex::Star(Box::new(Regex::any()))
    }

    /// An atom matching inputs that contain all of `set`.
    pub fn superset(set: SymbolSet) -> Self {
        Regex::Pred(Pred::Superset(set))
    }

    /// An atom matching inputs disjoint from `set`.
    pub fn disjoint(set: SymbolSet) -> Self {
        Regex::Pred(Pred::Disjoint(set))
    }

    /// Concatenates `self` then `other`, flattening nested concatenations.
    #[must_use]
    pub fn then(self, other: Regex) -> Self {
        match (self, other) {
            (Regex::Epsilon, r) | (r, Regex::Epsilon) => r,
            (Regex::Concat(mut xs), Regex::Concat(ys)) => {
                xs.extend(ys);
                Regex::Concat(xs)
            }
            (Regex::Concat(mut xs), r) => {
                xs.push(r);
                Regex::Concat(xs)
            }
            (l, Regex::Concat(mut ys)) => {
                ys.insert(0, l);
                Regex::Concat(ys)
            }
            (l, r) => Regex::Concat(vec![l, r]),
        }
    }

    /// Wraps in Kleene plus.
    #[must_use]
    pub fn plus(self) -> Self {
        Regex::Plus(Box::new(self))
    }

    /// Wraps in Kleene star.
    #[must_use]
    pub fn star(self) -> Self {
        Regex::Star(Box::new(self))
    }

    /// True if the expression matches the empty word.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Epsilon => true,
            Regex::Pred(_) => false,
            Regex::Concat(xs) => xs.iter().all(Regex::nullable),
            Regex::Alt(xs) => xs.iter().any(Regex::nullable),
            Regex::Plus(x) => x.nullable(),
            Regex::Star(_) => true,
        }
    }

    /// Reference matcher: does the expression match the *entire* word?
    ///
    /// Straightforward structural recursion with explicit split-point
    /// enumeration — exponential in the worst case, used only to
    /// differential-test the NFA on small inputs.
    pub fn matches_word(&self, word: &[SymbolSet]) -> bool {
        match self {
            Regex::Epsilon => word.is_empty(),
            Regex::Pred(p) => word.len() == 1 && p.matches(word[0]),
            Regex::Concat(xs) => match xs.split_first() {
                None => word.is_empty(),
                Some((head, tail)) => (0..=word.len()).any(|k| {
                    head.matches_word(&word[..k])
                        && Regex::Concat(tail.to_vec()).matches_word(&word[k..])
                }),
            },
            Regex::Alt(xs) => xs.iter().any(|x| x.matches_word(word)),
            Regex::Plus(x) => {
                (1..=word.len()).any(|k| {
                    x.matches_word(&word[..k])
                        && (word.len() == k || Regex::Plus(x.clone()).matches_word(&word[k..]))
                }) || (x.nullable() && word.is_empty())
            }
            Regex::Star(x) => {
                word.is_empty()
                    || (1..=word.len()).any(|k| {
                        x.matches_word(&word[..k])
                            && Regex::Star(x.clone()).matches_word(&word[k..])
                    })
            }
        }
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Epsilon => write!(f, "ε"),
            Regex::Pred(p) => write!(f, "{p}"),
            Regex::Concat(xs) => {
                let parts: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
                write!(f, "({})", parts.join(", "))
            }
            Regex::Alt(xs) => {
                let parts: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
                write!(f, "({})", parts.join(" | "))
            }
            Regex::Plus(x) => write!(f, "{x}+"),
            Regex::Star(x) => write!(f, "{x}*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(bit: u32) -> SymbolSet {
        SymbolSet::singleton(bit)
    }

    #[test]
    fn nullability() {
        assert!(Regex::Epsilon.nullable());
        assert!(!Regex::any().nullable());
        assert!(Regex::any_star().nullable());
        assert!(!Regex::any().plus().nullable());
        assert!(Regex::Concat(vec![Regex::Epsilon, Regex::any_star()]).nullable());
        assert!(Regex::Alt(vec![Regex::any(), Regex::Epsilon]).nullable());
    }

    #[test]
    fn then_flattens() {
        let r = Regex::any().then(Regex::any()).then(Regex::any());
        match r {
            Regex::Concat(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected concat, got {other:?}"),
        }
        assert_eq!(Regex::Epsilon.then(Regex::any()), Regex::any());
    }

    #[test]
    fn reference_matcher_basics() {
        // {a1}, ¬{m2,a2}*, {a2} — the paper's Ex 3.12 skeleton.
        let a1 = s(1);
        let m2a2 = s(2).union(s(3));
        let a2 = s(3);
        let e = Regex::superset(a1)
            .then(Regex::disjoint(m2a2).star())
            .then(Regex::superset(a2));

        let w = |bits: &[&[u32]]| -> Vec<SymbolSet> {
            bits.iter()
                .map(|b| {
                    let mut set = SymbolSet::EMPTY;
                    for &x in *b {
                        set.insert(x);
                    }
                    set
                })
                .collect()
        };

        // q_f translation of input R(a) R(c) R(b): {m1,a1}, {}, {m2,a2}.
        assert!(e.matches_word(&w(&[&[0, 1], &[], &[2, 3]])));
        // q_s translation: {m1,a1,m2}, {m2}, {m2,a2} — middle symbol hits m2.
        assert!(!e.matches_word(&w(&[&[0, 1, 2], &[2], &[2, 3]])));
        // Wrong length.
        assert!(!e.matches_word(&w(&[&[0, 1]])));
    }

    #[test]
    fn plus_and_star() {
        let e = Regex::superset(s(0)).plus();
        let one = vec![s(0)];
        let three = vec![s(0); 3];
        assert!(e.matches_word(&one));
        assert!(e.matches_word(&three));
        assert!(!e.matches_word(&[]));
        let st = Regex::superset(s(0)).star();
        assert!(st.matches_word(&[]));
        assert!(st.matches_word(&three));
        assert!(!st.matches_word(&[SymbolSet::EMPTY]));
    }

    #[test]
    fn display_round_trip_shape() {
        let e = Regex::any_star().then(Regex::superset(s(1)));
        assert_eq!(e.to_string(), "(.*, {1})");
    }
}
