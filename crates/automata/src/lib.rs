//! # lahar-automata — symbolic automata over set-predicate alphabets
//!
//! The automaton machinery behind Lahar's regular-query evaluation
//! (paper §3.1): regular expressions whose atoms are *set predicates* over
//! a universe of match/accept symbols — "input contains all of S"
//! ([`Pred::Superset`]) or "input is disjoint from S" ([`Pred::Disjoint`]) —
//! compiled via Thompson construction into ε-free NFAs that are simulated
//! with bitset state sets.
//!
//! This crate is independent of the probabilistic machinery: it knows
//! nothing about streams or probabilities. `lahar-core` layers the Markov
//! chain over (hidden value × automaton state) pairs on top of
//! [`Nfa::step_into`].

#![warn(missing_docs)]

mod bitset;
mod nfa;
mod pred;
mod regex;

pub use bitset::BitSet;
pub use nfa::Nfa;
pub use pred::{Pred, SymbolSet};
pub use regex::Regex;
