//! Differential testing: the Thompson NFA must agree with the structural
//! reference matcher on arbitrary regexes and words.

use lahar_automata::{Nfa, Regex, SymbolSet};
use proptest::prelude::*;

/// Strategy for symbol sets over a tiny universe (4 bits) so collisions
/// between predicates and inputs are common.
fn symbol_set() -> impl Strategy<Value = SymbolSet> {
    (0u64..16).prop_map(SymbolSet)
}

fn regex(depth: u32) -> BoxedStrategy<Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        symbol_set().prop_map(Regex::superset),
        symbol_set().prop_map(Regex::disjoint),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::Concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::Alt),
            inner.clone().prop_map(|r| r.plus()),
            inner.prop_map(|r| r.star()),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn nfa_agrees_with_reference_matcher(
        re in regex(3),
        word in prop::collection::vec(symbol_set(), 0..6),
    ) {
        let nfa = Nfa::compile(&re);
        prop_assert_eq!(
            nfa.accepts(&word),
            re.matches_word(&word),
            "regex {} on word {:?}", re, word
        );
    }

    #[test]
    fn empty_word_acceptance_equals_nullability(re in regex(3)) {
        let nfa = Nfa::compile(&re);
        prop_assert_eq!(nfa.accepts(&[]), re.nullable());
    }

    #[test]
    fn star_always_accepts_prefix_free_restart(
        re in regex(2),
        word in prop::collection::vec(symbol_set(), 0..5),
    ) {
        // r* matches any word that splits into r-matching chunks; in
        // particular r* matches the empty word and r+ implies r*.
        let star = Nfa::compile(&re.clone().star());
        let plus = Nfa::compile(&re.clone().plus());
        prop_assert!(star.accepts(&[]));
        if plus.accepts(&word) {
            prop_assert!(star.accepts(&word), "regex {}+ accepted but {}* not on {:?}", re, re, word);
        }
    }
}
