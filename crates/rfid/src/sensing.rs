//! The RFID reader model: noisy, incomplete observations of tag locations.
//!
//! Real deployments detect only 10–90% of tags in range (paper §1.1); we
//! model each antenna as reading a covered tag with `read_rate` in its
//! primary segment and `spill_rate` in neighboring segments (the source of
//! *conflicting readings*). At most one antenna reports per tick; the
//! antennas covering a location fire in a fixed order and the first wins,
//! which keeps the generative model and the HMM emission matrix in exact
//! agreement.

use crate::floorplan::FloorPlan;
use rand::Rng;

/// Reader model parameters.
#[derive(Debug, Clone, Copy)]
pub struct SensingConfig {
    /// Detection probability in an antenna's primary segment.
    pub read_rate: f64,
    /// Detection probability in the spill-over segments.
    pub spill_rate: f64,
}

impl Default for SensingConfig {
    fn default() -> Self {
        Self {
            read_rate: 0.6,
            spill_rate: 0.15,
        }
    }
}

/// The observation symbol meaning "no antenna read the tag".
pub fn no_reading_symbol(plan: &FloorPlan) -> usize {
    plan.antennas().len()
}

/// Detection probability of antenna `a` for a tag at location `loc`.
pub fn detection_rate(plan: &FloorPlan, config: &SensingConfig, a: usize, loc: usize) -> f64 {
    let covers = &plan.antennas()[a].covers;
    match covers.iter().position(|&l| l == loc) {
        Some(0) => config.read_rate,
        Some(_) => config.spill_rate,
        None => 0.0,
    }
}

/// The emission matrix of the location HMM: `emit[l][o]` for
/// `o ∈ 0..n_antennas` plus the trailing no-reading symbol.
pub fn emission_matrix(plan: &FloorPlan, config: &SensingConfig) -> Vec<f64> {
    let n_loc = plan.n_locations();
    let n_obs = plan.antennas().len() + 1;
    let mut emit = vec![0.0; n_loc * n_obs];
    for l in 0..n_loc {
        let row = &mut emit[l * n_obs..(l + 1) * n_obs];
        let mut none = 1.0;
        for a in 0..plan.antennas().len() {
            let rate = detection_rate(plan, config, a, l);
            // First-to-fire-wins ordering.
            row[a] = rate * none;
            none *= 1.0 - rate;
        }
        row[n_obs - 1] = none;
    }
    emit
}

/// Generates the observation sequence for one ground-truth trajectory.
pub fn observe<R: Rng + ?Sized>(
    plan: &FloorPlan,
    config: &SensingConfig,
    traj: &[usize],
    rng: &mut R,
) -> Vec<usize> {
    let none = no_reading_symbol(plan);
    traj.iter()
        .map(|&loc| {
            for a in 0..plan.antennas().len() {
                let rate = detection_rate(plan, config, a, loc);
                if rate > 0.0 && rng.gen::<f64>() < rate {
                    return a;
                }
            }
            none
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn emission_rows_are_stochastic() {
        let plan = FloorPlan::office_two_floor();
        let emit = emission_matrix(&plan, &SensingConfig::default());
        let n_obs = plan.antennas().len() + 1;
        for l in 0..plan.n_locations() {
            let sum: f64 = emit[l * n_obs..(l + 1) * n_obs].iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "location {l}");
        }
    }

    #[test]
    fn offices_always_produce_no_reading() {
        let plan = FloorPlan::office_two_floor();
        let emit = emission_matrix(&plan, &SensingConfig::default());
        let n_obs = plan.antennas().len() + 1;
        for o in plan.of_kind(crate::floorplan::RoomKind::Office) {
            assert_eq!(emit[o * n_obs + n_obs - 1], 1.0);
        }
    }

    #[test]
    fn observation_frequencies_match_emission_matrix() {
        let plan = FloorPlan::office_two_floor();
        let config = SensingConfig::default();
        let emit = emission_matrix(&plan, &config);
        let n_obs = plan.antennas().len() + 1;
        // A tag parked in a covered hallway segment.
        let hall = plan.antennas()[0].covers[0];
        let traj = vec![hall; 50_000];
        let mut rng = SmallRng::seed_from_u64(9);
        let obs = observe(&plan, &config, &traj, &mut rng);
        let mut counts = vec![0usize; n_obs];
        for o in &obs {
            counts[*o] += 1;
        }
        for o in 0..n_obs {
            let freq = counts[o] as f64 / traj.len() as f64;
            let want = emit[hall * n_obs + o];
            assert!((freq - want).abs() < 0.01, "obs {o}: {freq} vs {want}");
        }
    }

    #[test]
    fn spill_gives_conflicting_readings() {
        let plan = FloorPlan::office_two_floor();
        let config = SensingConfig {
            read_rate: 0.9,
            spill_rate: 0.5,
        };
        // A segment covered by two antennas (own + neighbor spill) can be
        // read by either.
        let covered_by_two: Vec<usize> = (0..plan.n_locations())
            .filter(|&l| plan.antennas_covering(l).len() >= 2)
            .collect();
        assert!(!covered_by_two.is_empty());
        let l = covered_by_two[0];
        let ants = plan.antennas_covering(l);
        let traj = vec![l; 10_000];
        let mut rng = SmallRng::seed_from_u64(1);
        let obs = observe(&plan, &config, &traj, &mut rng);
        for &a in &ants {
            assert!(obs.contains(&a), "antenna {a} never fired");
        }
    }
}
