//! Building floor plans: typed locations, adjacency, and antenna layout.
//!
//! Mirrors the environment of the paper's deployment (Fig 1, Fig 8(a)): an
//! office building whose hallways are instrumented with RFID antennas
//! while offices and meeting rooms are not — the *granularity mismatch*
//! that makes inference necessary.

use std::collections::VecDeque;

/// What kind of place a location is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoomKind {
    /// A hallway segment (antenna-instrumented corridor).
    Hallway,
    /// A private office (no sensors inside).
    Office,
    /// A coffee room.
    CoffeeRoom,
    /// A lecture/meeting room.
    LectureRoom,
    /// A stairwell or elevator connecting floors.
    Stairs,
}

impl RoomKind {
    /// True for enclosed rooms (anything that is not a hallway/stairs).
    pub fn is_room(self) -> bool {
        matches!(
            self,
            RoomKind::Office | RoomKind::CoffeeRoom | RoomKind::LectureRoom
        )
    }
}

/// A location in the building.
#[derive(Debug, Clone)]
pub struct Location {
    /// Unique name, e.g. `f0-h3` or `f1-office12`.
    pub name: String,
    /// The kind of place.
    pub kind: RoomKind,
    /// Which floor it is on.
    pub floor: usize,
}

/// An RFID antenna.
#[derive(Debug, Clone)]
pub struct Antenna {
    /// Unique name, e.g. `ant-f0-h3`.
    pub name: String,
    /// Location ids covered by the antenna's read field.
    pub covers: Vec<usize>,
}

/// A building floor plan.
#[derive(Debug, Clone)]
pub struct FloorPlan {
    locations: Vec<Location>,
    /// Adjacency lists over location ids.
    adjacency: Vec<Vec<usize>>,
    antennas: Vec<Antenna>,
}

impl FloorPlan {
    /// All locations.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// All antennas.
    pub fn antennas(&self) -> &[Antenna] {
        &self.antennas
    }

    /// Number of locations.
    pub fn n_locations(&self) -> usize {
        self.locations.len()
    }

    /// Neighbors of a location.
    pub fn neighbors(&self, loc: usize) -> &[usize] {
        &self.adjacency[loc]
    }

    /// Id of the location with the given name.
    pub fn location_id(&self, name: &str) -> Option<usize> {
        self.locations.iter().position(|l| l.name == name)
    }

    /// Ids of every location of a kind.
    pub fn of_kind(&self, kind: RoomKind) -> Vec<usize> {
        self.locations
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind == kind)
            .map(|(i, _)| i)
            .collect()
    }

    /// Antennas covering a location.
    pub fn antennas_covering(&self, loc: usize) -> Vec<usize> {
        self.antennas
            .iter()
            .enumerate()
            .filter(|(_, a)| a.covers.contains(&loc))
            .map(|(i, _)| i)
            .collect()
    }

    /// Breadth-first shortest path between two locations (inclusive of both
    /// endpoints); `None` when disconnected.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev = vec![usize::MAX; self.locations.len()];
        let mut queue = VecDeque::from([from]);
        prev[from] = from;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if prev[v] == usize::MAX {
                    prev[v] = u;
                    if v == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Builds the parametric office building used throughout the
    /// experiments: `floors` floors, each with `hall_len` hallway segments
    /// in a line, two offices per segment, a coffee room at one end and a
    /// lecture room at the other, stairs linking the floors, and one
    /// antenna per `antenna_every` hallway segments.
    pub fn office_building(floors: usize, hall_len: usize, antenna_every: usize) -> Self {
        assert!(floors >= 1 && hall_len >= 2 && antenna_every >= 1);
        let mut locations = Vec::new();
        let mut adjacency: Vec<Vec<usize>> = Vec::new();
        let mut antennas = Vec::new();
        let add = |locations: &mut Vec<Location>,
                   adjacency: &mut Vec<Vec<usize>>,
                   name: String,
                   kind: RoomKind,
                   floor: usize| {
            locations.push(Location { name, kind, floor });
            adjacency.push(Vec::new());
            locations.len() - 1
        };
        let connect = |adjacency: &mut Vec<Vec<usize>>, a: usize, b: usize| {
            adjacency[a].push(b);
            adjacency[b].push(a);
        };

        let mut stairs_prev: Option<usize> = None;
        for f in 0..floors {
            let halls: Vec<usize> = (0..hall_len)
                .map(|i| {
                    add(
                        &mut locations,
                        &mut adjacency,
                        format!("f{f}-h{i}"),
                        RoomKind::Hallway,
                        f,
                    )
                })
                .collect();
            for w in halls.windows(2) {
                connect(&mut adjacency, w[0], w[1]);
            }
            // Two offices per hallway segment, except the end segments,
            // which are dedicated to the coffee and lecture rooms (keeps
            // "disappeared near the end of the hall" informative, as in a
            // real building where the break room sits at the corridor end).
            for (i, &h) in halls.iter().enumerate() {
                if i == 0 || i + 1 == hall_len {
                    continue;
                }
                for side in 0..2 {
                    let o = add(
                        &mut locations,
                        &mut adjacency,
                        format!("f{f}-office{}{}", i, if side == 0 { "a" } else { "b" }),
                        RoomKind::Office,
                        f,
                    );
                    connect(&mut adjacency, h, o);
                }
            }
            // Coffee room at the start, lecture room at the end.
            let coffee = add(
                &mut locations,
                &mut adjacency,
                format!("f{f}-coffee"),
                RoomKind::CoffeeRoom,
                f,
            );
            connect(&mut adjacency, coffee, halls[0]);
            let lecture = add(
                &mut locations,
                &mut adjacency,
                format!("f{f}-lecture"),
                RoomKind::LectureRoom,
                f,
            );
            connect(&mut adjacency, lecture, *halls.last().expect("non-empty"));
            // Stairs in the middle of the hallway.
            let stairs = add(
                &mut locations,
                &mut adjacency,
                format!("f{f}-stairs"),
                RoomKind::Stairs,
                f,
            );
            connect(&mut adjacency, stairs, halls[hall_len / 2]);
            if let Some(prev) = stairs_prev {
                connect(&mut adjacency, stairs, prev);
            }
            stairs_prev = Some(stairs);
            // Antennas on every `antenna_every`-th hallway segment; each
            // covers its segment and spills into the neighboring segments
            // (conflicting-readings source).
            for (i, &h) in halls.iter().enumerate() {
                if i % antenna_every == 0 {
                    let mut covers = vec![h];
                    if i > 0 {
                        covers.push(halls[i - 1]);
                    }
                    if i + 1 < hall_len {
                        covers.push(halls[i + 1]);
                    }
                    antennas.push(Antenna {
                        name: format!("ant-f{f}-h{i}"),
                        covers,
                    });
                }
            }
        }
        Self {
            locations,
            adjacency,
            antennas,
        }
    }

    /// The default two-floor deployment approximating the paper's
    /// environment (Fig 8(a)): ~50 locations, hallway antennas, offices
    /// without coverage.
    pub fn office_two_floor() -> Self {
        Self::office_building(2, 8, 2)
    }

    /// A tiny single-floor plan for tests and the quickstart example.
    pub fn small_office() -> Self {
        Self::office_building(1, 3, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_building_shape() {
        let plan = FloorPlan::office_two_floor();
        // Per floor: 8 halls + 12 offices + coffee + lecture + stairs = 23.
        assert_eq!(plan.n_locations(), 46);
        assert_eq!(plan.of_kind(RoomKind::CoffeeRoom).len(), 2);
        assert_eq!(plan.of_kind(RoomKind::LectureRoom).len(), 2);
        assert_eq!(plan.of_kind(RoomKind::Office).len(), 24);
        // 4 antennas per floor (every 2nd of 8 segments).
        assert_eq!(plan.antennas().len(), 8);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let plan = FloorPlan::office_two_floor();
        for u in 0..plan.n_locations() {
            for &v in plan.neighbors(u) {
                assert!(plan.neighbors(v).contains(&u), "{u} -> {v} not symmetric");
            }
        }
    }

    #[test]
    fn offices_attach_only_to_hallways() {
        let plan = FloorPlan::office_two_floor();
        for o in plan.of_kind(RoomKind::Office) {
            assert_eq!(plan.neighbors(o).len(), 1);
            let h = plan.neighbors(o)[0];
            assert_eq!(plan.locations()[h].kind, RoomKind::Hallway);
        }
    }

    #[test]
    fn building_is_connected() {
        let plan = FloorPlan::office_two_floor();
        for u in 1..plan.n_locations() {
            let p = plan.shortest_path(0, u);
            assert!(p.is_some(), "location {u} unreachable");
            let p = p.unwrap();
            assert_eq!(p[0], 0);
            assert_eq!(*p.last().unwrap(), u);
            // Path edges respect adjacency.
            for w in p.windows(2) {
                assert!(plan.neighbors(w[0]).contains(&w[1]));
            }
        }
    }

    #[test]
    fn cross_floor_paths_use_stairs() {
        let plan = FloorPlan::office_two_floor();
        let c0 = plan.location_id("f0-coffee").unwrap();
        let l1 = plan.location_id("f1-lecture").unwrap();
        let path = plan.shortest_path(c0, l1).unwrap();
        assert!(path
            .iter()
            .any(|&l| plan.locations()[l].kind == RoomKind::Stairs));
    }

    #[test]
    fn antennas_cover_only_hallways() {
        let plan = FloorPlan::office_two_floor();
        for a in plan.antennas() {
            for &l in &a.covers {
                assert_eq!(plan.locations()[l].kind, RoomKind::Hallway);
            }
        }
        // Offices have no coverage — the granularity mismatch.
        for o in plan.of_kind(RoomKind::Office) {
            assert!(plan.antennas_covering(o).is_empty());
        }
    }

    #[test]
    fn shortest_path_identity() {
        let plan = FloorPlan::small_office();
        assert_eq!(plan.shortest_path(3, 3), Some(vec![3]));
    }
}
