//! Goal-driven movement simulation: people walking around the building
//! and the objects they carry.
//!
//! Trajectories are the *ground truth* of every quality experiment: the
//! sensing layer derives noisy observations from them, and query results
//! are scored against events detected on the true trajectories.

use crate::floorplan::{FloorPlan, RoomKind};
use rand::Rng;

/// Movement model parameters.
#[derive(Debug, Clone, Copy)]
pub struct MovementConfig {
    /// Expected dwell time (ticks) once a destination is reached.
    pub dwell_mean: f64,
    /// Probability that a finished dwell is followed by a coffee trip.
    pub p_coffee: f64,
    /// Probability of heading to a lecture room instead.
    pub p_lecture: f64,
    /// Probability of visiting a colleague's office instead.
    pub p_visit: f64,
    // Remaining mass returns to the agent's own office.
}

impl Default for MovementConfig {
    fn default() -> Self {
        Self {
            dwell_mean: 12.0,
            p_coffee: 0.30,
            p_lecture: 0.15,
            p_visit: 0.20,
        }
    }
}

/// A tagged person.
#[derive(Debug, Clone)]
pub struct Person {
    /// Tag/person name, e.g. `person0`.
    pub name: String,
    /// Location id of the person's own office.
    pub office: usize,
}

/// A tagged object.
#[derive(Debug, Clone)]
pub struct Object {
    /// Tag/object name, e.g. `object7`.
    pub name: String,
    /// Index (into the people list) of the owner.
    pub owner: usize,
    /// Where the object lives when not carried.
    pub home: usize,
    /// Whether the owner carries it around (as with a badge or laptop) or
    /// it stays in the office (as with a mug left behind).
    pub carried: bool,
}

/// Simulates one person's ground-truth trajectory: location id per tick.
pub fn simulate_person<R: Rng + ?Sized>(
    plan: &FloorPlan,
    person: &Person,
    all_offices: &[usize],
    ticks: usize,
    config: &MovementConfig,
    rng: &mut R,
) -> Vec<usize> {
    let coffee_rooms = plan.of_kind(RoomKind::CoffeeRoom);
    let lecture_rooms = plan.of_kind(RoomKind::LectureRoom);
    let mut traj = Vec::with_capacity(ticks);
    let mut current = person.office;
    let mut pending_path: Vec<usize> = Vec::new();
    let mut dwell_left = sample_dwell(config.dwell_mean, rng);

    while traj.len() < ticks {
        if !pending_path.is_empty() {
            current = pending_path.remove(0);
            traj.push(current);
            if pending_path.is_empty() {
                dwell_left = sample_dwell(config.dwell_mean, rng);
            }
            continue;
        }
        if dwell_left > 0 {
            traj.push(current);
            dwell_left -= 1;
            continue;
        }
        // Pick the next destination.
        let u: f64 = rng.gen();
        let dest = if u < config.p_coffee && !coffee_rooms.is_empty() {
            coffee_rooms[rng.gen_range(0..coffee_rooms.len())]
        } else if u < config.p_coffee + config.p_lecture && !lecture_rooms.is_empty() {
            lecture_rooms[rng.gen_range(0..lecture_rooms.len())]
        } else if u < config.p_coffee + config.p_lecture + config.p_visit && all_offices.len() > 1 {
            loop {
                let o = all_offices[rng.gen_range(0..all_offices.len())];
                if o != person.office {
                    break o;
                }
            }
        } else {
            person.office
        };
        if dest == current {
            dwell_left = sample_dwell(config.dwell_mean, rng);
            continue;
        }
        let path = plan
            .shortest_path(current, dest)
            .expect("building is connected");
        // Skip the starting location; walk one hop per tick.
        pending_path = path[1..].to_vec();
    }
    traj
}

/// Simulates an object's trajectory given its owner's.
pub fn simulate_object(object: &Object, owner_traj: &[usize]) -> Vec<usize> {
    if object.carried {
        owner_traj.to_vec()
    } else {
        vec![object.home; owner_traj.len()]
    }
}

fn sample_dwell<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> usize {
    // Geometric dwell with the given mean (at least 1 tick).
    let p = 1.0 / mean.max(1.0);
    let mut n = 1;
    while rng.gen::<f64>() > p && n < 10_000 {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (FloorPlan, Person, Vec<usize>) {
        let plan = FloorPlan::office_two_floor();
        let offices = plan.of_kind(RoomKind::Office);
        let person = Person {
            name: "p0".into(),
            office: offices[0],
        };
        (plan, person, offices)
    }

    #[test]
    fn trajectory_has_requested_length_and_respects_adjacency() {
        let (plan, person, offices) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        let traj = simulate_person(
            &plan,
            &person,
            &offices,
            500,
            &MovementConfig::default(),
            &mut rng,
        );
        assert_eq!(traj.len(), 500);
        for w in traj.windows(2) {
            assert!(
                w[0] == w[1] || plan.neighbors(w[0]).contains(&w[1]),
                "teleport {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn person_eventually_gets_coffee() {
        let (plan, person, offices) = setup();
        let coffee = plan.of_kind(RoomKind::CoffeeRoom);
        let mut rng = SmallRng::seed_from_u64(2);
        let traj = simulate_person(
            &plan,
            &person,
            &offices,
            2000,
            &MovementConfig::default(),
            &mut rng,
        );
        assert!(traj.iter().any(|l| coffee.contains(l)));
    }

    #[test]
    fn carried_object_follows_owner_static_object_stays() {
        let (plan, person, offices) = setup();
        let mut rng = SmallRng::seed_from_u64(3);
        let traj = simulate_person(
            &plan,
            &person,
            &offices,
            200,
            &MovementConfig::default(),
            &mut rng,
        );
        let carried = Object {
            name: "laptop".into(),
            owner: 0,
            home: person.office,
            carried: true,
        };
        let parked = Object {
            name: "mug".into(),
            owner: 0,
            home: person.office,
            carried: false,
        };
        assert_eq!(simulate_object(&carried, &traj), traj);
        let static_traj = simulate_object(&parked, &traj);
        assert!(static_traj.iter().all(|&l| l == person.office));
        let _ = plan;
    }

    #[test]
    fn dwell_times_cluster_near_mean() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mean = 10.0;
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_dwell(mean, &mut rng)).sum();
        let empirical = total as f64 / n as f64;
        assert!((empirical - mean).abs() < 0.5, "{empirical}");
    }
}
