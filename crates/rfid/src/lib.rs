//! # lahar-rfid — synthetic building-wide RFID deployment
//!
//! The data substrate for the Lahar experiments, replacing the paper's
//! (unavailable) UW RFID Ecosystem traces with a synthetic deployment that
//! exercises the same inference and query code paths:
//!
//! * [`FloorPlan`] — typed locations (hallways, offices, coffee and
//!   lecture rooms), adjacency, and hallway-mounted antennas;
//! * [`simulate_person`]/[`simulate_object`] — goal-driven ground-truth
//!   movement;
//! * [`observe`]/[`emission_matrix`] — the reader model with missed and
//!   conflicting readings (read rates 10–90%, paper §1.1);
//! * [`Deployment`] — the end-to-end pipeline producing filtered
//!   (independent) and smoothed (Markovian) probabilistic event databases,
//!   plus ground-truth and Viterbi-MAP worlds for the competitors.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // numeric kernels index flat matrices

mod floorplan;
mod movement;
mod pipeline;
mod sensing;

pub use floorplan::{Antenna, FloorPlan, Location, RoomKind};
pub use movement::{simulate_object, simulate_person, MovementConfig, Object, Person};
pub use pipeline::{build_location_hmm, Deployment, DeploymentConfig};
pub use sensing::{detection_rate, emission_matrix, no_reading_symbol, observe, SensingConfig};
