//! End-to-end deployment pipeline: simulate → sense → infer → build
//! probabilistic event databases.
//!
//! Mirrors the paper's two scenarios (§2.4):
//!
//! * **real-time** — particle-filter marginals become *independent*
//!   streams ([`Deployment::filtered_database`]);
//! * **archived** — forward–backward smoothing yields smoothed marginals
//!   plus CPTs, becoming *Markovian* streams
//!   ([`Deployment::smoothed_database`]).
//!
//! Deterministic competitors and ground truth are materialized as
//! [`World`]s: the MLE stream (argmax marginal per step), the Viterbi MAP
//! path, and the true trajectories.

use crate::floorplan::{FloorPlan, RoomKind};
use crate::movement::{simulate_object, simulate_person, MovementConfig, Object, Person};
use crate::sensing::{emission_matrix, observe, SensingConfig};
use lahar_hmm::{Hmm, ParticleFilter};
use lahar_model::{tuple, Cpt, Database, Domain, GroundEvent, Marginal, Stream, StreamKey, World};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Full deployment configuration.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Number of floors.
    pub floors: usize,
    /// Hallway segments per floor.
    pub hall_len: usize,
    /// One antenna per this many hallway segments.
    pub antenna_every: usize,
    /// Number of tagged people.
    pub n_people: usize,
    /// Number of tagged objects.
    pub n_objects: usize,
    /// Trace length in ticks.
    pub ticks: usize,
    /// Reader model.
    pub sensing: SensingConfig,
    /// Movement model.
    pub movement: MovementConfig,
    /// Particle count for real-time inference.
    pub n_particles: usize,
    /// RNG seed for the whole pipeline.
    pub seed: u64,
    /// HMM prior: probability of staying put in a room.
    pub stay_room: f64,
    /// HMM prior: probability of staying put in a hallway segment.
    pub stay_hall: f64,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        Self {
            floors: 2,
            hall_len: 8,
            antenna_every: 2,
            n_people: 8,
            n_objects: 12,
            ticks: 600,
            sensing: SensingConfig::default(),
            movement: MovementConfig::default(),
            n_particles: 400,
            seed: 0x5eed,
            stay_room: 0.85,
            stay_hall: 0.35,
        }
    }
}

impl DeploymentConfig {
    /// A small configuration for unit tests and examples.
    pub fn small() -> Self {
        Self {
            floors: 1,
            hall_len: 3,
            antenna_every: 1,
            n_people: 2,
            n_objects: 2,
            ticks: 120,
            n_particles: 200,
            ..Self::default()
        }
    }
}

/// A simulated deployment: ground truth, observations, and the inference
/// model, ready to produce event databases.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The building.
    pub plan: FloorPlan,
    /// Tagged people.
    pub people: Vec<Person>,
    /// Tagged objects.
    pub objects: Vec<Object>,
    /// Ground-truth trajectories, people first then objects.
    pub truth: Vec<Vec<usize>>,
    /// Observation sequences (same order as `truth`).
    pub observations: Vec<Vec<usize>>,
    /// The location HMM shared by every tag.
    pub hmm: Hmm,
    /// The configuration used.
    pub config: DeploymentConfig,
}

impl Deployment {
    /// Runs the full simulation.
    pub fn simulate(config: DeploymentConfig) -> Self {
        let plan = FloorPlan::office_building(config.floors, config.hall_len, config.antenna_every);
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let offices = plan.of_kind(RoomKind::Office);
        assert!(config.n_people <= offices.len(), "more people than offices");
        let people: Vec<Person> = (0..config.n_people)
            .map(|i| Person {
                name: format!("person{i}"),
                office: offices[i],
            })
            .collect();
        let objects: Vec<Object> = (0..config.n_objects)
            .map(|i| {
                let owner = i % config.n_people.max(1);
                Object {
                    name: format!("object{i}"),
                    owner,
                    home: people[owner].office,
                    carried: rng.gen::<f64>() < 0.5,
                }
            })
            .collect();

        let mut truth = Vec::with_capacity(people.len() + objects.len());
        for p in &people {
            truth.push(simulate_person(
                &plan,
                p,
                &offices[..config.n_people],
                config.ticks,
                &config.movement,
                &mut rng,
            ));
        }
        for o in &objects {
            let owner_traj = truth[o.owner].clone();
            truth.push(simulate_object(o, &owner_traj));
        }

        let observations = truth
            .iter()
            .map(|traj| observe(&plan, &config.sensing, traj, &mut rng))
            .collect();

        let hmm = build_location_hmm(&plan, &config);
        Self {
            plan,
            people,
            objects,
            truth,
            observations,
            hmm,
            config,
        }
    }

    /// Names of all tags (people then objects).
    pub fn tag_names(&self) -> Vec<String> {
        self.people
            .iter()
            .map(|p| p.name.clone())
            .chain(self.objects.iter().map(|o| o.name.clone()))
            .collect()
    }

    /// A database holding only catalog and relations (no streams) — the
    /// deterministic context every variant shares.
    pub fn base_database(&self) -> Database {
        let mut db = Database::new();
        db.declare_stream("At", &["tag"], &["loc"]).unwrap();
        for (rel, arity) in [
            ("Person", 1),
            ("Object", 1),
            ("Hallway", 1),
            ("CoffeeRoom", 1),
            ("LectureRoom", 1),
            ("Room", 1),
            ("NotRoom", 1),
            ("Office", 2),
        ] {
            db.declare_relation(rel, arity).unwrap();
        }
        let i = db.interner().clone();
        for p in &self.people {
            db.insert_relation_tuple("Person", tuple([i.intern(&p.name)]))
                .unwrap();
            let office = &self.plan.locations()[p.office].name;
            db.insert_relation_tuple("Office", tuple([i.intern(&p.name), i.intern(office)]))
                .unwrap();
        }
        for o in &self.objects {
            db.insert_relation_tuple("Object", tuple([i.intern(&o.name)]))
                .unwrap();
        }
        for loc in self.plan.locations() {
            let sym = tuple([i.intern(&loc.name)]);
            match loc.kind {
                RoomKind::Hallway => {
                    db.insert_relation_tuple("Hallway", sym.clone()).unwrap();
                }
                RoomKind::CoffeeRoom => {
                    db.insert_relation_tuple("CoffeeRoom", sym.clone()).unwrap();
                }
                RoomKind::LectureRoom => {
                    db.insert_relation_tuple("LectureRoom", sym.clone())
                        .unwrap();
                }
                RoomKind::Office | RoomKind::Stairs => {}
            }
            if loc.kind.is_room() {
                db.insert_relation_tuple("Room", sym).unwrap();
            } else {
                db.insert_relation_tuple("NotRoom", sym).unwrap();
            }
        }
        db
    }

    fn location_domain(&self, db: &Database) -> Arc<Domain> {
        let i = db.interner();
        let tuples = self
            .plan
            .locations()
            .iter()
            .map(|l| tuple([i.intern(&l.name)]))
            .collect();
        Domain::new(1, tuples).expect("distinct location names")
    }

    fn stream_key(&self, db: &Database, tag: &str) -> StreamKey {
        StreamKey {
            stream_type: db.interner().intern("At"),
            key: tuple([db.interner().intern(tag)]),
        }
    }

    /// Real-time scenario: per-tag particle-filter marginals as
    /// independent streams.
    pub fn filtered_database(&self) -> Database {
        let mut db = self.base_database();
        let domain = self.location_domain(&db);
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0xf117e5);
        for (tag, obs) in self.tag_names().iter().zip(&self.observations) {
            let mut pf = ParticleFilter::new(self.hmm.clone(), self.config.n_particles);
            let marginals = pf
                .run(obs, &mut rng)
                .expect("observations are within the alphabet");
            let marginals = marginals
                .into_iter()
                .map(|m| location_marginal(&domain, &m))
                .collect();
            let stream = Stream::independent(self.stream_key(&db, tag), domain.clone(), marginals)
                .expect("valid marginals");
            db.add_stream(stream).unwrap();
        }
        db
    }

    /// Archived scenario: forward–backward smoothed marginals + CPTs as
    /// Markovian streams.
    pub fn smoothed_database(&self) -> Database {
        let mut db = self.base_database();
        let domain = self.location_domain(&db);
        for (tag, obs) in self.tag_names().iter().zip(&self.observations) {
            let sm = self.hmm.smooth(obs).expect("valid observations");
            let initial = location_marginal(&domain, &sm.marginals[0]);
            let n = self.plan.n_locations();
            let cpts = sm
                .cpts
                .iter()
                .map(|c| location_cpt(&domain, n, c))
                .collect();
            let stream = Stream::markov(self.stream_key(&db, tag), domain.clone(), initial, cpts)
                .expect("valid CPTs");
            db.add_stream(stream).unwrap();
        }
        db
    }

    /// The same smoothing output with correlations *discarded*: smoothed
    /// marginals as independent streams (the paper's ablation showing the
    /// value of tracking correlations, §4.2.1).
    pub fn smoothed_independent_database(&self) -> Database {
        let mut db = self.base_database();
        let domain = self.location_domain(&db);
        for (tag, obs) in self.tag_names().iter().zip(&self.observations) {
            let sm = self.hmm.smooth(obs).expect("valid observations");
            let marginals = sm
                .marginals
                .iter()
                .map(|m| location_marginal(&domain, m))
                .collect();
            let stream = Stream::independent(self.stream_key(&db, tag), domain.clone(), marginals)
                .expect("valid marginals");
            db.add_stream(stream).unwrap();
        }
        db
    }

    /// The ground-truth world: one `At(tag, loc)` event per tag per tick.
    pub fn truth_world(&self, db: &Database) -> World {
        self.world_from_paths(db, &self.truth)
    }

    /// The Viterbi MAP world (the paper's archived competitor).
    pub fn viterbi_world(&self, db: &Database) -> World {
        let paths: Vec<Vec<usize>> = self
            .observations
            .iter()
            .map(|obs| self.hmm.viterbi(obs).expect("valid observations"))
            .collect();
        self.world_from_paths(db, &paths)
    }

    /// Total number of tuples in the Viterbi paths (Fig 8(b) row).
    pub fn viterbi_tuple_count(&self) -> usize {
        self.truth.iter().map(Vec::len).sum()
    }

    fn world_from_paths(&self, db: &Database, paths: &[Vec<usize>]) -> World {
        let i = db.interner();
        let at = i.intern("At");
        let mut events = Vec::new();
        for (tag, path) in self.tag_names().iter().zip(paths) {
            let key = tuple([i.intern(tag)]);
            for (t, &loc) in path.iter().enumerate() {
                events.push(GroundEvent {
                    stream_type: at,
                    key: key.clone(),
                    values: tuple([i.intern(&self.plan.locations()[loc].name)]),
                    t: t as u32,
                });
            }
        }
        World::new(events, self.config.ticks.saturating_sub(1) as u32)
    }
}

/// Builds the shared location HMM from the floor plan: sticky self-loops
/// (stickier in rooms than hallways), uniform moves to neighbors, and the
/// reader model as emission matrix.
pub fn build_location_hmm(plan: &FloorPlan, config: &DeploymentConfig) -> Hmm {
    let n = plan.n_locations();
    let mut trans = vec![0.0; n * n];
    for l in 0..n {
        let stay = match plan.locations()[l].kind {
            RoomKind::Hallway => config.stay_hall,
            RoomKind::Stairs => config.stay_hall,
            _ => config.stay_room,
        };
        let neighbors = plan.neighbors(l);
        trans[l * n + l] = stay;
        let share = (1.0 - stay) / neighbors.len() as f64;
        for &m in neighbors {
            trans[l * n + m] = share;
        }
    }
    // Uniform prior over locations.
    let initial = vec![1.0 / n as f64; n];
    let emit = emission_matrix(plan, &config.sensing);
    Hmm::new(initial, trans, emit, plan.antennas().len() + 1).expect("valid by construction")
}

fn location_marginal(domain: &Domain, probs: &[f64]) -> Marginal {
    // The HMM always places the tag somewhere: ⊥ mass is 0.
    let mut v = probs.to_vec();
    v.push(0.0);
    Marginal::new(domain, v).expect("HMM marginals are normalized")
}

fn location_cpt(domain: &Domain, n: usize, cpt_row_major: &[f64]) -> Cpt {
    // HMM CPTs are row-major P[next | prev]; model CPTs are indexed
    // (next, prev) with an extra ⊥ state that is never entered.
    let dim = domain.len();
    let mut data = vec![0.0; dim * dim];
    for prev in 0..n {
        for next in 0..n {
            data[next * dim + prev] = cpt_row_major[prev * n + next];
        }
    }
    // ⊥ stays ⊥ (unreachable, but the matrix must be column-stochastic).
    data[(dim - 1) * dim + (dim - 1)] = 1.0;
    Cpt::new(dim, data).expect("HMM CPT rows are stochastic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lahar_model::Value;

    fn small() -> Deployment {
        Deployment::simulate(DeploymentConfig::small())
    }

    #[test]
    fn simulation_produces_consistent_sizes() {
        let d = small();
        assert_eq!(d.truth.len(), 4);
        assert_eq!(d.observations.len(), 4);
        for (t, o) in d.truth.iter().zip(&d.observations) {
            assert_eq!(t.len(), d.config.ticks);
            assert_eq!(o.len(), d.config.ticks);
        }
    }

    #[test]
    fn filtered_database_has_independent_streams() {
        let d = small();
        let db = d.filtered_database();
        assert_eq!(db.streams().len(), 4);
        assert!(db.streams().iter().all(|s| !s.is_markov()));
        assert_eq!(db.horizon(), d.config.ticks as u32);
        // Every marginal is a distribution with no bottom mass.
        let s = &db.streams()[0];
        let m = s.marginal_at(10);
        assert!(m.prob(s.domain().bottom()) < 1e-12);
    }

    #[test]
    fn smoothed_database_has_markov_streams() {
        let d = small();
        let db = d.smoothed_database();
        assert!(db.streams().iter().all(|s| s.is_markov()));
        assert_eq!(db.streams()[0].len(), d.config.ticks);
        // Smoothed marginals from the stream must match the HMM smoother.
        let sm = d.hmm.smooth(&d.observations[0]).unwrap();
        let stream = &db.streams()[0];
        let all = stream.all_marginals();
        for (t, g) in sm.marginals.iter().enumerate().step_by(17) {
            for (i, &p) in g.iter().enumerate() {
                assert!(
                    (all[t].prob(i) - p).abs() < 1e-6,
                    "t={t} loc={i}: {} vs {p}",
                    all[t].prob(i)
                );
            }
        }
    }

    #[test]
    fn truth_world_tracks_trajectories() {
        let d = small();
        let db = d.base_database();
        let w = d.truth_world(&db);
        assert_eq!(w.len(), 4 * d.config.ticks);
        // Every event names a real location.
        let i = db.interner();
        for e in w.events().iter().take(50) {
            let name = match e.values[0] {
                Value::Str(s) => i.resolve(s).unwrap(),
                other => panic!("unexpected value {other:?}"),
            };
            assert!(d.plan.location_id(&name).is_some());
        }
    }

    #[test]
    fn viterbi_world_is_deterministic_and_full_length() {
        let d = small();
        let db = d.base_database();
        let w = d.viterbi_world(&db);
        assert_eq!(w.len(), 4 * d.config.ticks);
    }

    #[test]
    fn relations_are_populated() {
        let d = small();
        let db = d.base_database();
        let i = db.interner().clone();
        assert_eq!(db.relation(i.intern("Person")).unwrap().len(), 2);
        assert_eq!(db.relation(i.intern("Object")).unwrap().len(), 2);
        assert!(!db.relation(i.intern("CoffeeRoom")).unwrap().is_empty());
        assert!(db.relation(i.intern("Hallway")).unwrap().len() >= 3);
        assert_eq!(db.relation(i.intern("Office")).unwrap().len(), 2);
    }

    #[test]
    fn smoothing_beats_filtering_on_truth_likelihood() {
        // Sanity: the smoothed marginal assigns at least as much mass to
        // the true location, on average, as the filtered one.
        let d = small();
        let filtered = d.filtered_database();
        let smoothed = d.smoothed_database();
        let score = |db: &Database| -> f64 {
            let mut total = 0.0;
            let mut count = 0.0;
            for (s, truth) in db.streams().iter().zip(&d.truth) {
                let all = s.all_marginals();
                for (t, &loc) in truth.iter().enumerate() {
                    total += all[t].prob(loc);
                    count += 1.0;
                }
            }
            total / count
        };
        let f = score(&filtered);
        let s = score(&smoothed);
        assert!(
            s > f - 0.02,
            "smoothed {s} should not be worse than filtered {f}"
        );
    }

    #[test]
    fn hmm_shared_across_tags_is_valid() {
        let d = small();
        assert_eq!(d.hmm.n_states(), d.plan.n_locations());
        assert_eq!(d.hmm.n_obs(), d.plan.antennas().len() + 1);
    }
}
