#!/usr/bin/env bash
# Unsafe-scope audit: the workspace carries `unsafe` in exactly two
# places — the annotated SIMD kernel module (crates/core/src/simd.rs)
# and the poll(2) FFI shim under the connection reactor
# (crates/core/src/sys_poll.rs). Everything else builds under
# `#![deny(unsafe_code)]`; this script keeps the textual invariants
# pinned so neither the deny attribute nor the allow escape hatches can
# drift in a diff without tripping CI.
#
#   scripts/unsafe_audit.sh      # exits non-zero on any violation
set -euo pipefail
cd "$(dirname "$0")/.."

islands=(crates/core/src/simd.rs crates/core/src/sys_poll.rs)
island_mods=('pub mod simd;' 'mod sys_poll;')

fail=0

# 1. The core crate denies unsafe code at the root.
if ! grep -q '^#!\[deny(unsafe_code)\]' crates/core/src/lib.rs; then
    echo "unsafe-audit: crates/core/src/lib.rs lost #![deny(unsafe_code)]" >&2
    fail=1
fi

# 2. The only allow(unsafe_code) attributes in the workspace are the
#    ones annotating the island `mod` declarations in the core crate
#    root — exactly one per island, nothing anywhere else.
allows="$(grep -rn 'allow(unsafe_code)' crates --include='*.rs' \
    | grep -v '^crates/core/src/lib.rs:' \
    | grep -v '^crates/core/src/simd.rs:[0-9]*://' || true)"
if [[ -n "$allows" ]]; then
    echo "unsafe-audit: allow(unsafe_code) outside crates/core/src/lib.rs:" >&2
    echo "$allows" >&2
    fail=1
fi
if [[ "$(grep -c 'allow(unsafe_code)' crates/core/src/lib.rs)" -ne "${#islands[@]}" ]]; then
    echo "unsafe-audit: expected exactly ${#islands[@]} allow(unsafe_code) in crates/core/src/lib.rs" >&2
    fail=1
fi
for mod_decl in "${island_mods[@]}"; do
    if ! grep -A1 'allow(unsafe_code)' crates/core/src/lib.rs | grep -qF "$mod_decl"; then
        echo "unsafe-audit: no allow(unsafe_code) annotates '$mod_decl'" >&2
        fail=1
    fi
done

# 3. No `unsafe` blocks, fns, impls, or traits anywhere outside the
#    islands. (Identifiers like is_unsafe / unsafe_queries don't match
#    the keyword pattern; string literals and docs are free to say
#    "unsafe".)
hits="$(grep -rnE '\bunsafe[[:space:]]*(fn|\{|impl|trait)' crates --include='*.rs' \
    | grep -v '^crates/core/src/simd.rs:' \
    | grep -v '^crates/core/src/sys_poll.rs:' || true)"
if [[ -n "$hits" ]]; then
    echo "unsafe-audit: unsafe code outside the annotated islands:" >&2
    echo "$hits" >&2
    fail=1
fi

# 4. The poll island stays tiny: its whole unsafe surface is the one
#    extern "C" declaration plus the single call through it.
if [[ "$(grep -cE '\bunsafe[[:space:]]*\{' crates/core/src/sys_poll.rs)" -ne 1 ]]; then
    echo "unsafe-audit: crates/core/src/sys_poll.rs must contain exactly one unsafe block" >&2
    fail=1
fi
# (anchored to column 0 so doc comments may *mention* extern "C")
if [[ "$(grep -c '^extern "C"' crates/core/src/sys_poll.rs)" -ne 1 ]]; then
    echo "unsafe-audit: crates/core/src/sys_poll.rs must contain exactly one extern \"C\" block" >&2
    fail=1
fi

if [[ "$fail" -ne 0 ]]; then
    exit 1
fi
echo "unsafe-audit: OK (unsafe confined to ${islands[*]})"
