#!/usr/bin/env bash
# Unsafe-scope audit: the workspace carries `unsafe` in exactly one
# place — the annotated SIMD kernel module (crates/core/src/simd.rs).
# Everything else builds under `#![deny(unsafe_code)]`; this script
# keeps the textual invariants pinned so neither the deny attribute nor
# the allow escape hatch can drift in a diff without tripping CI.
#
#   scripts/unsafe_audit.sh      # exits non-zero on any violation
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# 1. The core crate denies unsafe code at the root.
if ! grep -q '^#!\[deny(unsafe_code)\]' crates/core/src/lib.rs; then
    echo "unsafe-audit: crates/core/src/lib.rs lost #![deny(unsafe_code)]" >&2
    fail=1
fi

# 2. The only allow(unsafe_code) in the workspace is the one annotating
#    the `mod simd` declaration in the core crate root.
allows="$(grep -rn 'allow(unsafe_code)' crates --include='*.rs' \
    | grep -v '^crates/core/src/lib.rs:' \
    | grep -v '^crates/core/src/simd.rs:[0-9]*://' || true)"
if [[ -n "$allows" ]]; then
    echo "unsafe-audit: allow(unsafe_code) outside crates/core/src/lib.rs:" >&2
    echo "$allows" >&2
    fail=1
fi
if [[ "$(grep -c 'allow(unsafe_code)' crates/core/src/lib.rs)" -ne 1 ]]; then
    echo "unsafe-audit: expected exactly one allow(unsafe_code) in crates/core/src/lib.rs" >&2
    fail=1
fi
if ! grep -A1 'allow(unsafe_code)' crates/core/src/lib.rs | grep -q 'pub mod simd;'; then
    echo "unsafe-audit: the allow(unsafe_code) must annotate 'pub mod simd;'" >&2
    fail=1
fi

# 3. No `unsafe` blocks, fns, impls, or traits anywhere outside simd.rs.
#    (Identifiers like is_unsafe / unsafe_queries don't match the keyword
#    pattern; string literals and docs are free to say "unsafe".)
hits="$(grep -rnE '\bunsafe[[:space:]]*(fn|\{|impl|trait)' crates --include='*.rs' \
    | grep -v '^crates/core/src/simd.rs:' || true)"
if [[ -n "$hits" ]]; then
    echo "unsafe-audit: unsafe code outside crates/core/src/simd.rs:" >&2
    echo "$hits" >&2
    fail=1
fi

if [[ "$fail" -ne 0 ]]; then
    exit 1
fi
echo "unsafe-audit: OK (unsafe confined to crates/core/src/simd.rs)"
