#!/usr/bin/env bash
# Tier-1 verification: everything a PR must keep green.
#
#   scripts/verify.sh          # build + tests + clippy + fmt
#   scripts/verify.sh --quick  # skip clippy/fmt (fast local loop)
#
# The workspace vendors its external dependencies under vendor/, so all
# steps run with --offline and need no network access.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> unsafe-scope audit"
scripts/unsafe_audit.sh

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo test --features failpoints (chaos suite)"
cargo test -q --offline -p lahar-core --features failpoints
cargo test -q --offline -p lahar --features failpoints

echo "==> shard-shrink restore regression (release profile)"
# Restoring a checkpoint taken with more shards than the new session's
# worker count must keep every chain; run in release too, where the
# old truncate-based resize used to pass debug asserts but drop state.
cargo test -q --release --offline -p lahar-core --lib \
    shard_shrink_on_restore_keeps_every_chain

echo "==> observability smoke (live /metrics scrape + chrome trace)"
trace_out="$(mktemp -t lahar-smoke-XXXXXX.trace.json)"
dash_out="$(cargo run -q --release --offline --example streaming_dashboard -- \
    --trace-out "$trace_out")"
rm -f "$trace_out"
for needle in \
    'healthz: ok' \
    'lahar_query_ticks_total{query="coffee"' \
    'lahar_kernel_steps_total{path="fast"}' \
    'lahar_kernel_automata_shared' \
    'chrome trace: '; do
    if ! grep -qF "$needle" <<<"$dash_out"; then
        echo "observability smoke failed: missing $needle" >&2
        echo "$dash_out" >&2
        exit 1
    fi
done

echo "==> serve smoke (TCP ingest + restart restore vs offline query)"
dep="$(mktemp -d -t lahar-serve-XXXXXX)"
serve_query="At(p, l1)[Room(l1)] ; At(p, l2)[CoffeeRoom(l2)]"
./target/release/lahar simulate --out "$dep" --ticks 10 --people 3 --seed 11 >/dev/null
./target/release/lahar query --manifest "$dep" "$serve_query" >"$dep/offline.csv" 2>/dev/null

start_serve() {
    # Starts a server on free ports; sets serve_pid/serve_addr/serve_maddr.
    # Extra arguments are passed through to `lahar serve`.
    local log="$1"
    shift
    ./target/release/lahar serve --manifest "$dep" --addr 127.0.0.1:0 \
        --metrics-addr 127.0.0.1:0 --checkpoint-dir "$dep/ckpt" \
        --durability batch "$@" 2>"$log" &
    serve_pid=$!
    serve_addr=""
    serve_maddr=""
    for _ in $(seq 1 100); do
        serve_addr="$(sed -n 's/^serving on //p' "$log")"
        serve_maddr="$(sed -n 's|^metrics: http://\(.*\)/metrics$|\1|p' "$log")"
        [[ -n "$serve_addr" && -n "$serve_maddr" ]] && break
        sleep 0.1
    done
    if [[ -z "$serve_addr" || -z "$serve_maddr" ]]; then
        echo "serve did not start" >&2
        cat "$log" >&2
        exit 1
    fi
}

# First half of the stream, then a graceful shutdown (checkpoints).
start_serve "$dep/serve1.log"
./target/release/lahar ingest --manifest "$dep" --addr "$serve_addr" \
    --session smoke --ticks 5 --shutdown "$serve_query" >/dev/null 2>&1
wait "$serve_pid"
test -n "$(ls "$dep/ckpt/"*.ckpt.json)" || { echo "no shutdown checkpoint written" >&2; exit 1; }

# Restarted server restores the session; the continued series must be
# byte-identical to the offline batch engine over the full stream.
start_serve "$dep/serve2.log"
./target/release/lahar ingest --manifest "$dep" --addr "$serve_addr" \
    --session smoke --scrape "http://$serve_maddr/metrics" --shutdown "$serve_query" \
    >"$dep/served.csv" 2>"$dep/ingest2.log"
wait "$serve_pid"
if ! cmp -s "$dep/offline.csv" "$dep/served.csv"; then
    echo "serve smoke failed: served series != offline series" >&2
    diff "$dep/offline.csv" "$dep/served.csv" >&2 || true
    exit 1
fi
grep -q "restored" "$dep/ingest2.log" || { echo "restart did not restore the session" >&2; exit 1; }
grep -q 'session="smoke"' "$dep/ingest2.log" || { echo "scrape missing session label" >&2; exit 1; }

echo "==> request observability smoke (probe, phase metrics, slow log, trace)"
# The trace lands where LAHAR_SMOKE_TRACE_OUT points (CI uploads it as an
# artifact); default keeps it inside the scratch dir.
smoke_trace="${LAHAR_SMOKE_TRACE_OUT:-$dep/serve.trace.json}"
start_serve "$dep/serve3.log" --slow-request-ms 0 --slow-log "$dep/slow.jsonl" \
    --trace-out "$smoke_trace"
# One of every wire command, with client-stamped request ids.
./target/release/lahar probe --manifest "$dep" --addr "$serve_addr" \
    --session probe-smoke "$serve_query" >"$dep/probe.log" 2>&1
grep -q 'probe last request id: ' "$dep/probe.log" \
    || { echo "probe did not run" >&2; cat "$dep/probe.log" >&2; exit 1; }
# Scrape /metrics with bash's /dev/tcp (no curl dependency): every wire
# command must have left all four phase histograms and an outcome row.
exec 3<>"/dev/tcp/${serve_maddr%%:*}/${serve_maddr##*:}"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
metrics="$(cat <&3)"
exec 3>&- || true
for needle in \
    'lahar_server_request_duration_seconds_bucket{command="tick",phase="queue_wait"' \
    'lahar_server_request_duration_seconds_bucket{command="tick",phase="execute"' \
    'lahar_server_request_duration_seconds_bucket{command="tick",phase="wal_append"' \
    'lahar_server_request_duration_seconds_bucket{command="tick",phase="respond"' \
    'lahar_server_requests_total{command="open",code="ok"}' \
    'lahar_server_requests_total{command="stage_ticks",code="ok"}' \
    'lahar_trace_dropped_spans_total'; do
    if ! grep -qF "$needle" <<<"$metrics"; then
        echo "observability smoke failed: /metrics missing $needle" >&2
        exit 1
    fi
done
# Second probe shuts the server down gracefully (flushes the trace).
./target/release/lahar probe --manifest "$dep" --addr "$serve_addr" \
    --session probe-smoke --shutdown "$serve_query" >/dev/null 2>&1
wait "$serve_pid"
# The slow log (threshold 0 ⇒ everything logs) must hold a structurally
# complete JSONL entry: id, session, command, all four phase durations.
if ! grep -Eq '"id":[0-9]+,"session":"probe-smoke","command":"tick","queue_wait_ns":[0-9]+,"execute_ns":[0-9]+,"wal_append_ns":[0-9]+,"respond_ns":[0-9]+,"outcome":"ok"' \
    "$dep/slow.jsonl"; then
    echo "observability smoke failed: no complete slow-log tick entry" >&2
    cat "$dep/slow.jsonl" >&2
    exit 1
fi
# The Chrome trace must carry request-id-tagged spans from both the
# connection reader and a shard worker.
for needle in '"name":"serve_request"' '"name":"shard_dequeue"' '"req":' \
    'lahar-conn' 'lahar-shard-'; do
    if ! grep -qF "$needle" "$smoke_trace"; then
        echo "observability smoke failed: trace missing $needle" >&2
        exit 1
    fi
done

echo "==> serve-scale smoke (bench-ingest: 256 connections, tiering drain)"
# Self-hosts a server, drives 256 connections through the one reactor
# thread, and hard-fails on any silent drop or on resident sessions not
# draining to 0 after the eviction idle window.
./target/release/lahar bench-ingest --manifest "$dep" --quick \
    --evict-after-ms 300 --out "$dep/BENCH_serve.json" 2>"$dep/bench-ingest.log" \
    || { cat "$dep/bench-ingest.log" >&2; exit 1; }
for needle in '"zero_silent_drop": true' '"resident_after_idle": 0'; do
    if ! grep -qF "$needle" "$dep/BENCH_serve.json"; then
        echo "serve-scale smoke failed: missing $needle" >&2
        cat "$dep/BENCH_serve.json" >&2
        exit 1
    fi
done
rm -rf "$dep"

echo "==> crash harness (kill -9 recovery, release, bounded)"
# The full randomized sweep runs in the workspace test step above; this
# re-runs it in release where fsync/rename timing differs most.
LAHAR_CRASH_ITERS=6 cargo test -q --release --offline --test crash_recovery

if [[ "$quick" -eq 0 ]]; then
    echo "==> bench smoke (quick mode, writes BENCH_streaming.json)"
    LAHAR_BENCH_QUICK=1 cargo bench --offline -p lahar-bench \
        --bench streaming_throughput >/dev/null
    for key in '"kernel_hit_rate"' '"seq_ticks_per_sec"' \
        '"streaming_worker_matrix"' '"par_ticks_per_sec_w4"' \
        '"durability_overhead"' '"ticks_per_sec_always"' \
        '"serve_observability"' '"rt_per_sec_off"' \
        '"ns_per_chain_step"' '"sampler_throughput"' '"h1_speedup"'; do
        if ! grep -qF "$key" BENCH_streaming.json; then
            echo "bench smoke failed: $key missing from BENCH_streaming.json" >&2
            exit 1
        fi
    done

    echo "==> kernel step regression gate (vs committed baseline)"
    baseline="$(mktemp -t lahar-bench-baseline-XXXXXX.json)"
    if git show HEAD:BENCH_streaming.json >"$baseline" 2>/dev/null; then
        scripts/bench_gate.sh "$baseline"
    else
        echo "no committed BENCH_streaming.json baseline; skipping"
    fi
    rm -f "$baseline"

    echo "==> miri (simd module, UB check) — needs nightly miri"
    if cargo +nightly miri --version >/dev/null 2>&1; then
        cargo +nightly miri test -q --offline -p lahar-core --lib simd::
    else
        echo "miri unavailable locally; CI runs it (rustup +nightly component add miri to enable)"
    fi

    echo "==> cargo clippy -- -D warnings"
    cargo clippy --offline --workspace --all-targets -- -D warnings

    echo "==> cargo fmt --check"
    cargo fmt --all --check
fi

echo "==> OK"
