#!/usr/bin/env bash
# Tier-1 verification: everything a PR must keep green.
#
#   scripts/verify.sh          # build + tests + clippy + fmt
#   scripts/verify.sh --quick  # skip clippy/fmt (fast local loop)
#
# The workspace vendors its external dependencies under vendor/, so all
# steps run with --offline and need no network access.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo test --features failpoints (chaos suite)"
cargo test -q --offline -p lahar-core --features failpoints
cargo test -q --offline -p lahar --features failpoints

echo "==> observability smoke (live /metrics scrape + chrome trace)"
trace_out="$(mktemp -t lahar-smoke-XXXXXX.trace.json)"
dash_out="$(cargo run -q --release --offline --example streaming_dashboard -- \
    --trace-out "$trace_out")"
rm -f "$trace_out"
for needle in \
    'healthz: ok' \
    'lahar_query_ticks_total{query="coffee"' \
    'lahar_kernel_steps_total{path="fast"}' \
    'lahar_kernel_automata_shared' \
    'chrome trace: '; do
    if ! grep -qF "$needle" <<<"$dash_out"; then
        echo "observability smoke failed: missing $needle" >&2
        echo "$dash_out" >&2
        exit 1
    fi
done

if [[ "$quick" -eq 0 ]]; then
    echo "==> bench smoke (quick mode, writes BENCH_streaming.json)"
    LAHAR_BENCH_QUICK=1 cargo bench --offline -p lahar-bench \
        --bench streaming_throughput >/dev/null
    for key in '"kernel_hit_rate"' '"seq_ticks_per_sec"'; do
        if ! grep -qF "$key" BENCH_streaming.json; then
            echo "bench smoke failed: $key missing from BENCH_streaming.json" >&2
            exit 1
        fi
    done

    echo "==> cargo clippy -- -D warnings"
    cargo clippy --offline --workspace --all-targets -- -D warnings

    echo "==> cargo fmt --check"
    cargo fmt --all --check
fi

echo "==> OK"
