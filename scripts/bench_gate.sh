#!/usr/bin/env bash
# Kernel perf regression gate: the freshly measured batched-kernel step
# cost (streaming_throughput.ns_per_chain_step) may be at most 25%
# worse than the baseline report. Baselines from a different bench mode
# (quick vs full) are not comparable, so a mode mismatch skips rather
# than fails.
#
#   scripts/bench_gate.sh BASELINE.json [CURRENT.json]
#
# CURRENT defaults to the BENCH_streaming.json a fresh bench run just
# wrote at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:?usage: scripts/bench_gate.sh BASELINE.json [CURRENT.json]}"
current="${2:-BENCH_streaming.json}"

python3 - "$baseline" "$current" <<'PY'
import json
import sys


def row(path):
    with open(path) as f:
        return json.load(f).get("streaming_throughput", {})


base, cur = row(sys.argv[1]), row(sys.argv[2])
b, c = base.get("ns_per_chain_step"), cur.get("ns_per_chain_step")
if b is None or c is None:
    sys.exit(f"bench-gate: ns_per_chain_step missing (baseline={b}, current={c})")
if base.get("mode") != cur.get("mode"):
    print(
        "bench-gate: mode mismatch "
        f"({base.get('mode')} vs {cur.get('mode')}); not comparable, skipping"
    )
    sys.exit(0)
limit = b * 1.25
ok = c <= limit
print(
    f"bench-gate: ns_per_chain_step {c:.2f} vs baseline {b:.2f} "
    f"(limit {limit:.2f}, mode {cur.get('mode')}) {'OK' if ok else 'FAIL'}"
)
sys.exit(0 if ok else 1)
PY
