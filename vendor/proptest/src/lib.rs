//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy-combinator subset the Lahar property tests
//! use — `Strategy`, `prop_map`, `prop_recursive`, `BoxedStrategy`,
//! `Just`, `any::<bool>()`, ranges, tuples, `prop::collection::vec`,
//! `prop::option::of`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros — as plain seeded random
//! generation. There is **no shrinking**: a failing case reports its
//! case index, and re-running the test reproduces it deterministically
//! (generation is seeded per case index).

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::Arc;

pub mod test_runner {
    //! Runner configuration, RNG, and failure plumbing.

    /// Per-test configuration (case count only in the stand-in).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic generator used to drive strategies (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// A generator seeded deterministically from a case index.
        pub fn deterministic(seed: u64) -> Self {
            let mut sm = seed ^ 0x5851_F42D_4C95_7F2D;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// The next uniform 64-bit word.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A failed property within a `proptest!` body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type of a `proptest!` body.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

use test_runner::TestRng;

/// A generator of random values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from an RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying (up to a bound) until `f`
    /// accepts one.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Builds a recursive strategy: `self` is the leaf, and `recurse`
    /// maps a strategy for depth `d` to one for depth `d + 1`. `depth`
    /// bounds the nesting; the `_desired_size` / `_expected_branch`
    /// hints of the real API are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        let leaf = strat.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so generated shapes
            // vary in depth instead of always nesting `depth` times.
            let deeper = recurse(strat).boxed();
            strat = Union {
                arms: vec![leaf.clone(), deeper],
            }
            .boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased arms (backs [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical strategy (only what the workspace needs).
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A coin flip.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `T` (`any::<bool>()` in the workspace).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Lengths acceptable to [`vec`]: an exact count or a half-open
    /// range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// A vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies.

    use super::{Strategy, TestRng};

    /// `Some` three times out of four, mirroring proptest's default
    /// weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Uniform choice among strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __proptest_rng =
                        $crate::test_runner::TestRng::deterministic(case as u64);
                    $(
                        let $arg = $crate::Strategy::generate(&$strat, &mut __proptest_rng);
                    )+
                    let result: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!(
                            "proptest {} failed at case {}/{} (deterministic; rerun reproduces): {}",
                            stringify!($name),
                            case,
                            cfg.cases,
                            e
                        );
                    }
                }
            }
        )+
    };
    ($($rest:tt)+) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)+
        }
    };
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    pub mod prop {
        //! Namespaced strategy modules (`prop::collection::vec`, ...).
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u64),
        Node(Vec<Tree>),
    }

    fn tree() -> BoxedStrategy<Tree> {
        (0u64..10)
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(3, 8, 2, |inner| {
                prop::collection::vec(inner, 1..3)
                    .prop_map(Tree::Node)
                    .boxed()
            })
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..0.75).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn recursion_is_bounded(t in tree()) {
            prop_assert!(depth(&t) <= 3, "depth {} for {:?}", depth(&t), t);
        }

        #[test]
        fn oneof_and_option_cover_arms(
            c in prop_oneof![Just(1u8), Just(2u8)],
            o in prop::option::of(0u32..3),
        ) {
            prop_assert!(c == 1 || c == 2);
            if let Some(x) = o {
                prop_assert!(x < 3);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let s = crate::collection::vec(0u64..100, 3..7);
        let a = s.generate(&mut TestRng::deterministic(5));
        let b = s.generate(&mut TestRng::deterministic(5));
        assert_eq!(a, b);
    }
}
