//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`] / [`BufMut`] trait
//! subset the Lahar binary codec uses. `Bytes` is a cheaply cloneable
//! view (`Arc<[u8]>` + range) that consumes from the front as it is
//! read, matching the real crate's cursor semantics.

#![warn(missing_docs)]

use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer that is consumed from the
/// front by [`Buf`] reads.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer over a static slice (copied here; the real crate
    /// borrows, but the API is by-value either way).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view over the unread bytes (indices relative to the cursor).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for {} unread bytes",
            self.len()
        );
        Self {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the unread bytes into a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow: {n} > {}", self.len());
        let start = self.start;
        self.start += n;
        &self.data[start..self.start]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian i64.
    fn get_i64_le(&mut self) -> i64;

    /// Reads a little-endian f64.
    fn get_f64_le(&mut self) -> f64;

    /// Consumes `n` bytes into an owned buffer.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes::copy_from_slice(self.take(n))
    }
}

/// Write access to a byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian i64.
    fn put_i64_le(&mut self, v: i64);

    /// Appends a little-endian f64.
    fn put_f64_le(&mut self, v: f64);

    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_i64_le(-42);
        w.put_f64_le(0.5);
        w.put_slice(b"hi");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 0.5);
        assert_eq!(r.copy_to_bytes(2).to_vec(), b"hi");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        b.get_u8();
        let s = b.slice(1..3);
        assert_eq!(s.to_vec(), vec![3, 4]);
        assert_eq!(b.remaining(), 4);
    }
}
