//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides the (small) subset of the `rand` 0.8 API the
//! workspace actually uses: the [`Rng`] / [`RngCore`] / [`SeedableRng`]
//! traits and [`rngs::SmallRng`], implemented as xoshiro256++ seeded via
//! splitmix64. The statistical quality is more than adequate for the
//! Monte Carlo sampler and the simulation harnesses; it is *not* a
//! cryptographic generator (neither is the real `SmallRng`).

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be drawn uniformly from a generator (the stand-in for
/// `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded draw; the tiny modulo bias of a
                // 64-bit word over these spans is irrelevant here.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )+};
}

int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f32::draw(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly (unit interval for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from a process-local entropy source.
    fn from_entropy() -> Self {
        // No OS entropy plumbing in the stand-in: derive from the
        // monotonic address-space layout + time.
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(t)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..7usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
