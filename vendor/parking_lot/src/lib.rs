//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (guards are returned directly, a poisoned lock panics the accessor).
//! Performance characteristics are those of std, which is fine for the
//! interner and any other light contention in this workspace.

#![warn(missing_docs)]

use std::sync;

/// A reader-writer lock whose accessors return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock whose accessor returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
