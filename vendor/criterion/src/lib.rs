//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the Lahar benches use — `Criterion`,
//! `Bencher::iter` / `iter_batched`, `criterion_group!`,
//! `criterion_main!` — as a plain wall-clock harness. Each benchmark
//! runs a warm-up pass, then `sample_size` timed samples, and prints
//! mean / median / min per-iteration times. There is no statistical
//! regression analysis or HTML report.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// How batched inputs are sized; accepted for API compatibility, the
/// stand-in times one routine call per setup regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
}

/// Benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        // Warm-up pass (untimed) so lazy allocations and caches settle.
        let mut bencher = Bencher {
            per_iter: Duration::ZERO,
        };
        routine(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                per_iter: Duration::ZERO,
            };
            routine(&mut bencher);
            samples.push(bencher.per_iter);
        }
        samples.sort();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let median = samples[samples.len() / 2];
        println!(
            "{name:<48} mean {:>12?}  median {:>12?}  min {:>12?}  ({} samples)",
            mean,
            median,
            samples[0],
            samples.len()
        );
        self
    }

    /// No-op in the stand-in; the real crate persists results here.
    pub fn final_summary(&mut self) {}
}

/// Times the routine under measurement for one sample.
#[derive(Debug)]
pub struct Bencher {
    per_iter: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`, recording mean per-call time.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Calibrate iteration count so each sample runs ~10ms, bounded
        // to keep pathological routines from stalling the harness.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.per_iter = start.elapsed() / iters;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u32;
        while total < Duration::from_millis(10) && iters < 10_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.per_iter = total / iters.max(1);
    }
}

/// Declares a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a ^ b.wrapping_mul(0x9E37_79B9))
    }

    fn bench_iter(c: &mut Criterion) {
        c.bench_function("sum_to_1000", |b| b.iter(|| sum_to(black_box(1000))));
    }

    fn bench_batched(c: &mut Criterion) {
        c.bench_function("sum_vec", |b| {
            b.iter_batched(
                || (0..100u64).collect::<Vec<_>>(),
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = bench_iter, bench_batched
    }

    #[test]
    fn group_runs_all_targets() {
        benches();
    }

    #[test]
    fn shorthand_group_compiles() {
        criterion_group!(quick, bench_iter);
        quick();
    }
}
