/root/repo/target/release/liblahar_metrics.rlib: /root/repo/crates/metrics/src/lib.rs
