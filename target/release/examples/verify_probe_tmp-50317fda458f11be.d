/root/repo/target/release/examples/verify_probe_tmp-50317fda458f11be.d: examples/verify_probe_tmp.rs

/root/repo/target/release/examples/verify_probe_tmp-50317fda458f11be: examples/verify_probe_tmp.rs

examples/verify_probe_tmp.rs:
