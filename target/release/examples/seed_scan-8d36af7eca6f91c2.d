/root/repo/target/release/examples/seed_scan-8d36af7eca6f91c2.d: examples/seed_scan.rs

/root/repo/target/release/examples/seed_scan-8d36af7eca6f91c2: examples/seed_scan.rs

examples/seed_scan.rs:
