/root/repo/target/release/examples/streaming_dashboard-f04bef06da03d731.d: examples/streaming_dashboard.rs

/root/repo/target/release/examples/streaming_dashboard-f04bef06da03d731: examples/streaming_dashboard.rs

examples/streaming_dashboard.rs:
