/root/repo/target/release/deps/lahar-bba21da236924e3e.d: src/lib.rs

/root/repo/target/release/deps/liblahar-bba21da236924e3e.rlib: src/lib.rs

/root/repo/target/release/deps/liblahar-bba21da236924e3e.rmeta: src/lib.rs

src/lib.rs:
