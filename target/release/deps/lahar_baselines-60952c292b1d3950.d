/root/repo/target/release/deps/lahar_baselines-60952c292b1d3950.d: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

/root/repo/target/release/deps/liblahar_baselines-60952c292b1d3950.rlib: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

/root/repo/target/release/deps/liblahar_baselines-60952c292b1d3950.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cep.rs:
crates/baselines/src/determinize.rs:
