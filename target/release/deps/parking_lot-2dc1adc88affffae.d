/root/repo/target/release/deps/parking_lot-2dc1adc88affffae.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-2dc1adc88affffae.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-2dc1adc88affffae.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
