/root/repo/target/release/deps/lahar_rfid-1927902b32a14d6b.d: crates/rfid/src/lib.rs crates/rfid/src/floorplan.rs crates/rfid/src/movement.rs crates/rfid/src/pipeline.rs crates/rfid/src/sensing.rs

/root/repo/target/release/deps/liblahar_rfid-1927902b32a14d6b.rlib: crates/rfid/src/lib.rs crates/rfid/src/floorplan.rs crates/rfid/src/movement.rs crates/rfid/src/pipeline.rs crates/rfid/src/sensing.rs

/root/repo/target/release/deps/liblahar_rfid-1927902b32a14d6b.rmeta: crates/rfid/src/lib.rs crates/rfid/src/floorplan.rs crates/rfid/src/movement.rs crates/rfid/src/pipeline.rs crates/rfid/src/sensing.rs

crates/rfid/src/lib.rs:
crates/rfid/src/floorplan.rs:
crates/rfid/src/movement.rs:
crates/rfid/src/pipeline.rs:
crates/rfid/src/sensing.rs:
