/root/repo/target/release/deps/lahar_baselines-16c966a00b29e103.d: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

/root/repo/target/release/deps/liblahar_baselines-16c966a00b29e103.rlib: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

/root/repo/target/release/deps/liblahar_baselines-16c966a00b29e103.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cep.rs:
crates/baselines/src/determinize.rs:
