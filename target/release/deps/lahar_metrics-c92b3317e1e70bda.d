/root/repo/target/release/deps/lahar_metrics-c92b3317e1e70bda.d: crates/metrics/src/lib.rs

/root/repo/target/release/deps/liblahar_metrics-c92b3317e1e70bda.rlib: crates/metrics/src/lib.rs

/root/repo/target/release/deps/liblahar_metrics-c92b3317e1e70bda.rmeta: crates/metrics/src/lib.rs

crates/metrics/src/lib.rs:
