/root/repo/target/release/deps/streaming_throughput-d0b050d84ddf2782.d: crates/bench/benches/streaming_throughput.rs

/root/repo/target/release/deps/streaming_throughput-d0b050d84ddf2782: crates/bench/benches/streaming_throughput.rs

crates/bench/benches/streaming_throughput.rs:
