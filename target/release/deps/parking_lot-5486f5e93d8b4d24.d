/root/repo/target/release/deps/parking_lot-5486f5e93d8b4d24.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-5486f5e93d8b4d24.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-5486f5e93d8b4d24.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
