/root/repo/target/release/deps/lahar_rfid-440e0caf3faa0f54.d: crates/rfid/src/lib.rs crates/rfid/src/floorplan.rs crates/rfid/src/movement.rs crates/rfid/src/pipeline.rs crates/rfid/src/sensing.rs

/root/repo/target/release/deps/liblahar_rfid-440e0caf3faa0f54.rlib: crates/rfid/src/lib.rs crates/rfid/src/floorplan.rs crates/rfid/src/movement.rs crates/rfid/src/pipeline.rs crates/rfid/src/sensing.rs

/root/repo/target/release/deps/liblahar_rfid-440e0caf3faa0f54.rmeta: crates/rfid/src/lib.rs crates/rfid/src/floorplan.rs crates/rfid/src/movement.rs crates/rfid/src/pipeline.rs crates/rfid/src/sensing.rs

crates/rfid/src/lib.rs:
crates/rfid/src/floorplan.rs:
crates/rfid/src/movement.rs:
crates/rfid/src/pipeline.rs:
crates/rfid/src/sensing.rs:
