/root/repo/target/release/deps/lahar_automata-3aab118b976b4bcb.d: crates/automata/src/lib.rs crates/automata/src/bitset.rs crates/automata/src/nfa.rs crates/automata/src/pred.rs crates/automata/src/regex.rs

/root/repo/target/release/deps/liblahar_automata-3aab118b976b4bcb.rlib: crates/automata/src/lib.rs crates/automata/src/bitset.rs crates/automata/src/nfa.rs crates/automata/src/pred.rs crates/automata/src/regex.rs

/root/repo/target/release/deps/liblahar_automata-3aab118b976b4bcb.rmeta: crates/automata/src/lib.rs crates/automata/src/bitset.rs crates/automata/src/nfa.rs crates/automata/src/pred.rs crates/automata/src/regex.rs

crates/automata/src/lib.rs:
crates/automata/src/bitset.rs:
crates/automata/src/nfa.rs:
crates/automata/src/pred.rs:
crates/automata/src/regex.rs:
