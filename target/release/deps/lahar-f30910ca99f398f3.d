/root/repo/target/release/deps/lahar-f30910ca99f398f3.d: src/bin/lahar.rs

/root/repo/target/release/deps/lahar-f30910ca99f398f3: src/bin/lahar.rs

src/bin/lahar.rs:
