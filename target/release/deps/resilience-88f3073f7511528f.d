/root/repo/target/release/deps/resilience-88f3073f7511528f.d: crates/bench/benches/resilience.rs

/root/repo/target/release/deps/resilience-88f3073f7511528f: crates/bench/benches/resilience.rs

crates/bench/benches/resilience.rs:
