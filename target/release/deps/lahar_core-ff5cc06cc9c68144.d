/root/repo/target/release/deps/lahar_core-ff5cc06cc9c68144.d: crates/core/src/lib.rs crates/core/src/chain.rs crates/core/src/checkpoint.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/extended.rs crates/core/src/failpoint.rs crates/core/src/interval.rs crates/core/src/json.rs crates/core/src/occurrence.rs crates/core/src/regular.rs crates/core/src/safeplan.rs crates/core/src/sampler.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/translate.rs

/root/repo/target/release/deps/liblahar_core-ff5cc06cc9c68144.rlib: crates/core/src/lib.rs crates/core/src/chain.rs crates/core/src/checkpoint.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/extended.rs crates/core/src/failpoint.rs crates/core/src/interval.rs crates/core/src/json.rs crates/core/src/occurrence.rs crates/core/src/regular.rs crates/core/src/safeplan.rs crates/core/src/sampler.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/translate.rs

/root/repo/target/release/deps/liblahar_core-ff5cc06cc9c68144.rmeta: crates/core/src/lib.rs crates/core/src/chain.rs crates/core/src/checkpoint.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/extended.rs crates/core/src/failpoint.rs crates/core/src/interval.rs crates/core/src/json.rs crates/core/src/occurrence.rs crates/core/src/regular.rs crates/core/src/safeplan.rs crates/core/src/sampler.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/translate.rs

crates/core/src/lib.rs:
crates/core/src/chain.rs:
crates/core/src/checkpoint.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/extended.rs:
crates/core/src/failpoint.rs:
crates/core/src/interval.rs:
crates/core/src/json.rs:
crates/core/src/occurrence.rs:
crates/core/src/regular.rs:
crates/core/src/safeplan.rs:
crates/core/src/sampler.rs:
crates/core/src/session.rs:
crates/core/src/stats.rs:
crates/core/src/translate.rs:
