/root/repo/target/release/deps/lahar_metrics-75643c39df156eb8.d: crates/metrics/src/lib.rs

/root/repo/target/release/deps/liblahar_metrics-75643c39df156eb8.rlib: crates/metrics/src/lib.rs

/root/repo/target/release/deps/liblahar_metrics-75643c39df156eb8.rmeta: crates/metrics/src/lib.rs

crates/metrics/src/lib.rs:
