/root/repo/target/release/deps/lahar_bench-2c0ee648f6b6424d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblahar_bench-2c0ee648f6b6424d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblahar_bench-2c0ee648f6b6424d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
