/root/repo/target/release/deps/lahar_baselines-9dceb20095b00933.d: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

/root/repo/target/release/deps/liblahar_baselines-9dceb20095b00933.rlib: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

/root/repo/target/release/deps/liblahar_baselines-9dceb20095b00933.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cep.rs:
crates/baselines/src/determinize.rs:
