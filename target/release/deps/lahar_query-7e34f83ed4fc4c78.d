/root/repo/target/release/deps/lahar_query-7e34f83ed4fc4c78.d: crates/query/src/lib.rs crates/query/src/analysis.rs crates/query/src/ast.rs crates/query/src/matching.rs crates/query/src/normalize.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/semantics.rs

/root/repo/target/release/deps/liblahar_query-7e34f83ed4fc4c78.rlib: crates/query/src/lib.rs crates/query/src/analysis.rs crates/query/src/ast.rs crates/query/src/matching.rs crates/query/src/normalize.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/semantics.rs

/root/repo/target/release/deps/liblahar_query-7e34f83ed4fc4c78.rmeta: crates/query/src/lib.rs crates/query/src/analysis.rs crates/query/src/ast.rs crates/query/src/matching.rs crates/query/src/normalize.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/semantics.rs

crates/query/src/lib.rs:
crates/query/src/analysis.rs:
crates/query/src/ast.rs:
crates/query/src/matching.rs:
crates/query/src/normalize.rs:
crates/query/src/parser.rs:
crates/query/src/plan.rs:
crates/query/src/semantics.rs:
