/root/repo/target/release/deps/resilience-cf0baa7deb47b9f5.d: crates/bench/benches/resilience.rs

/root/repo/target/release/deps/resilience-cf0baa7deb47b9f5: crates/bench/benches/resilience.rs

crates/bench/benches/resilience.rs:
