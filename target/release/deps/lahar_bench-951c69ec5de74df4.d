/root/repo/target/release/deps/lahar_bench-951c69ec5de74df4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblahar_bench-951c69ec5de74df4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblahar_bench-951c69ec5de74df4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
