/root/repo/target/release/deps/lahar_hmm-18b4dfc4e77bc788.d: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs

/root/repo/target/release/deps/liblahar_hmm-18b4dfc4e77bc788.rlib: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs

/root/repo/target/release/deps/liblahar_hmm-18b4dfc4e77bc788.rmeta: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs

crates/hmm/src/lib.rs:
crates/hmm/src/model.rs:
crates/hmm/src/particle.rs:
crates/hmm/src/train.rs:
