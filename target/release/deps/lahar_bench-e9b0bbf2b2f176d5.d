/root/repo/target/release/deps/lahar_bench-e9b0bbf2b2f176d5.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblahar_bench-e9b0bbf2b2f176d5.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblahar_bench-e9b0bbf2b2f176d5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
