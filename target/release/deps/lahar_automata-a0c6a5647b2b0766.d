/root/repo/target/release/deps/lahar_automata-a0c6a5647b2b0766.d: crates/automata/src/lib.rs crates/automata/src/bitset.rs crates/automata/src/nfa.rs crates/automata/src/pred.rs crates/automata/src/regex.rs

/root/repo/target/release/deps/liblahar_automata-a0c6a5647b2b0766.rlib: crates/automata/src/lib.rs crates/automata/src/bitset.rs crates/automata/src/nfa.rs crates/automata/src/pred.rs crates/automata/src/regex.rs

/root/repo/target/release/deps/liblahar_automata-a0c6a5647b2b0766.rmeta: crates/automata/src/lib.rs crates/automata/src/bitset.rs crates/automata/src/nfa.rs crates/automata/src/pred.rs crates/automata/src/regex.rs

crates/automata/src/lib.rs:
crates/automata/src/bitset.rs:
crates/automata/src/nfa.rs:
crates/automata/src/pred.rs:
crates/automata/src/regex.rs:
