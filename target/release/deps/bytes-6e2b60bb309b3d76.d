/root/repo/target/release/deps/bytes-6e2b60bb309b3d76.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-6e2b60bb309b3d76.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-6e2b60bb309b3d76.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
