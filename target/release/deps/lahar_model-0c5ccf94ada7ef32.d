/root/repo/target/release/deps/lahar_model-0c5ccf94ada7ef32.d: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/database.rs crates/model/src/dist.rs crates/model/src/encode.rs crates/model/src/schema.rs crates/model/src/stream.rs crates/model/src/value.rs crates/model/src/world.rs

/root/repo/target/release/deps/liblahar_model-0c5ccf94ada7ef32.rlib: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/database.rs crates/model/src/dist.rs crates/model/src/encode.rs crates/model/src/schema.rs crates/model/src/stream.rs crates/model/src/value.rs crates/model/src/world.rs

/root/repo/target/release/deps/liblahar_model-0c5ccf94ada7ef32.rmeta: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/database.rs crates/model/src/dist.rs crates/model/src/encode.rs crates/model/src/schema.rs crates/model/src/stream.rs crates/model/src/value.rs crates/model/src/world.rs

crates/model/src/lib.rs:
crates/model/src/builder.rs:
crates/model/src/database.rs:
crates/model/src/dist.rs:
crates/model/src/encode.rs:
crates/model/src/schema.rs:
crates/model/src/stream.rs:
crates/model/src/value.rs:
crates/model/src/world.rs:
