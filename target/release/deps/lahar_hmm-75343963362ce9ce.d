/root/repo/target/release/deps/lahar_hmm-75343963362ce9ce.d: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs

/root/repo/target/release/deps/liblahar_hmm-75343963362ce9ce.rlib: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs

/root/repo/target/release/deps/liblahar_hmm-75343963362ce9ce.rmeta: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs

crates/hmm/src/lib.rs:
crates/hmm/src/model.rs:
crates/hmm/src/particle.rs:
crates/hmm/src/train.rs:
