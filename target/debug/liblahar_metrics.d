/root/repo/target/debug/liblahar_metrics.rlib: /root/repo/crates/metrics/src/lib.rs
