/root/repo/target/debug/examples/quickstart-0ee4c0c77e096591.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0ee4c0c77e096591: examples/quickstart.rs

examples/quickstart.rs:
