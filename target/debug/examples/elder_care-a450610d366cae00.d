/root/repo/target/debug/examples/elder_care-a450610d366cae00.d: examples/elder_care.rs Cargo.toml

/root/repo/target/debug/examples/libelder_care-a450610d366cae00.rmeta: examples/elder_care.rs Cargo.toml

examples/elder_care.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
