/root/repo/target/debug/examples/coffee_break-2c5d1a13befe8aab.d: examples/coffee_break.rs Cargo.toml

/root/repo/target/debug/examples/libcoffee_break-2c5d1a13befe8aab.rmeta: examples/coffee_break.rs Cargo.toml

examples/coffee_break.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
