/root/repo/target/debug/examples/elder_care-18eda46e9e39c69c.d: examples/elder_care.rs Cargo.toml

/root/repo/target/debug/examples/libelder_care-18eda46e9e39c69c.rmeta: examples/elder_care.rs Cargo.toml

examples/elder_care.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
