/root/repo/target/debug/examples/elder_care-c3056b4b871090fb.d: examples/elder_care.rs

/root/repo/target/debug/examples/elder_care-c3056b4b871090fb: examples/elder_care.rs

examples/elder_care.rs:
