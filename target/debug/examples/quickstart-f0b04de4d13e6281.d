/root/repo/target/debug/examples/quickstart-f0b04de4d13e6281.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f0b04de4d13e6281: examples/quickstart.rs

examples/quickstart.rs:
