/root/repo/target/debug/examples/coffee_break-28d2c967a1b0f279.d: examples/coffee_break.rs

/root/repo/target/debug/examples/coffee_break-28d2c967a1b0f279: examples/coffee_break.rs

examples/coffee_break.rs:
