/root/repo/target/debug/examples/planner_tour-35ab62d3adc063e4.d: examples/planner_tour.rs Cargo.toml

/root/repo/target/debug/examples/libplanner_tour-35ab62d3adc063e4.rmeta: examples/planner_tour.rs Cargo.toml

examples/planner_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
