/root/repo/target/debug/examples/streaming_dashboard-9a6754a7c82de3cf.d: examples/streaming_dashboard.rs

/root/repo/target/debug/examples/streaming_dashboard-9a6754a7c82de3cf: examples/streaming_dashboard.rs

examples/streaming_dashboard.rs:
