/root/repo/target/debug/examples/planner_tour-b6733aaf8b436650.d: examples/planner_tour.rs

/root/repo/target/debug/examples/planner_tour-b6733aaf8b436650: examples/planner_tour.rs

examples/planner_tour.rs:
