/root/repo/target/debug/examples/quickstart-77c6e19e6984268e.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-77c6e19e6984268e.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
