/root/repo/target/debug/examples/coffee_break-fef4cc344f8d01a5.d: examples/coffee_break.rs

/root/repo/target/debug/examples/coffee_break-fef4cc344f8d01a5: examples/coffee_break.rs

examples/coffee_break.rs:
