/root/repo/target/debug/examples/planner_tour-0bd6ff4e55d8938f.d: examples/planner_tour.rs

/root/repo/target/debug/examples/planner_tour-0bd6ff4e55d8938f: examples/planner_tour.rs

examples/planner_tour.rs:
