/root/repo/target/debug/examples/elder_care-7064d41493e0b0ce.d: examples/elder_care.rs

/root/repo/target/debug/examples/elder_care-7064d41493e0b0ce: examples/elder_care.rs

examples/elder_care.rs:
