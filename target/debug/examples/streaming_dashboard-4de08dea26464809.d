/root/repo/target/debug/examples/streaming_dashboard-4de08dea26464809.d: examples/streaming_dashboard.rs

/root/repo/target/debug/examples/streaming_dashboard-4de08dea26464809: examples/streaming_dashboard.rs

examples/streaming_dashboard.rs:
