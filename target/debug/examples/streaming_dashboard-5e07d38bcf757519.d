/root/repo/target/debug/examples/streaming_dashboard-5e07d38bcf757519.d: examples/streaming_dashboard.rs Cargo.toml

/root/repo/target/debug/examples/libstreaming_dashboard-5e07d38bcf757519.rmeta: examples/streaming_dashboard.rs Cargo.toml

examples/streaming_dashboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
