/root/repo/target/debug/deps/lahar_hmm-3bc53103f6589914.d: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs

/root/repo/target/debug/deps/liblahar_hmm-3bc53103f6589914.rlib: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs

/root/repo/target/debug/deps/liblahar_hmm-3bc53103f6589914.rmeta: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs

crates/hmm/src/lib.rs:
crates/hmm/src/model.rs:
crates/hmm/src/particle.rs:
crates/hmm/src/train.rs:
