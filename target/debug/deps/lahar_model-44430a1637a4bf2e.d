/root/repo/target/debug/deps/lahar_model-44430a1637a4bf2e.d: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/database.rs crates/model/src/dist.rs crates/model/src/encode.rs crates/model/src/schema.rs crates/model/src/stream.rs crates/model/src/value.rs crates/model/src/world.rs

/root/repo/target/debug/deps/lahar_model-44430a1637a4bf2e: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/database.rs crates/model/src/dist.rs crates/model/src/encode.rs crates/model/src/schema.rs crates/model/src/stream.rs crates/model/src/value.rs crates/model/src/world.rs

crates/model/src/lib.rs:
crates/model/src/builder.rs:
crates/model/src/database.rs:
crates/model/src/dist.rs:
crates/model/src/encode.rs:
crates/model/src/schema.rs:
crates/model/src/stream.rs:
crates/model/src/value.rs:
crates/model/src/world.rs:
