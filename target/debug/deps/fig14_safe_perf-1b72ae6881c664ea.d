/root/repo/target/debug/deps/fig14_safe_perf-1b72ae6881c664ea.d: crates/bench/benches/fig14_safe_perf.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_safe_perf-1b72ae6881c664ea.rmeta: crates/bench/benches/fig14_safe_perf.rs Cargo.toml

crates/bench/benches/fig14_safe_perf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
