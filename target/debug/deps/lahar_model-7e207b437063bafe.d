/root/repo/target/debug/deps/lahar_model-7e207b437063bafe.d: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/database.rs crates/model/src/dist.rs crates/model/src/encode.rs crates/model/src/schema.rs crates/model/src/stream.rs crates/model/src/value.rs crates/model/src/world.rs

/root/repo/target/debug/deps/liblahar_model-7e207b437063bafe.rlib: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/database.rs crates/model/src/dist.rs crates/model/src/encode.rs crates/model/src/schema.rs crates/model/src/stream.rs crates/model/src/value.rs crates/model/src/world.rs

/root/repo/target/debug/deps/liblahar_model-7e207b437063bafe.rmeta: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/database.rs crates/model/src/dist.rs crates/model/src/encode.rs crates/model/src/schema.rs crates/model/src/stream.rs crates/model/src/value.rs crates/model/src/world.rs

crates/model/src/lib.rs:
crates/model/src/builder.rs:
crates/model/src/database.rs:
crates/model/src/dist.rs:
crates/model/src/encode.rs:
crates/model/src/schema.rs:
crates/model/src/stream.rs:
crates/model/src/value.rs:
crates/model/src/world.rs:
