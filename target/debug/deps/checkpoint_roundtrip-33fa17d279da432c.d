/root/repo/target/debug/deps/checkpoint_roundtrip-33fa17d279da432c.d: tests/checkpoint_roundtrip.rs

/root/repo/target/debug/deps/checkpoint_roundtrip-33fa17d279da432c: tests/checkpoint_roundtrip.rs

tests/checkpoint_roundtrip.rs:
