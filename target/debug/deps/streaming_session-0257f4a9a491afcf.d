/root/repo/target/debug/deps/streaming_session-0257f4a9a491afcf.d: tests/streaming_session.rs

/root/repo/target/debug/deps/streaming_session-0257f4a9a491afcf: tests/streaming_session.rs

tests/streaming_session.rs:
