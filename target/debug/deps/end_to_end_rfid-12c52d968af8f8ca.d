/root/repo/target/debug/deps/end_to_end_rfid-12c52d968af8f8ca.d: tests/end_to_end_rfid.rs

/root/repo/target/debug/deps/end_to_end_rfid-12c52d968af8f8ca: tests/end_to_end_rfid.rs

tests/end_to_end_rfid.rs:
