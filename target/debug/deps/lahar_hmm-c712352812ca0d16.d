/root/repo/target/debug/deps/lahar_hmm-c712352812ca0d16.d: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs Cargo.toml

/root/repo/target/debug/deps/liblahar_hmm-c712352812ca0d16.rmeta: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs Cargo.toml

crates/hmm/src/lib.rs:
crates/hmm/src/model.rs:
crates/hmm/src/particle.rs:
crates/hmm/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
