/root/repo/target/debug/deps/micro-e6aafb99dad2c16b.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-e6aafb99dad2c16b.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
