/root/repo/target/debug/deps/lahar_rfid-989972a1ffe6faf9.d: crates/rfid/src/lib.rs crates/rfid/src/floorplan.rs crates/rfid/src/movement.rs crates/rfid/src/pipeline.rs crates/rfid/src/sensing.rs

/root/repo/target/debug/deps/liblahar_rfid-989972a1ffe6faf9.rlib: crates/rfid/src/lib.rs crates/rfid/src/floorplan.rs crates/rfid/src/movement.rs crates/rfid/src/pipeline.rs crates/rfid/src/sensing.rs

/root/repo/target/debug/deps/liblahar_rfid-989972a1ffe6faf9.rmeta: crates/rfid/src/lib.rs crates/rfid/src/floorplan.rs crates/rfid/src/movement.rs crates/rfid/src/pipeline.rs crates/rfid/src/sensing.rs

crates/rfid/src/lib.rs:
crates/rfid/src/floorplan.rs:
crates/rfid/src/movement.rs:
crates/rfid/src/pipeline.rs:
crates/rfid/src/sensing.rs:
