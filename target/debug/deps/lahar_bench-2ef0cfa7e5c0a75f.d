/root/repo/target/debug/deps/lahar_bench-2ef0cfa7e5c0a75f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblahar_bench-2ef0cfa7e5c0a75f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblahar_bench-2ef0cfa7e5c0a75f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
