/root/repo/target/debug/deps/chaos_session-a7da9e86a866e79b.d: tests/chaos_session.rs

/root/repo/target/debug/deps/chaos_session-a7da9e86a866e79b: tests/chaos_session.rs

tests/chaos_session.rs:
