/root/repo/target/debug/deps/lahar-340d129724c97a39.d: src/lib.rs

/root/repo/target/debug/deps/lahar-340d129724c97a39: src/lib.rs

src/lib.rs:
