/root/repo/target/debug/deps/edge_cases-59a8e6f7cea6e209.d: crates/core/tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-59a8e6f7cea6e209: crates/core/tests/edge_cases.rs

crates/core/tests/edge_cases.rs:
