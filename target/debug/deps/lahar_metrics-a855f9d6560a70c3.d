/root/repo/target/debug/deps/lahar_metrics-a855f9d6560a70c3.d: crates/metrics/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblahar_metrics-a855f9d6560a70c3.rmeta: crates/metrics/src/lib.rs Cargo.toml

crates/metrics/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
