/root/repo/target/debug/deps/lahar_metrics-7726da8aa1ea5fe4.d: crates/metrics/src/lib.rs

/root/repo/target/debug/deps/lahar_metrics-7726da8aa1ea5fe4: crates/metrics/src/lib.rs

crates/metrics/src/lib.rs:
