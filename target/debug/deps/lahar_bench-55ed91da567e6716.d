/root/repo/target/debug/deps/lahar_bench-55ed91da567e6716.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblahar_bench-55ed91da567e6716.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
