/root/repo/target/debug/deps/fig12_realtime_perf-2198fa9c8b0d7bcc.d: crates/bench/benches/fig12_realtime_perf.rs

/root/repo/target/debug/deps/fig12_realtime_perf-2198fa9c8b0d7bcc: crates/bench/benches/fig12_realtime_perf.rs

crates/bench/benches/fig12_realtime_perf.rs:
