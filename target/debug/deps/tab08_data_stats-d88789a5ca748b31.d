/root/repo/target/debug/deps/tab08_data_stats-d88789a5ca748b31.d: crates/bench/benches/tab08_data_stats.rs Cargo.toml

/root/repo/target/debug/deps/libtab08_data_stats-d88789a5ca748b31.rmeta: crates/bench/benches/tab08_data_stats.rs Cargo.toml

crates/bench/benches/tab08_data_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
