/root/repo/target/debug/deps/lahar_bench-2e5ee1af4fc34a57.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/lahar_bench-2e5ee1af4fc34a57: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
