/root/repo/target/debug/deps/lahar_automata-aba9d9ac31f68390.d: crates/automata/src/lib.rs crates/automata/src/bitset.rs crates/automata/src/nfa.rs crates/automata/src/pred.rs crates/automata/src/regex.rs

/root/repo/target/debug/deps/liblahar_automata-aba9d9ac31f68390.rlib: crates/automata/src/lib.rs crates/automata/src/bitset.rs crates/automata/src/nfa.rs crates/automata/src/pred.rs crates/automata/src/regex.rs

/root/repo/target/debug/deps/liblahar_automata-aba9d9ac31f68390.rmeta: crates/automata/src/lib.rs crates/automata/src/bitset.rs crates/automata/src/nfa.rs crates/automata/src/pred.rs crates/automata/src/regex.rs

crates/automata/src/lib.rs:
crates/automata/src/bitset.rs:
crates/automata/src/nfa.rs:
crates/automata/src/pred.rs:
crates/automata/src/regex.rs:
