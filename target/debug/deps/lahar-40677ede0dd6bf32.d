/root/repo/target/debug/deps/lahar-40677ede0dd6bf32.d: src/bin/lahar.rs Cargo.toml

/root/repo/target/debug/deps/liblahar-40677ede0dd6bf32.rmeta: src/bin/lahar.rs Cargo.toml

src/bin/lahar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
