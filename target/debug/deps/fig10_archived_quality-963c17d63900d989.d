/root/repo/target/debug/deps/fig10_archived_quality-963c17d63900d989.d: crates/bench/benches/fig10_archived_quality.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_archived_quality-963c17d63900d989.rmeta: crates/bench/benches/fig10_archived_quality.rs Cargo.toml

crates/bench/benches/fig10_archived_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
