/root/repo/target/debug/deps/oracle_equivalence-fa34c437690e61c3.d: tests/oracle_equivalence.rs

/root/repo/target/debug/deps/oracle_equivalence-fa34c437690e61c3: tests/oracle_equivalence.rs

tests/oracle_equivalence.rs:
