/root/repo/target/debug/deps/bytes-604718d60dc9e5b3.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-604718d60dc9e5b3: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
