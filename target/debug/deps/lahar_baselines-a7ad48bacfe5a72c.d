/root/repo/target/debug/deps/lahar_baselines-a7ad48bacfe5a72c.d: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs Cargo.toml

/root/repo/target/debug/deps/liblahar_baselines-a7ad48bacfe5a72c.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/cep.rs:
crates/baselines/src/determinize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
