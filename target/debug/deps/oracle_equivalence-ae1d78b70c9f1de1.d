/root/repo/target/debug/deps/oracle_equivalence-ae1d78b70c9f1de1.d: tests/oracle_equivalence.rs

/root/repo/target/debug/deps/oracle_equivalence-ae1d78b70c9f1de1: tests/oracle_equivalence.rs

tests/oracle_equivalence.rs:
