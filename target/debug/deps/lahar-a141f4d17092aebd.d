/root/repo/target/debug/deps/lahar-a141f4d17092aebd.d: src/bin/lahar.rs Cargo.toml

/root/repo/target/debug/deps/liblahar-a141f4d17092aebd.rmeta: src/bin/lahar.rs Cargo.toml

src/bin/lahar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
