/root/repo/target/debug/deps/lahar-01e0b05de94a600f.d: src/bin/lahar.rs

/root/repo/target/debug/deps/lahar-01e0b05de94a600f: src/bin/lahar.rs

src/bin/lahar.rs:
