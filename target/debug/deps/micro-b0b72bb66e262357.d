/root/repo/target/debug/deps/micro-b0b72bb66e262357.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-b0b72bb66e262357: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
