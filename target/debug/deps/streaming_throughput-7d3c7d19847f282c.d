/root/repo/target/debug/deps/streaming_throughput-7d3c7d19847f282c.d: crates/bench/benches/streaming_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming_throughput-7d3c7d19847f282c.rmeta: crates/bench/benches/streaming_throughput.rs Cargo.toml

crates/bench/benches/streaming_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
