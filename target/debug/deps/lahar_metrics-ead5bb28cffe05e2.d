/root/repo/target/debug/deps/lahar_metrics-ead5bb28cffe05e2.d: crates/metrics/src/lib.rs

/root/repo/target/debug/deps/liblahar_metrics-ead5bb28cffe05e2.rlib: crates/metrics/src/lib.rs

/root/repo/target/debug/deps/liblahar_metrics-ead5bb28cffe05e2.rmeta: crates/metrics/src/lib.rs

crates/metrics/src/lib.rs:
