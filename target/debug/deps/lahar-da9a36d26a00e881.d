/root/repo/target/debug/deps/lahar-da9a36d26a00e881.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblahar-da9a36d26a00e881.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
