/root/repo/target/debug/deps/streaming_throughput-818e3d198d2a7934.d: crates/bench/benches/streaming_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming_throughput-818e3d198d2a7934.rmeta: crates/bench/benches/streaming_throughput.rs Cargo.toml

crates/bench/benches/streaming_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
