/root/repo/target/debug/deps/micro-46980df3975e4aa9.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-46980df3975e4aa9.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
