/root/repo/target/debug/deps/paper_examples-9f01d111d8dd00be.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-9f01d111d8dd00be: tests/paper_examples.rs

tests/paper_examples.rs:
