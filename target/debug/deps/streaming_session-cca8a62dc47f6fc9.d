/root/repo/target/debug/deps/streaming_session-cca8a62dc47f6fc9.d: tests/streaming_session.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming_session-cca8a62dc47f6fc9.rmeta: tests/streaming_session.rs Cargo.toml

tests/streaming_session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
