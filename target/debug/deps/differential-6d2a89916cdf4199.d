/root/repo/target/debug/deps/differential-6d2a89916cdf4199.d: crates/automata/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-6d2a89916cdf4199.rmeta: crates/automata/tests/differential.rs Cargo.toml

crates/automata/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
