/root/repo/target/debug/deps/fig11_room_occupancy-3bc14e7740037ebc.d: crates/bench/benches/fig11_room_occupancy.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_room_occupancy-3bc14e7740037ebc.rmeta: crates/bench/benches/fig11_room_occupancy.rs Cargo.toml

crates/bench/benches/fig11_room_occupancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
