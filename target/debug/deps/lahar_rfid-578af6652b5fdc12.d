/root/repo/target/debug/deps/lahar_rfid-578af6652b5fdc12.d: crates/rfid/src/lib.rs crates/rfid/src/floorplan.rs crates/rfid/src/movement.rs crates/rfid/src/pipeline.rs crates/rfid/src/sensing.rs

/root/repo/target/debug/deps/lahar_rfid-578af6652b5fdc12: crates/rfid/src/lib.rs crates/rfid/src/floorplan.rs crates/rfid/src/movement.rs crates/rfid/src/pipeline.rs crates/rfid/src/sensing.rs

crates/rfid/src/lib.rs:
crates/rfid/src/floorplan.rs:
crates/rfid/src/movement.rs:
crates/rfid/src/pipeline.rs:
crates/rfid/src/sensing.rs:
