/root/repo/target/debug/deps/query_complexity-451179a16aacdca5.d: crates/bench/benches/query_complexity.rs

/root/repo/target/debug/deps/query_complexity-451179a16aacdca5: crates/bench/benches/query_complexity.rs

crates/bench/benches/query_complexity.rs:
