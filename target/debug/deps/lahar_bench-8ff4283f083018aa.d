/root/repo/target/debug/deps/lahar_bench-8ff4283f083018aa.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblahar_bench-8ff4283f083018aa.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
