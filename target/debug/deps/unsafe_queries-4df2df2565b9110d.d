/root/repo/target/debug/deps/unsafe_queries-4df2df2565b9110d.d: crates/bench/benches/unsafe_queries.rs Cargo.toml

/root/repo/target/debug/deps/libunsafe_queries-4df2df2565b9110d.rmeta: crates/bench/benches/unsafe_queries.rs Cargo.toml

crates/bench/benches/unsafe_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
