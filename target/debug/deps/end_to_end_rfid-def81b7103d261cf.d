/root/repo/target/debug/deps/end_to_end_rfid-def81b7103d261cf.d: tests/end_to_end_rfid.rs

/root/repo/target/debug/deps/end_to_end_rfid-def81b7103d261cf: tests/end_to_end_rfid.rs

tests/end_to_end_rfid.rs:
