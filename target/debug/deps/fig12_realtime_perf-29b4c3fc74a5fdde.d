/root/repo/target/debug/deps/fig12_realtime_perf-29b4c3fc74a5fdde.d: crates/bench/benches/fig12_realtime_perf.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_realtime_perf-29b4c3fc74a5fdde.rmeta: crates/bench/benches/fig12_realtime_perf.rs Cargo.toml

crates/bench/benches/fig12_realtime_perf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
