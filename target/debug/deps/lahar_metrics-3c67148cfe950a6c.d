/root/repo/target/debug/deps/lahar_metrics-3c67148cfe950a6c.d: crates/metrics/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblahar_metrics-3c67148cfe950a6c.rmeta: crates/metrics/src/lib.rs Cargo.toml

crates/metrics/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
