/root/repo/target/debug/deps/query_complexity-1e47c5a2d310d82c.d: crates/bench/benches/query_complexity.rs Cargo.toml

/root/repo/target/debug/deps/libquery_complexity-1e47c5a2d310d82c.rmeta: crates/bench/benches/query_complexity.rs Cargo.toml

crates/bench/benches/query_complexity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
