/root/repo/target/debug/deps/lahar-5cc11dc8b183c70d.d: src/bin/lahar.rs

/root/repo/target/debug/deps/lahar-5cc11dc8b183c70d: src/bin/lahar.rs

src/bin/lahar.rs:
