/root/repo/target/debug/deps/paper_examples-d9c29ab481b41b65.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-d9c29ab481b41b65: tests/paper_examples.rs

tests/paper_examples.rs:
