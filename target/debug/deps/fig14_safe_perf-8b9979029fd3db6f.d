/root/repo/target/debug/deps/fig14_safe_perf-8b9979029fd3db6f.d: crates/bench/benches/fig14_safe_perf.rs

/root/repo/target/debug/deps/fig14_safe_perf-8b9979029fd3db6f: crates/bench/benches/fig14_safe_perf.rs

crates/bench/benches/fig14_safe_perf.rs:
