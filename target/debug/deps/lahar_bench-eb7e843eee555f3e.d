/root/repo/target/debug/deps/lahar_bench-eb7e843eee555f3e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblahar_bench-eb7e843eee555f3e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
