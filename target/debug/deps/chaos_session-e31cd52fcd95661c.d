/root/repo/target/debug/deps/chaos_session-e31cd52fcd95661c.d: tests/chaos_session.rs

/root/repo/target/debug/deps/chaos_session-e31cd52fcd95661c: tests/chaos_session.rs

tests/chaos_session.rs:
