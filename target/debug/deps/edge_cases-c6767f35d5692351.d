/root/repo/target/debug/deps/edge_cases-c6767f35d5692351.d: crates/core/tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-c6767f35d5692351: crates/core/tests/edge_cases.rs

crates/core/tests/edge_cases.rs:
