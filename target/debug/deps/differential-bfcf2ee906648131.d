/root/repo/target/debug/deps/differential-bfcf2ee906648131.d: crates/automata/tests/differential.rs

/root/repo/target/debug/deps/differential-bfcf2ee906648131: crates/automata/tests/differential.rs

crates/automata/tests/differential.rs:
