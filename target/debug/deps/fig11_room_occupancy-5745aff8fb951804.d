/root/repo/target/debug/deps/fig11_room_occupancy-5745aff8fb951804.d: crates/bench/benches/fig11_room_occupancy.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_room_occupancy-5745aff8fb951804.rmeta: crates/bench/benches/fig11_room_occupancy.rs Cargo.toml

crates/bench/benches/fig11_room_occupancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
