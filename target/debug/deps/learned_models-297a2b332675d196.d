/root/repo/target/debug/deps/learned_models-297a2b332675d196.d: tests/learned_models.rs

/root/repo/target/debug/deps/learned_models-297a2b332675d196: tests/learned_models.rs

tests/learned_models.rs:
