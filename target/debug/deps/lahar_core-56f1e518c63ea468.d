/root/repo/target/debug/deps/lahar_core-56f1e518c63ea468.d: crates/core/src/lib.rs crates/core/src/chain.rs crates/core/src/checkpoint.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/extended.rs crates/core/src/failpoint.rs crates/core/src/interval.rs crates/core/src/json.rs crates/core/src/occurrence.rs crates/core/src/regular.rs crates/core/src/safeplan.rs crates/core/src/sampler.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/translate.rs Cargo.toml

/root/repo/target/debug/deps/liblahar_core-56f1e518c63ea468.rmeta: crates/core/src/lib.rs crates/core/src/chain.rs crates/core/src/checkpoint.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/extended.rs crates/core/src/failpoint.rs crates/core/src/interval.rs crates/core/src/json.rs crates/core/src/occurrence.rs crates/core/src/regular.rs crates/core/src/safeplan.rs crates/core/src/sampler.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/translate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/chain.rs:
crates/core/src/checkpoint.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/extended.rs:
crates/core/src/failpoint.rs:
crates/core/src/interval.rs:
crates/core/src/json.rs:
crates/core/src/occurrence.rs:
crates/core/src/regular.rs:
crates/core/src/safeplan.rs:
crates/core/src/sampler.rs:
crates/core/src/session.rs:
crates/core/src/stats.rs:
crates/core/src/translate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
