/root/repo/target/debug/deps/lahar_query-794c9d7c9433ae37.d: crates/query/src/lib.rs crates/query/src/analysis.rs crates/query/src/ast.rs crates/query/src/matching.rs crates/query/src/normalize.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/semantics.rs Cargo.toml

/root/repo/target/debug/deps/liblahar_query-794c9d7c9433ae37.rmeta: crates/query/src/lib.rs crates/query/src/analysis.rs crates/query/src/ast.rs crates/query/src/matching.rs crates/query/src/normalize.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/semantics.rs Cargo.toml

crates/query/src/lib.rs:
crates/query/src/analysis.rs:
crates/query/src/ast.rs:
crates/query/src/matching.rs:
crates/query/src/normalize.rs:
crates/query/src/parser.rs:
crates/query/src/plan.rs:
crates/query/src/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
