/root/repo/target/debug/deps/lahar-70eba4dd79caa236.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblahar-70eba4dd79caa236.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
