/root/repo/target/debug/deps/edge_cases-a35c7188f13f34d6.d: crates/core/tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-a35c7188f13f34d6.rmeta: crates/core/tests/edge_cases.rs Cargo.toml

crates/core/tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
