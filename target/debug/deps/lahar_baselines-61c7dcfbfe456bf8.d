/root/repo/target/debug/deps/lahar_baselines-61c7dcfbfe456bf8.d: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

/root/repo/target/debug/deps/lahar_baselines-61c7dcfbfe456bf8: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cep.rs:
crates/baselines/src/determinize.rs:
