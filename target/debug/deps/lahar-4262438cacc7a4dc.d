/root/repo/target/debug/deps/lahar-4262438cacc7a4dc.d: src/lib.rs

/root/repo/target/debug/deps/lahar-4262438cacc7a4dc: src/lib.rs

src/lib.rs:
