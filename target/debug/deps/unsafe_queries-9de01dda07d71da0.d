/root/repo/target/debug/deps/unsafe_queries-9de01dda07d71da0.d: crates/bench/benches/unsafe_queries.rs

/root/repo/target/debug/deps/unsafe_queries-9de01dda07d71da0: crates/bench/benches/unsafe_queries.rs

crates/bench/benches/unsafe_queries.rs:
