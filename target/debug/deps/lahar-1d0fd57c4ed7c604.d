/root/repo/target/debug/deps/lahar-1d0fd57c4ed7c604.d: src/bin/lahar.rs Cargo.toml

/root/repo/target/debug/deps/liblahar-1d0fd57c4ed7c604.rmeta: src/bin/lahar.rs Cargo.toml

src/bin/lahar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
