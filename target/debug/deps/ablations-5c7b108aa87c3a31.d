/root/repo/target/debug/deps/ablations-5c7b108aa87c3a31.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-5c7b108aa87c3a31: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
