/root/repo/target/debug/deps/streaming_session-cd178a4cd7a99fe8.d: tests/streaming_session.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming_session-cd178a4cd7a99fe8.rmeta: tests/streaming_session.rs Cargo.toml

tests/streaming_session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
