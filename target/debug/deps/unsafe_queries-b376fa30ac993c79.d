/root/repo/target/debug/deps/unsafe_queries-b376fa30ac993c79.d: crates/bench/benches/unsafe_queries.rs Cargo.toml

/root/repo/target/debug/deps/libunsafe_queries-b376fa30ac993c79.rmeta: crates/bench/benches/unsafe_queries.rs Cargo.toml

crates/bench/benches/unsafe_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
