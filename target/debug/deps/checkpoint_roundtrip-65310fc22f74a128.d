/root/repo/target/debug/deps/checkpoint_roundtrip-65310fc22f74a128.d: tests/checkpoint_roundtrip.rs

/root/repo/target/debug/deps/checkpoint_roundtrip-65310fc22f74a128: tests/checkpoint_roundtrip.rs

tests/checkpoint_roundtrip.rs:
