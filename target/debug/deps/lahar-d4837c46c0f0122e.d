/root/repo/target/debug/deps/lahar-d4837c46c0f0122e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblahar-d4837c46c0f0122e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
