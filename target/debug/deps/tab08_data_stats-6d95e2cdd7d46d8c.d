/root/repo/target/debug/deps/tab08_data_stats-6d95e2cdd7d46d8c.d: crates/bench/benches/tab08_data_stats.rs

/root/repo/target/debug/deps/tab08_data_stats-6d95e2cdd7d46d8c: crates/bench/benches/tab08_data_stats.rs

crates/bench/benches/tab08_data_stats.rs:
