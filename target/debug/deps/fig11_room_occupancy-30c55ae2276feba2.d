/root/repo/target/debug/deps/fig11_room_occupancy-30c55ae2276feba2.d: crates/bench/benches/fig11_room_occupancy.rs

/root/repo/target/debug/deps/fig11_room_occupancy-30c55ae2276feba2: crates/bench/benches/fig11_room_occupancy.rs

crates/bench/benches/fig11_room_occupancy.rs:
