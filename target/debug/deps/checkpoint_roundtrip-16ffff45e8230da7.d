/root/repo/target/debug/deps/checkpoint_roundtrip-16ffff45e8230da7.d: tests/checkpoint_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoint_roundtrip-16ffff45e8230da7.rmeta: tests/checkpoint_roundtrip.rs Cargo.toml

tests/checkpoint_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
