/root/repo/target/debug/deps/lahar_hmm-e19be31faeaa375b.d: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs Cargo.toml

/root/repo/target/debug/deps/liblahar_hmm-e19be31faeaa375b.rmeta: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs Cargo.toml

crates/hmm/src/lib.rs:
crates/hmm/src/model.rs:
crates/hmm/src/particle.rs:
crates/hmm/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
