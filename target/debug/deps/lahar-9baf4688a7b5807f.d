/root/repo/target/debug/deps/lahar-9baf4688a7b5807f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblahar-9baf4688a7b5807f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
