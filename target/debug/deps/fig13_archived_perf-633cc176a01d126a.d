/root/repo/target/debug/deps/fig13_archived_perf-633cc176a01d126a.d: crates/bench/benches/fig13_archived_perf.rs

/root/repo/target/debug/deps/fig13_archived_perf-633cc176a01d126a: crates/bench/benches/fig13_archived_perf.rs

crates/bench/benches/fig13_archived_perf.rs:
