/root/repo/target/debug/deps/lahar-24a13afd72ca16ca.d: src/bin/lahar.rs

/root/repo/target/debug/deps/lahar-24a13afd72ca16ca: src/bin/lahar.rs

src/bin/lahar.rs:
