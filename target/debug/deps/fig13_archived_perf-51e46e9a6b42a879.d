/root/repo/target/debug/deps/fig13_archived_perf-51e46e9a6b42a879.d: crates/bench/benches/fig13_archived_perf.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_archived_perf-51e46e9a6b42a879.rmeta: crates/bench/benches/fig13_archived_perf.rs Cargo.toml

crates/bench/benches/fig13_archived_perf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
