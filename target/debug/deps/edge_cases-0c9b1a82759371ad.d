/root/repo/target/debug/deps/edge_cases-0c9b1a82759371ad.d: crates/core/tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-0c9b1a82759371ad.rmeta: crates/core/tests/edge_cases.rs Cargo.toml

crates/core/tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
