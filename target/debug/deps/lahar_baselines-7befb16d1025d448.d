/root/repo/target/debug/deps/lahar_baselines-7befb16d1025d448.d: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

/root/repo/target/debug/deps/liblahar_baselines-7befb16d1025d448.rlib: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

/root/repo/target/debug/deps/liblahar_baselines-7befb16d1025d448.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cep.rs:
crates/baselines/src/determinize.rs:
