/root/repo/target/debug/deps/lahar-c6841678b3589ca8.d: src/lib.rs

/root/repo/target/debug/deps/liblahar-c6841678b3589ca8.rlib: src/lib.rs

/root/repo/target/debug/deps/liblahar-c6841678b3589ca8.rmeta: src/lib.rs

src/lib.rs:
