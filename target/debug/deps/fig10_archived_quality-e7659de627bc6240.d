/root/repo/target/debug/deps/fig10_archived_quality-e7659de627bc6240.d: crates/bench/benches/fig10_archived_quality.rs

/root/repo/target/debug/deps/fig10_archived_quality-e7659de627bc6240: crates/bench/benches/fig10_archived_quality.rs

crates/bench/benches/fig10_archived_quality.rs:
