/root/repo/target/debug/deps/lahar_model-cf627eb8082682c7.d: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/database.rs crates/model/src/dist.rs crates/model/src/encode.rs crates/model/src/schema.rs crates/model/src/stream.rs crates/model/src/value.rs crates/model/src/world.rs Cargo.toml

/root/repo/target/debug/deps/liblahar_model-cf627eb8082682c7.rmeta: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/database.rs crates/model/src/dist.rs crates/model/src/encode.rs crates/model/src/schema.rs crates/model/src/stream.rs crates/model/src/value.rs crates/model/src/world.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/builder.rs:
crates/model/src/database.rs:
crates/model/src/dist.rs:
crates/model/src/encode.rs:
crates/model/src/schema.rs:
crates/model/src/stream.rs:
crates/model/src/value.rs:
crates/model/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
