/root/repo/target/debug/deps/fig09_realtime_quality-6912a33ab42ee617.d: crates/bench/benches/fig09_realtime_quality.rs

/root/repo/target/debug/deps/fig09_realtime_quality-6912a33ab42ee617: crates/bench/benches/fig09_realtime_quality.rs

crates/bench/benches/fig09_realtime_quality.rs:
