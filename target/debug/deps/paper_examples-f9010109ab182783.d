/root/repo/target/debug/deps/paper_examples-f9010109ab182783.d: tests/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-f9010109ab182783.rmeta: tests/paper_examples.rs Cargo.toml

tests/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
