/root/repo/target/debug/deps/chaos_session-d63b7bae01c29b41.d: tests/chaos_session.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_session-d63b7bae01c29b41.rmeta: tests/chaos_session.rs Cargo.toml

tests/chaos_session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
