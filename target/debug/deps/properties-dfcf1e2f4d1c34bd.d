/root/repo/target/debug/deps/properties-dfcf1e2f4d1c34bd.d: crates/query/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-dfcf1e2f4d1c34bd.rmeta: crates/query/tests/properties.rs Cargo.toml

crates/query/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
