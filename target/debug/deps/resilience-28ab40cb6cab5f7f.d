/root/repo/target/debug/deps/resilience-28ab40cb6cab5f7f.d: crates/bench/benches/resilience.rs Cargo.toml

/root/repo/target/debug/deps/libresilience-28ab40cb6cab5f7f.rmeta: crates/bench/benches/resilience.rs Cargo.toml

crates/bench/benches/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
