/root/repo/target/debug/deps/lahar_query-c7ce170a621924d2.d: crates/query/src/lib.rs crates/query/src/analysis.rs crates/query/src/ast.rs crates/query/src/matching.rs crates/query/src/normalize.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/semantics.rs

/root/repo/target/debug/deps/lahar_query-c7ce170a621924d2: crates/query/src/lib.rs crates/query/src/analysis.rs crates/query/src/ast.rs crates/query/src/matching.rs crates/query/src/normalize.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/semantics.rs

crates/query/src/lib.rs:
crates/query/src/analysis.rs:
crates/query/src/ast.rs:
crates/query/src/matching.rs:
crates/query/src/normalize.rs:
crates/query/src/parser.rs:
crates/query/src/plan.rs:
crates/query/src/semantics.rs:
