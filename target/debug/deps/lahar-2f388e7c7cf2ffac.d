/root/repo/target/debug/deps/lahar-2f388e7c7cf2ffac.d: src/lib.rs

/root/repo/target/debug/deps/liblahar-2f388e7c7cf2ffac.rlib: src/lib.rs

/root/repo/target/debug/deps/liblahar-2f388e7c7cf2ffac.rmeta: src/lib.rs

src/lib.rs:
