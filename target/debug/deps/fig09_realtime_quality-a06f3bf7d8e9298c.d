/root/repo/target/debug/deps/fig09_realtime_quality-a06f3bf7d8e9298c.d: crates/bench/benches/fig09_realtime_quality.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_realtime_quality-a06f3bf7d8e9298c.rmeta: crates/bench/benches/fig09_realtime_quality.rs Cargo.toml

crates/bench/benches/fig09_realtime_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
