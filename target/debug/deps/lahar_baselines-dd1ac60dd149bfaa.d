/root/repo/target/debug/deps/lahar_baselines-dd1ac60dd149bfaa.d: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

/root/repo/target/debug/deps/liblahar_baselines-dd1ac60dd149bfaa.rlib: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

/root/repo/target/debug/deps/liblahar_baselines-dd1ac60dd149bfaa.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cep.rs crates/baselines/src/determinize.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cep.rs:
crates/baselines/src/determinize.rs:
