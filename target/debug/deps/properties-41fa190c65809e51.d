/root/repo/target/debug/deps/properties-41fa190c65809e51.d: crates/query/tests/properties.rs

/root/repo/target/debug/deps/properties-41fa190c65809e51: crates/query/tests/properties.rs

crates/query/tests/properties.rs:
