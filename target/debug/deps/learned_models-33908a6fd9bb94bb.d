/root/repo/target/debug/deps/learned_models-33908a6fd9bb94bb.d: tests/learned_models.rs

/root/repo/target/debug/deps/learned_models-33908a6fd9bb94bb: tests/learned_models.rs

tests/learned_models.rs:
