/root/repo/target/debug/deps/lahar_rfid-ee35b4e1690a102b.d: crates/rfid/src/lib.rs crates/rfid/src/floorplan.rs crates/rfid/src/movement.rs crates/rfid/src/pipeline.rs crates/rfid/src/sensing.rs Cargo.toml

/root/repo/target/debug/deps/liblahar_rfid-ee35b4e1690a102b.rmeta: crates/rfid/src/lib.rs crates/rfid/src/floorplan.rs crates/rfid/src/movement.rs crates/rfid/src/pipeline.rs crates/rfid/src/sensing.rs Cargo.toml

crates/rfid/src/lib.rs:
crates/rfid/src/floorplan.rs:
crates/rfid/src/movement.rs:
crates/rfid/src/pipeline.rs:
crates/rfid/src/sensing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
