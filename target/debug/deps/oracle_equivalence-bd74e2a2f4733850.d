/root/repo/target/debug/deps/oracle_equivalence-bd74e2a2f4733850.d: tests/oracle_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/liboracle_equivalence-bd74e2a2f4733850.rmeta: tests/oracle_equivalence.rs Cargo.toml

tests/oracle_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
