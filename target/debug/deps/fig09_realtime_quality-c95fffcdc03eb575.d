/root/repo/target/debug/deps/fig09_realtime_quality-c95fffcdc03eb575.d: crates/bench/benches/fig09_realtime_quality.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_realtime_quality-c95fffcdc03eb575.rmeta: crates/bench/benches/fig09_realtime_quality.rs Cargo.toml

crates/bench/benches/fig09_realtime_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
