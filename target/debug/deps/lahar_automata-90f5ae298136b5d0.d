/root/repo/target/debug/deps/lahar_automata-90f5ae298136b5d0.d: crates/automata/src/lib.rs crates/automata/src/bitset.rs crates/automata/src/nfa.rs crates/automata/src/pred.rs crates/automata/src/regex.rs Cargo.toml

/root/repo/target/debug/deps/liblahar_automata-90f5ae298136b5d0.rmeta: crates/automata/src/lib.rs crates/automata/src/bitset.rs crates/automata/src/nfa.rs crates/automata/src/pred.rs crates/automata/src/regex.rs Cargo.toml

crates/automata/src/lib.rs:
crates/automata/src/bitset.rs:
crates/automata/src/nfa.rs:
crates/automata/src/pred.rs:
crates/automata/src/regex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
