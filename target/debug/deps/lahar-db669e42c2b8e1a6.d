/root/repo/target/debug/deps/lahar-db669e42c2b8e1a6.d: src/bin/lahar.rs

/root/repo/target/debug/deps/lahar-db669e42c2b8e1a6: src/bin/lahar.rs

src/bin/lahar.rs:
