/root/repo/target/debug/deps/end_to_end_rfid-1f31b929e71920de.d: tests/end_to_end_rfid.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_rfid-1f31b929e71920de.rmeta: tests/end_to_end_rfid.rs Cargo.toml

tests/end_to_end_rfid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
