/root/repo/target/debug/deps/parking_lot-9d224ca367435498.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-9d224ca367435498: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
