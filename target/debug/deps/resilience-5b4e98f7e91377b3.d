/root/repo/target/debug/deps/resilience-5b4e98f7e91377b3.d: crates/bench/benches/resilience.rs Cargo.toml

/root/repo/target/debug/deps/libresilience-5b4e98f7e91377b3.rmeta: crates/bench/benches/resilience.rs Cargo.toml

crates/bench/benches/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
