/root/repo/target/debug/deps/learned_models-825829f61b6edf9f.d: tests/learned_models.rs Cargo.toml

/root/repo/target/debug/deps/liblearned_models-825829f61b6edf9f.rmeta: tests/learned_models.rs Cargo.toml

tests/learned_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
