/root/repo/target/debug/deps/lahar_hmm-c2c834ecb575dd79.d: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs

/root/repo/target/debug/deps/lahar_hmm-c2c834ecb575dd79: crates/hmm/src/lib.rs crates/hmm/src/model.rs crates/hmm/src/particle.rs crates/hmm/src/train.rs

crates/hmm/src/lib.rs:
crates/hmm/src/model.rs:
crates/hmm/src/particle.rs:
crates/hmm/src/train.rs:
