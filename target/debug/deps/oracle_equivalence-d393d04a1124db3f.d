/root/repo/target/debug/deps/oracle_equivalence-d393d04a1124db3f.d: tests/oracle_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/liboracle_equivalence-d393d04a1124db3f.rmeta: tests/oracle_equivalence.rs Cargo.toml

tests/oracle_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
