/root/repo/target/debug/deps/streaming_session-43f21e6fc48bdcb8.d: tests/streaming_session.rs

/root/repo/target/debug/deps/streaming_session-43f21e6fc48bdcb8: tests/streaming_session.rs

tests/streaming_session.rs:
