/root/repo/target/debug/deps/lahar_automata-732409bd91975cef.d: crates/automata/src/lib.rs crates/automata/src/bitset.rs crates/automata/src/nfa.rs crates/automata/src/pred.rs crates/automata/src/regex.rs

/root/repo/target/debug/deps/lahar_automata-732409bd91975cef: crates/automata/src/lib.rs crates/automata/src/bitset.rs crates/automata/src/nfa.rs crates/automata/src/pred.rs crates/automata/src/regex.rs

crates/automata/src/lib.rs:
crates/automata/src/bitset.rs:
crates/automata/src/nfa.rs:
crates/automata/src/pred.rs:
crates/automata/src/regex.rs:
